//! Running whole workload suites and aggregating the results.
//!
//! Suite runs are sharded per source across scoped threads
//! ([`crate::engine::par_map`]): every worker opens its own stream from the
//! suite's [`SourceSpec`]s — an on-the-fly synthetic generator, or a
//! bounded-memory binary file reader — and drives it through the engine with
//! a cold predictor. No trace is ever materialized: the classic
//! [`run_suite`] over a synthetic [`Suite`] is itself a thin adapter that
//! streams each trace instead of calling `generate`. Per-source reports are
//! merged into the aggregate in suite order as they stream back, so the
//! parallel result is **bit-identical** to a serial run — wall-clock drops
//! from `sum(traces)` to roughly `max(trace)`. For parallelism *within* one
//! very long source, see [`crate::segment`].

use core::fmt;

use tage::TageConfig;
use tage_confidence::ConfidenceReport;
use tage_traces::format::FormatError;
use tage_traces::source::{SourceSpec, SourceSuite};
use tage_traces::Suite;

use crate::engine::{default_parallelism, par_map};
use crate::runner::{run_source, RunOptions, TraceRunResult};

/// The outcome of running one predictor configuration over every trace of a
/// suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRunResult {
    /// Name of the suite (`"CBP-1-like"`, `"CBP-2-like"`).
    pub suite_name: String,
    /// Name of the predictor configuration.
    pub config_name: String,
    /// Per-trace results, in suite order.
    pub traces: Vec<TraceRunResult>,
    /// Aggregate report over all traces of the suite.
    pub aggregate: ConfidenceReport,
}

impl SuiteRunResult {
    /// Arithmetic mean of the per-trace MPKI values (the paper reports
    /// per-trace bars and per-suite averages).
    pub fn mean_mpki(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().map(TraceRunResult::mpki).sum::<f64>() / self.traces.len() as f64
    }

    /// Aggregate misprediction rate in MKP over all predictions of the
    /// suite.
    pub fn aggregate_mkp(&self) -> f64 {
        self.aggregate.mkp()
    }

    /// Looks up the result of one trace by name.
    pub fn trace(&self, name: &str) -> Option<&TraceRunResult> {
        self.traces.iter().find(|t| t.trace_name == name)
    }
}

impl fmt::Display for SuiteRunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: mean {:.2} MPKI, aggregate {:.1} MKP over {} traces",
            self.config_name,
            self.suite_name,
            self.mean_mpki(),
            self.aggregate_mkp(),
            self.traces.len()
        )
    }
}

/// Runs `config` over every trace of `suite`, generating
/// `branches_per_trace` conditional branches per trace, sharded across one
/// worker per available hardware thread.
pub fn run_suite(
    config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
    options: &RunOptions,
) -> SuiteRunResult {
    run_suite_with_parallelism(
        config,
        suite,
        branches_per_trace,
        options,
        default_parallelism(),
    )
}

/// [`run_suite`] with an explicit worker count.
///
/// `workers == 1` runs the traces serially on the calling thread; any worker
/// count produces the same, bit-identical result (per-trace runs are
/// independent and deterministic, and aggregation happens in suite order).
///
/// Each worker streams its trace through a
/// [`tage_traces::source::SyntheticSource`] instead of materializing it, so
/// suite memory is bounded by `workers ×` the engine batch size.
pub fn run_suite_with_parallelism(
    config: &TageConfig,
    suite: &Suite,
    branches_per_trace: usize,
    options: &RunOptions,
    workers: usize,
) -> SuiteRunResult {
    run_suite_sources(
        config,
        &SourceSuite::from_suite(suite),
        branches_per_trace,
        options,
        workers,
    )
    .expect("synthetic sources are infallible")
}

/// Runs `config` over every source of a streaming [`SourceSuite`] — the
/// out-of-core generalization of [`run_suite`]: sources may be synthetic
/// generators or on-disk binary traces, and every worker opens its own
/// independent stream.
///
/// `conditional_branches` sizes synthetic sources; file-backed sources yield
/// whatever their file holds.
///
/// # Errors
///
/// Returns the first [`FormatError`] in suite order when a source cannot be
/// opened or read (the remaining sources still execute, their results are
/// discarded).
pub fn run_suite_sources(
    config: &TageConfig,
    suite: &SourceSuite,
    conditional_branches: usize,
    options: &RunOptions,
    workers: usize,
) -> Result<SuiteRunResult, FormatError> {
    let outcomes = par_map(suite.sources(), workers, |spec: &SourceSpec| {
        let mut source = spec.open(conditional_branches)?;
        run_source(config, &mut source, options)
    });
    let mut traces = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        traces.push(outcome?);
    }
    let mut aggregate = ConfidenceReport::new();
    for result in &traces {
        aggregate.merge(&result.report);
    }
    Ok(SuiteRunResult {
        suite_name: suite.name().to_string(),
        config_name: config.name.clone(),
        traces,
        aggregate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_traces::suites;

    fn tiny_suite() -> Suite {
        let full = suites::cbp1_like();
        Suite::new(
            "tiny",
            vec![
                full.trace("FP-1").unwrap().clone(),
                full.trace("SERV-2").unwrap().clone(),
            ],
        )
    }

    #[test]
    fn suite_run_covers_every_trace_and_aggregates() {
        let result = run_suite(
            &TageConfig::small(),
            &tiny_suite(),
            2_000,
            &RunOptions::default(),
        );
        assert_eq!(result.traces.len(), 2);
        assert_eq!(result.aggregate.total().predictions, 4_000);
        assert!(result.mean_mpki() > 0.0);
        assert!(result.aggregate_mkp() > 0.0);
        assert!(result.trace("FP-1").is_some());
        assert!(result.trace("does-not-exist").is_none());
    }

    #[test]
    fn parallel_suite_runs_are_bit_identical_to_serial() {
        let suite = tiny_suite();
        let config = TageConfig::small();
        let serial = run_suite_with_parallelism(&config, &suite, 3_000, &RunOptions::default(), 1);
        for workers in [2, 4, 16] {
            let parallel =
                run_suite_with_parallelism(&config, &suite, 3_000, &RunOptions::default(), workers);
            assert_eq!(serial, parallel, "workers = {workers}");
        }
        let default = run_suite(&config, &suite, 3_000, &RunOptions::default());
        assert_eq!(serial, default);
    }

    #[test]
    fn file_backed_suite_matches_the_synthetic_path_bit_for_bit() {
        use tage_traces::writer::TraceWriter;
        let suite = tiny_suite();
        let config = TageConfig::small();
        let reference = run_suite(&config, &suite, 2_000, &RunOptions::default());

        let dir = std::env::temp_dir().join(format!("tage-suite-files-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for spec in suite.traces() {
            let path = dir.join(format!("{}.trace", spec.name()));
            std::fs::write(&path, TraceWriter::to_binary_bytes(&spec.generate(2_000))).unwrap();
            paths.push(path);
        }
        let files = SourceSuite::from_files("tiny", paths);
        for workers in [1, 4] {
            let streamed =
                run_suite_sources(&config, &files, 2_000, &RunOptions::default(), workers).unwrap();
            assert_eq!(streamed.traces.len(), reference.traces.len());
            for (ours, theirs) in streamed.traces.iter().zip(&reference.traces) {
                assert_eq!(ours, theirs, "workers = {workers}");
            }
            assert_eq!(streamed.aggregate, reference.aggregate);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fp_trace_is_more_predictable_than_server_trace() {
        let result = run_suite(
            &TageConfig::small(),
            &tiny_suite(),
            20_000,
            &RunOptions::default(),
        );
        let fp = result.trace("FP-1").unwrap().mpki();
        let serv = result.trace("SERV-2").unwrap().mpki();
        assert!(serv > fp, "server {serv} MPKI should exceed FP {fp} MPKI");
    }

    #[test]
    fn display_mentions_suite_and_config() {
        let result = run_suite(
            &TageConfig::small(),
            &tiny_suite(),
            500,
            &RunOptions::default(),
        );
        let s = format!("{result}");
        assert!(s.contains("tiny"));
        assert!(s.contains("TAGE-16K"));
    }
}
