//! Confidence-driven application scenarios as composable
//! [`EngineObserver`](crate::engine::EngineObserver)s.
//!
//! The paper's storage-free confidence estimator matters through its
//! *applications*. Beyond the fetch-gating ([`crate::gating`]) and SMT
//! fetch-policy ([`crate::smt`]) models, this module houses the remaining
//! scenario axis of the roadmap:
//!
//! * [`energy`] — misprediction-recovery energy: confidence-driven
//!   checkpointing vs full pipeline refill, reported as energy per
//!   kilo-instruction;
//! * [`interference`] — N-core shared-predictor interference: N per-core
//!   streams interleaved into one shared predictor + classifier, measuring
//!   the MPKI cost of cross-core aliasing vs private predictors;
//! * [`prefetch`] — confidence-driven prefetch throttling: useless
//!   wrong-path prefetch traffic avoided vs useful coverage lost.
//!
//! Each scenario is campaign-runnable: [`ScenarioSpec`] is the grid token
//! the sweep-point layer ([`crate::point`]) and the `tage-bench` campaign
//! runner cross with the predictor × scheme × suite axes (`tage-bench
//! --scenario`), with deterministic, thread-placement-independent metrics.

pub mod energy;
pub mod interference;
pub mod prefetch;

use core::fmt;

/// One value of the scenario axis of a sweep grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ScenarioSpec {
    /// Plain measurement — no scenario observer attached.
    #[default]
    Baseline,
    /// The misprediction-recovery energy model ([`energy`]), with the
    /// default cost model.
    RecoveryEnergy,
    /// N-core shared-predictor interference ([`interference`]): every suite
    /// source becomes one core.
    SharedPredictor,
    /// Confidence-driven prefetch throttling ([`prefetch`]), suppressing
    /// behind low-confidence predictions with the default cost model.
    PrefetchThrottle,
}

/// The grid token of the plain (no-scenario) cell.
pub const BASELINE_TOKEN: &str = "baseline";

impl ScenarioSpec {
    /// Every scenario, in listing order.
    pub const ALL: [ScenarioSpec; 4] = [
        ScenarioSpec::Baseline,
        ScenarioSpec::RecoveryEnergy,
        ScenarioSpec::SharedPredictor,
        ScenarioSpec::PrefetchThrottle,
    ];

    /// Every grid token the scenario axis accepts, in listing order.
    pub fn known_tokens() -> Vec<String> {
        ScenarioSpec::ALL
            .iter()
            .map(|s| s.label().to_string())
            .collect()
    }

    /// Parses a grid token into a scenario spec.
    pub fn parse(token: &str) -> Option<Self> {
        ScenarioSpec::ALL
            .iter()
            .copied()
            .find(|s| s.label() == token)
    }

    /// The stable label naming this scenario in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioSpec::Baseline => BASELINE_TOKEN,
            ScenarioSpec::RecoveryEnergy => "recovery-energy",
            ScenarioSpec::SharedPredictor => "shared-predictor",
            ScenarioSpec::PrefetchThrottle => "prefetch-throttle",
        }
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_tokens_parse_and_label_round_trip() {
        let tokens = ScenarioSpec::known_tokens();
        assert_eq!(tokens.len(), 4);
        assert_eq!(tokens[0], BASELINE_TOKEN);
        for token in &tokens {
            let spec = ScenarioSpec::parse(token).expect("known token parses");
            assert_eq!(spec.label(), token);
            assert_eq!(format!("{spec}"), *token);
        }
        assert!(ScenarioSpec::parse("nonsense").is_none());
        assert_eq!(ScenarioSpec::default(), ScenarioSpec::Baseline);
    }
}
