//! On-disk trace format definitions shared by the reader and the writer.
//!
//! Two encodings are supported:
//!
//! * a compact **binary** format (magic `b"TAGT"`), 21 bytes per record, and
//! * a human-readable **text** format, one record per line:
//!   `"<pc-hex> <kind-letter> <T|N> <target-hex> <gap>"`, with `#`-prefixed
//!   comment lines and a `! name <trace-name>` header line.
//!
//! Real CBP-style traces can be converted to either encoding by an external
//! tool and then consumed by the simulation harness exactly like the
//! synthetic suites.

use std::error::Error;
use std::fmt;
use std::io;

use crate::record::{BranchKind, BranchRecord};

/// Magic bytes identifying the binary trace format.
pub const MAGIC: [u8; 4] = *b"TAGT";

/// Current binary format version.
pub const VERSION: u32 = 1;

/// Size in bytes of one encoded record in the binary format.
pub const RECORD_BYTES: usize = 8 + 8 + 1 + 4;

/// Encodes a branch kind as a single byte for the binary format.
pub fn kind_to_byte(kind: BranchKind) -> u8 {
    match kind {
        BranchKind::Conditional => 0,
        BranchKind::Unconditional => 1,
        BranchKind::Call => 2,
        BranchKind::Return => 3,
        BranchKind::Indirect => 4,
    }
}

/// Decodes a branch kind from its binary encoding. Returns `None` for bytes
/// that encode no kind; readers turn that into a
/// [`FormatError::InvalidKind`] carrying the byte offset of the corrupt
/// record.
pub fn kind_from_byte(byte: u8) -> Option<BranchKind> {
    match byte {
        0 => Some(BranchKind::Conditional),
        1 => Some(BranchKind::Unconditional),
        2 => Some(BranchKind::Call),
        3 => Some(BranchKind::Return),
        4 => Some(BranchKind::Indirect),
        _ => None,
    }
}

/// Decodes one binary-format record from exactly [`RECORD_BYTES`] bytes.
///
/// `offset` is the byte offset of the record's first byte in the underlying
/// stream; it is only used to report *where* a corrupt record sits.
///
/// # Errors
///
/// Returns [`FormatError::InvalidKind`] (with `offset`) when the flag byte
/// encodes no branch kind.
///
/// # Panics
///
/// Panics if `bytes` is not exactly [`RECORD_BYTES`] long.
pub fn decode_record(bytes: &[u8], offset: u64) -> Result<BranchRecord, FormatError> {
    assert_eq!(bytes.len(), RECORD_BYTES, "one encoded record expected");
    let pc = u64::from_le_bytes(bytes[0..8].try_into().expect("slice length"));
    let target = u64::from_le_bytes(bytes[8..16].try_into().expect("slice length"));
    let flags = bytes[16];
    let gap = u32::from_le_bytes(bytes[17..21].try_into().expect("slice length"));
    let kind = kind_from_byte(flags & 0x7F).ok_or(FormatError::InvalidKind {
        byte: flags & 0x7F,
        offset,
    })?;
    Ok(BranchRecord {
        pc,
        target,
        taken: flags & 0x80 != 0,
        kind,
        gap,
    })
}

/// Encodes a branch kind as the single letter used by the text format.
pub fn kind_to_letter(kind: BranchKind) -> char {
    match kind {
        BranchKind::Conditional => 'C',
        BranchKind::Unconditional => 'J',
        BranchKind::Call => 'L',
        BranchKind::Return => 'R',
        BranchKind::Indirect => 'I',
    }
}

/// Decodes a branch kind from its text-format letter.
pub fn kind_from_letter(letter: char) -> Result<BranchKind, FormatError> {
    match letter {
        'C' => Ok(BranchKind::Conditional),
        'J' => Ok(BranchKind::Unconditional),
        'L' => Ok(BranchKind::Call),
        'R' => Ok(BranchKind::Return),
        'I' => Ok(BranchKind::Indirect),
        other => Err(FormatError::InvalidKindLetter(other)),
    }
}

/// Errors produced while reading or writing traces.
#[derive(Debug)]
pub enum FormatError {
    /// An underlying IO error.
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic([u8; 4]),
    /// The file uses an unsupported format version.
    UnsupportedVersion(u32),
    /// An invalid branch-kind byte was encountered in a binary trace.
    InvalidKind {
        /// The offending kind byte.
        byte: u8,
        /// Byte offset of the corrupt record in the stream.
        offset: u64,
    },
    /// An invalid branch-kind letter was encountered in a text trace.
    InvalidKindLetter(char),
    /// A malformed line was encountered in a text trace.
    MalformedLine {
        /// 1-based line number.
        line: usize,
        /// Description of what was wrong.
        reason: String,
    },
    /// The trace ended in the middle of a record (or before its declared
    /// record count).
    TruncatedRecord {
        /// Byte offset where the incomplete record starts.
        offset: u64,
    },
    /// A compressed frame (gzip/DEFLATE) is corrupt: bad container header,
    /// malformed Huffman data, or a failed integrity check.
    CorruptFrame {
        /// Byte offset in the *compressed* stream where the corruption was
        /// detected.
        offset: u64,
        /// Description of what was wrong.
        reason: String,
    },
    /// An invalid branch-outcome byte was encountered in a CBP-style binary
    /// trace (only `0` and `1` encode outcomes).
    InvalidOutcome {
        /// The offending outcome byte.
        byte: u8,
        /// Byte offset of the corrupt record in the stream.
        offset: u64,
    },
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "io error: {e}"),
            FormatError::BadMagic(m) => write!(f, "bad magic bytes {m:?}, expected {MAGIC:?}"),
            FormatError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v}, expected {VERSION}"
                )
            }
            FormatError::InvalidKind { byte, offset } => {
                write!(f, "invalid branch kind byte {byte} at byte offset {offset}")
            }
            FormatError::InvalidKindLetter(c) => write!(f, "invalid branch kind letter '{c}'"),
            FormatError::MalformedLine { line, reason } => {
                write!(f, "malformed line {line}: {reason}")
            }
            FormatError::TruncatedRecord { offset } => write!(
                f,
                "trace ended in the middle of a record at byte offset {offset}"
            ),
            FormatError::CorruptFrame { offset, reason } => write!(
                f,
                "corrupt compressed frame at byte offset {offset}: {reason}"
            ),
            FormatError::InvalidOutcome { byte, offset } => write!(
                f,
                "invalid branch outcome byte {byte} at byte offset {offset}"
            ),
        }
    }
}

impl Error for FormatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> Self {
        FormatError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_byte_round_trips() {
        for kind in [
            BranchKind::Conditional,
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::Indirect,
        ] {
            assert_eq!(kind_from_byte(kind_to_byte(kind)).unwrap(), kind);
        }
    }

    #[test]
    fn kind_letter_round_trips() {
        for kind in [
            BranchKind::Conditional,
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::Indirect,
        ] {
            assert_eq!(kind_from_letter(kind_to_letter(kind)).unwrap(), kind);
        }
    }

    #[test]
    fn invalid_encodings_are_rejected() {
        assert_eq!(kind_from_byte(42), None);
        assert!(matches!(
            kind_from_letter('x'),
            Err(FormatError::InvalidKindLetter('x'))
        ));
    }

    #[test]
    fn decode_record_reports_corruption_offset() {
        let mut bytes = [0u8; RECORD_BYTES];
        bytes[16] = 0x80 | 2; // taken call
        let record = decode_record(&bytes, 99).unwrap();
        assert!(record.taken);
        assert_eq!(record.kind, BranchKind::Call);
        bytes[16] = 0x7F; // no such kind
        let err = decode_record(&bytes, 1234).unwrap_err();
        assert!(matches!(
            err,
            FormatError::InvalidKind {
                byte: 0x7F,
                offset: 1234
            }
        ));
        assert!(format!("{err}").contains("1234"));
    }

    #[test]
    fn errors_format_and_expose_sources() {
        let io_err = FormatError::from(io::Error::other("boom"));
        assert!(format!("{io_err}").contains("boom"));
        assert!(Error::source(&io_err).is_some());
        let other = FormatError::BadMagic(*b"NOPE");
        assert!(Error::source(&other).is_none());
        assert!(!format!("{other}").is_empty());
    }
}
