//! The common interface every conditional branch predictor implements.

use core::fmt;

/// The outcome of a prediction lookup, carrying the self-confidence margin.
///
/// For counter-based predictors the margin is the distance of the counter
/// from its weak state; for neural predictors (perceptron, GEHL) it is the
/// absolute value of the prediction sum. The margin is what *self-confidence*
/// estimation (Jiménez & Lin; Seznec's O-GEHL usage) thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted direction (`true` = taken).
    pub taken: bool,
    /// The predictor-specific confidence margin (larger = more confident).
    pub margin: i64,
}

impl Prediction {
    /// Creates a prediction with the given direction and margin.
    pub fn new(taken: bool, margin: i64) -> Self {
        Prediction { taken, margin }
    }

    /// A prediction with no margin information.
    pub fn direction(taken: bool) -> Self {
        Prediction { taken, margin: 0 }
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (margin {})",
            if self.taken { "taken" } else { "not-taken" },
            self.margin
        )
    }
}

/// A trace-driven conditional branch predictor.
///
/// The simulation protocol is: call [`BranchPredictor::predict`] for a branch
/// PC, resolve the branch, then call [`BranchPredictor::update`] with the
/// actual outcome and the prediction that was made. Predictors keep their
/// speculative state (global history, folded histories) internally and update
/// it with the *resolved* outcome, which is exact for in-order trace-driven
/// simulation.
pub trait BranchPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> Prediction;

    /// Updates the predictor with the resolved outcome of the branch at
    /// `pc`. `prediction` must be the value returned by the matching
    /// [`BranchPredictor::predict`] call.
    fn update(&mut self, pc: u64, taken: bool, prediction: &Prediction);

    /// Total storage the predictor uses, in bits.
    fn storage_bits(&self) -> u64;

    /// A short human-readable name for reports.
    fn name(&self) -> String {
        "predictor".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_constructors() {
        let p = Prediction::new(true, 12);
        assert!(p.taken);
        assert_eq!(p.margin, 12);
        let d = Prediction::direction(false);
        assert!(!d.taken);
        assert_eq!(d.margin, 0);
    }

    #[test]
    fn prediction_display() {
        assert!(format!("{}", Prediction::new(true, 3)).contains("taken"));
        assert!(format!("{}", Prediction::new(false, 3)).contains("not-taken"));
    }

    #[test]
    fn trait_is_object_safe() {
        // Compile-time check: the trait must be usable as a trait object so
        // that the simulation harness can store heterogeneous predictors.
        fn _takes_dyn(_p: &dyn BranchPredictor) {}
    }
}
