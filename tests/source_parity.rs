//! Streaming-ingestion parity contract.
//!
//! The `BranchSource` redesign re-plumbed the whole consumption stack —
//! engine, runner, suites, sweep points — over chunked streams. These tests
//! pin the contract the redesign must honour:
//!
//! * `run(&Trace)`, `run_source(SliceSource)`, `run_source(BinaryFileSource)`
//!   (via a temp-file round-trip through the writer) and
//!   `run_source(SyntheticSource)` produce **bit-identical**
//!   `EngineSummary`s and `ConfidenceReport`s;
//! * the binary file path holds at any chunk size, including chunks far
//!   smaller than the trace;
//! * history-warmed segment sharding merges deterministically: the same
//!   segment plan produces identical results at every worker count, and a
//!   single segment without warmup degenerates to the sequential run;
//! * streamed suite runs are byte-identical to the materialized path at
//!   every tested worker count.

use std::path::PathBuf;

use tage_confidence_suite::confidence::TageConfidenceClassifier;
use tage_confidence_suite::sim::engine::{ReportObserver, SimEngine};
use tage_confidence_suite::sim::runner::{run_source, run_trace, RunOptions};
use tage_confidence_suite::sim::segment::{run_segmented_source, SegmentOptions};
use tage_confidence_suite::sim::suite::{run_suite_sources, run_suite_with_parallelism};
use tage_confidence_suite::tage::{TageConfig, TagePredictor};
use tage_confidence_suite::traces::source::{
    BinaryFileSource, BranchSource, SliceSource, SourceSuite, SyntheticSource,
};
use tage_confidence_suite::traces::writer::{StreamingTraceWriter, TraceWriter};
use tage_confidence_suite::traces::{format, suites, TraceSpec};

fn spec(name: &str) -> TraceSpec {
    suites::cbp1_like()
        .trace(name)
        .expect("trace exists")
        .clone()
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("tage-parity-{}-{tag}.trace", std::process::id()))
}

/// The core four-way parity pin: materialized, slice-streamed,
/// file-streamed and generator-streamed runs agree bit for bit on both the
/// `EngineSummary` and the `ConfidenceReport`.
#[test]
fn four_ingestion_paths_are_bit_identical() {
    let spec = spec("SERV-2");
    let branches = 8_000;
    let trace = spec.generate(branches);
    let config = TageConfig::small();

    let engine = || {
        SimEngine::new(
            TagePredictor::new(config.clone()),
            TageConfidenceClassifier::new(&config),
        )
    };

    // 1. Materialized.
    let mut reference_report = ReportObserver::default();
    let reference_summary = engine().run(&trace, &mut reference_report);

    // 2. Zero-copy slice stream.
    let mut slice_report = ReportObserver::default();
    let slice_summary = engine()
        .run_source(&mut SliceSource::from_trace(&trace), &mut slice_report)
        .unwrap();
    assert_eq!(slice_summary, reference_summary);
    assert_eq!(slice_report.report, reference_report.report);

    // 3. Binary file stream, round-tripped through the writer.
    let path = temp_path("fourway");
    std::fs::write(&path, TraceWriter::to_binary_bytes(&trace)).unwrap();
    let mut file_report = ReportObserver::default();
    let file_summary = engine()
        .run_source(
            &mut BinaryFileSource::open(&path).unwrap(),
            &mut file_report,
        )
        .unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(file_summary, reference_summary);
    assert_eq!(file_report.report, reference_report.report);

    // 4. Generator stream (no materialized trace anywhere).
    let mut synthetic_report = ReportObserver::default();
    let synthetic_summary = engine()
        .run_source(
            &mut SyntheticSource::from_spec(&spec, branches),
            &mut synthetic_report,
        )
        .unwrap();
    assert_eq!(synthetic_summary, reference_summary);
    assert_eq!(synthetic_report.report, reference_report.report);
}

/// The same four-way pin at the runner level (`TraceRunResult` carries the
/// report plus exact counters), including through the streaming writer.
#[test]
fn runner_results_agree_across_sources_and_chunk_sizes() {
    let spec = spec("INT-2");
    let branches = 6_000;
    let trace = spec.generate(branches);
    let config = TageConfig::small();
    let options = RunOptions::default();

    let reference = run_trace(&config, &trace, &options);
    assert_eq!(reference.conditional_branches, branches as u64);

    let streamed = run_source(
        &config,
        &mut SyntheticSource::from_spec(&spec, branches),
        &options,
    )
    .unwrap();
    assert_eq!(streamed, reference);

    // Streaming writer (unknown record count) → file source, at chunk sizes
    // straddling the trace length.
    let path = temp_path("runner");
    let mut writer =
        StreamingTraceWriter::new(std::fs::File::create(&path).unwrap(), spec.name()).unwrap();
    for record in trace.iter() {
        writer.push(record).unwrap();
    }
    writer.finish().unwrap();
    for chunk_records in [3, 1024, 1 << 20] {
        let mut source = BinaryFileSource::open_with_chunk_records(&path, chunk_records).unwrap();
        let from_file = run_source(&config, &mut source, &options).unwrap();
        assert_eq!(from_file, reference, "chunk_records = {chunk_records}");
    }
    std::fs::remove_file(&path).unwrap();
}

/// Corrupt bytes in a streamed file surface as offset-carrying errors, not
/// as silently wrong results.
#[test]
fn streamed_corruption_is_reported_with_byte_offsets() {
    let trace = spec("FP-1").generate(100);
    let path = temp_path("corrupt");
    let mut bytes = TraceWriter::to_binary_bytes(&trace);
    bytes.truncate(bytes.len() - 7);
    std::fs::write(&path, &bytes).unwrap();
    let error = run_source(
        &TageConfig::small(),
        &mut BinaryFileSource::open(&path).unwrap(),
        &RunOptions::default(),
    )
    .unwrap_err();
    assert!(
        matches!(error, format::FormatError::TruncatedRecord { offset } if offset > 0),
        "unexpected error {error:?}"
    );
    std::fs::remove_file(&path).unwrap();
}

/// Segment-sharded execution merges deterministically: the same plan yields
/// identical merged results at ≥3 worker counts, both over generator
/// streams and over a seekable binary file, and the 1-segment plan without
/// warmup is exactly the sequential run.
#[test]
fn history_warmed_segments_merge_identically_at_every_worker_count() {
    let spec = spec("MM-5");
    let branches = 9_000;
    let config = TageConfig::small();
    let options = RunOptions::default();
    let total = SyntheticSource::from_spec(&spec, branches)
        .skip_records(u64::MAX)
        .unwrap();

    // Degenerate plan == sequential run.
    let sequential = run_source(
        &config,
        &mut SyntheticSource::from_spec(&spec, branches),
        &options,
    )
    .unwrap();
    let degenerate = run_segmented_source(
        &config,
        &options,
        &SegmentOptions::new(1, 0),
        total,
        3,
        || Ok(SyntheticSource::from_spec(&spec, branches)),
    )
    .unwrap();
    assert_eq!(degenerate.result, sequential);

    // Real plan: identical across worker counts, over both source kinds.
    let segment_options = SegmentOptions::new(6, 768);
    let synthetic_reference =
        run_segmented_source(&config, &options, &segment_options, total, 1, || {
            Ok(SyntheticSource::from_spec(&spec, branches))
        })
        .unwrap();
    assert_eq!(
        synthetic_reference.segment_branches.iter().sum::<u64>(),
        branches as u64,
        "segments cover every conditional branch exactly once"
    );
    for workers in [2, 3, 4, 8] {
        let sharded =
            run_segmented_source(&config, &options, &segment_options, total, workers, || {
                Ok(SyntheticSource::from_spec(&spec, branches))
            })
            .unwrap();
        assert_eq!(sharded, synthetic_reference, "workers = {workers}");
    }

    let path = temp_path("segments");
    std::fs::write(
        &path,
        TraceWriter::to_binary_bytes(&spec.generate(branches)),
    )
    .unwrap();
    for workers in [1, 3, 5] {
        let from_file =
            run_segmented_source(&config, &options, &segment_options, total, workers, || {
                BinaryFileSource::open_with_chunk_records(&path, 512)
            })
            .unwrap();
        assert_eq!(from_file, synthetic_reference, "file workers = {workers}");
    }
    std::fs::remove_file(&path).unwrap();
}

/// Suite runs over streaming sources are byte-identical to the materialized
/// suite path at every tested worker count.
#[test]
fn streamed_suite_runs_match_the_materialized_path_at_every_worker_count() {
    let full = suites::cbp1_like();
    let suite = tage_confidence_suite::traces::Suite::new(
        "parity",
        vec![
            full.trace("FP-1").unwrap().clone(),
            full.trace("SERV-2").unwrap().clone(),
            full.trace("MM-5").unwrap().clone(),
        ],
    );
    let config = TageConfig::small();
    let options = RunOptions::default();
    let reference = run_suite_with_parallelism(&config, &suite, 2_000, &options, 1);
    for workers in [1, 2, 3, 8] {
        let streamed = run_suite_sources(
            &config,
            &SourceSuite::from_suite(&suite),
            2_000,
            &options,
            workers,
        )
        .unwrap();
        assert_eq!(streamed, reference, "workers = {workers}");
        let materialized = run_suite_with_parallelism(&config, &suite, 2_000, &options, workers);
        assert_eq!(materialized, reference, "materialized workers = {workers}");
    }
}
