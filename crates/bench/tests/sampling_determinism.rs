//! Sampled-campaign contract: a `sample:` suite reconstructs the full
//! run's MPKI within the documented error bound at a fraction of the
//! simulated branches, and its timing-free report stays byte-identical
//! across worker counts, engines, and a kill/resume split — the same
//! determinism bar the full-trace campaigns hold.

use tage_bench::campaign::{
    run_campaign_checkpointed, run_campaign_with_engine, validate_report, CampaignSpec,
};
use tage_bench::cellstore::CellStore;
use tage_sim::point::{PointResult, PredictorSpec, SchemeSpec};
use tage_sim::scenarios::ScenarioSpec;
use tage_sim::EngineKind;
use tage_traces::source::{SamplingSpec, SourceSuite};
use tage_traces::suites;

const BRANCHES: usize = 100_000;

/// The pinned plan: 250-record slices, 8 phases, seed 1 — the
/// configuration the phase-module accuracy test pins at the sim layer.
const PLAN: SamplingSpec = SamplingSpec {
    interval: 250,
    k: 8,
    seed: 1,
};

fn grid(predictors: &[&str], sampled: bool) -> CampaignSpec {
    let mut suite = SourceSuite::from(suites::cbp1_mini());
    if sampled {
        suite = suite.with_sampling(PLAN);
    }
    CampaignSpec {
        label: "sampling".to_string(),
        predictors: predictors
            .iter()
            .map(|token| PredictorSpec::parse(token).unwrap())
            .collect(),
        schemes: vec![SchemeSpec::parse("storage-free").unwrap()],
        suites: vec![suite],
        scenarios: vec![ScenarioSpec::Baseline],
        branches_per_trace: BRANCHES,
    }
}

fn only_result(report: &tage_bench::campaign::CampaignReport) -> &PointResult {
    let mut computed = report.points.iter().filter_map(|cell| cell.computed());
    let result = &computed.next().expect("one executed point").result;
    assert!(computed.next().is_none(), "expected exactly one point");
    result
}

#[test]
fn sampled_campaigns_reconstruct_full_mpki_at_a_fraction_of_the_branches() {
    let full =
        run_campaign_with_engine(&grid(&["tage-16k"], false), 4, EngineKind::Multilane).unwrap();
    let sampled =
        run_campaign_with_engine(&grid(&["tage-16k"], true), 4, EngineKind::Multilane).unwrap();
    let full_mpki = only_result(&full).mean_mpki();
    let sampled_point = only_result(&sampled);
    let sampled_mpki = sampled_point.mean_mpki();
    assert!(full_mpki > 0.0);
    let relative_error = (sampled_mpki - full_mpki).abs() / full_mpki;
    assert!(
        relative_error < 0.05,
        "sampled suite MPKI {sampled_mpki:.4} strays {:.2}% from the full run's {full_mpki:.4}",
        relative_error * 100.0
    );
    // The plan measures at least 5x fewer branches than the full run.
    let sampling = sampled_point.sampling.as_ref().expect("sampling metadata");
    assert_eq!(
        (sampling.interval, sampling.k, sampling.seed),
        (PLAN.interval, PLAN.k, PLAN.seed)
    );
    // Records include non-conditional branches, so the stream total is at
    // least the conditional-branch budget.
    assert!(sampling.total_records >= 4 * BRANCHES as u64);
    assert!(
        sampling.measured_branches * 5 <= sampling.total_records,
        "measured {} of {} branches is less than a 5x reduction",
        sampling.measured_branches,
        sampling.total_records
    );
    // The sampled report round-trips through schema validation.
    validate_report(&sampled.render_json(false)).expect("sampled report validates");
}

#[test]
fn sampled_reports_are_byte_identical_across_workers_engines_and_resume() {
    let spec = grid(&["tage-16k", "tage-64k"], true);
    let reference = run_campaign_with_engine(&spec, 1, EngineKind::Multilane)
        .unwrap()
        .render_json(false);
    for workers in [2, 4] {
        for engine in [EngineKind::Multilane, EngineKind::Scalar] {
            let report = run_campaign_with_engine(&spec, workers, engine)
                .unwrap()
                .render_json(false);
            assert_eq!(
                reference, report,
                "sampled report diverged at workers = {workers}, engine = {engine:?}"
            );
        }
    }

    // Kill/resume: one cell executed, then a resumed run (different worker
    // count and engine) finishes the grid — bytes still match.
    let dir =
        std::env::temp_dir().join(format!("tage-sampling-resume-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CellStore::new(&dir).unwrap();
    let partial = run_campaign_checkpointed(&spec, 1, EngineKind::Scalar, &store, Some(1)).unwrap();
    assert_eq!((partial.executed, partial.remaining), (1, 1));
    let resumed = run_campaign_checkpointed(&spec, 4, EngineKind::Multilane, &store, None).unwrap();
    assert_eq!(resumed.remaining, 0);
    assert_eq!(resumed.restored, 1);
    assert_eq!(reference, resumed.report.render_json(false));
    let _ = std::fs::remove_dir_all(&dir);
}
