#!/usr/bin/env bash
# Full verification: formatting, lints, build, tests and a throughput smoke.
# This is what CI runs; keep it green before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== throughput smoke =="
# Writes to an untracked path: the tracked BENCH_throughput.json records
# milestone entries only (see docs/BENCHMARKS.md), so routine verification
# must not dirty the working tree.
cargo run --release --bin throughput 50000 target/BENCH_throughput.json

echo "verify: OK"
