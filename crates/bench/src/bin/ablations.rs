//! Ablations of the design choices called out in DESIGN.md:
//!
//! * the `medium-conf-bim` recency window length (paper: "up to 8 branches"),
//! * the tagged prediction-counter width (the paper argues 4-bit counters do
//!   not fix the saturated class and slightly hurt accuracy).

use tage::TageConfig;
use tage_bench::{branches_from_args, print_header};
use tage_sim::experiment::{counter_width_ablation, window_ablation};
use tage_sim::report::{fraction, mkp, mpki, TextTable};
use tage_traces::suites;

fn main() {
    let branches = branches_from_args();
    print_header(
        "Ablations — medium-conf-bim window and counter width",
        branches,
    );
    let suite = suites::cbp1_like();

    println!("--- medium-conf-bim window length (16 Kbit predictor) ---");
    let rows = window_ablation(
        &TageConfig::small(),
        &suite,
        branches,
        &[0, 2, 4, 8, 16, 32],
    );
    let mut table = TextTable::new(vec![
        "window",
        "medium-conf-bim Pcov",
        "medium-conf-bim MKP",
        "high-conf-bim MKP",
    ]);
    for row in &rows {
        table.row(vec![
            row.window.to_string(),
            fraction(row.medium_bim_pcov),
            mkp(row.medium_bim_mprate_mkp),
            mkp(row.high_bim_mprate_mkp),
        ]);
    }
    print!("{}", table.render());
    println!();

    println!("--- tagged counter width (16 Kbit predictor, standard automaton) ---");
    let rows = counter_width_ablation(&TageConfig::small(), &suite, branches, &[2, 3, 4, 5]);
    let mut table = TextTable::new(vec![
        "counter bits",
        "MPKI",
        "saturated-class Pcov",
        "saturated-class MKP",
    ]);
    for row in &rows {
        table.row(vec![
            row.counter_bits.to_string(),
            mpki(row.mpki),
            fraction(row.saturated_pcov),
            mkp(row.saturated_mprate_mkp),
        ]);
    }
    print!("{}", table.render());
}
