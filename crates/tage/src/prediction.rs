//! The observable output of a TAGE prediction.
//!
//! The whole point of the paper is that these observables — which component
//! provided the prediction and the value of its counter — are sufficient to
//! grade confidence. [`TagePrediction`] therefore exposes everything the
//! predictor "sees" at prediction time, and is consumed both by
//! [`crate::TagePredictor::update`] and by the confidence classifier in the
//! `tage-confidence` crate.

use core::fmt;

/// Upper bound on the number of tagged components a [`crate::TageConfig`]
/// may declare (enforced by [`crate::TageConfig::validate`]).
///
/// The bound exists so prediction-time state fits in the fixed-size
/// [`TableLookups`] scratch: a lookup never touches the heap, whatever the
/// configuration.
pub const MAX_TAGGED_TABLES: usize = 16;

/// The per-tagged-table result of one prediction lookup: the entry index the
/// hash selected, the partial tag that was compared, and whether it matched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TableLookup {
    /// Index of the selected entry within the table (fits in `u32`: table
    /// index widths are at most 24 bits).
    pub index: u32,
    /// The partial tag computed for this (PC, history) pair.
    pub tag: u16,
    /// Whether the stored tag matched (`true` = the component hit).
    pub hit: bool,
}

/// The fixed-size collection of per-table lookup results carried by a
/// [`TagePrediction`].
///
/// This is the allocation-free replacement for the three `Vec`s
/// (`table_indices`, `table_tags`, `table_hits`) the predictor used to build
/// on every lookup: a `[TableLookup; MAX_TAGGED_TABLES]` scratch plus a
/// length, living entirely on the stack. Equality compares only the live
/// prefix, so two predictions agree iff their observable lookups agree.
#[derive(Clone, Copy)]
pub struct TableLookups {
    entries: [TableLookup; MAX_TAGGED_TABLES],
    len: u8,
    /// Bit `t` set iff live slot `t` hit — maintained alongside the entries
    /// so provider selection reads one word instead of re-scanning the
    /// per-table hit flags. Bits at or above `len` are always zero.
    hits: u16,
}

impl TableLookups {
    /// An empty scratch, ready for [`TableLookups::push`].
    pub fn new() -> Self {
        TableLookups {
            entries: [TableLookup::default(); MAX_TAGGED_TABLES],
            len: 0,
            hits: 0,
        }
    }

    /// `tables` all-missing lookups (index 0, tag 0, no hit): the shape a
    /// cold predictor produces. Useful for building fixtures in tests.
    ///
    /// # Panics
    ///
    /// Panics if `tables > MAX_TAGGED_TABLES`.
    pub fn cold(tables: usize) -> Self {
        assert!(tables <= MAX_TAGGED_TABLES);
        TableLookups {
            entries: [TableLookup::default(); MAX_TAGGED_TABLES],
            len: tables as u8,
            hits: 0,
        }
    }

    /// Appends one table's lookup result.
    ///
    /// # Panics
    ///
    /// Panics if the scratch already holds [`MAX_TAGGED_TABLES`] lookups.
    #[inline]
    pub fn push(&mut self, lookup: TableLookup) {
        self.entries[usize::from(self.len)] = lookup;
        self.hits |= u16::from(lookup.hit) << self.len;
        self.len += 1;
    }

    /// Empties the scratch for in-place reuse without rewriting the dead
    /// slots (equality and every accessor only look at the live prefix, so
    /// stale entries beyond the new pushes are unobservable).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
        self.hits = 0;
    }

    /// Declares the first `n` slots live with hit mask `hits`, for batched
    /// writers that fill entries out of push order via
    /// [`TableLookups::entry_mut`]. `hits` must agree with the per-entry
    /// flags — bit `t` set iff slot `t` hit.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds [`MAX_TAGGED_TABLES`] or `hits` has bits at or
    /// above `n`.
    #[inline]
    pub(crate) fn set_live(&mut self, n: usize, hits: u16) {
        assert!(n <= MAX_TAGGED_TABLES);
        debug_assert_eq!(hits >> n, 0, "hit mask flags a dead slot");
        self.len = n as u8;
        self.hits = hits;
    }

    /// Direct mutable access to slot `t` of the fixed scratch (live or
    /// not) — the component-major assembly path of the lane-batched engine
    /// writes one table rank across many predictions, then declares the
    /// prefix live with [`TableLookups::set_live`].
    #[inline]
    pub(crate) fn entry_mut(&mut self, t: usize) -> &mut TableLookup {
        &mut self.entries[t]
    }

    /// Number of tagged tables observed by this prediction.
    #[inline]
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Returns `true` if no table lookups were recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The entry index selected in table rank `t`.
    #[inline]
    pub fn index(&self, t: usize) -> usize {
        self.as_slice()[t].index as usize
    }

    /// The partial tag computed for table rank `t`.
    #[inline]
    pub fn tag(&self, t: usize) -> u16 {
        self.as_slice()[t].tag
    }

    /// Whether table rank `t` hit (tag match).
    #[inline]
    pub fn hit(&self, t: usize) -> bool {
        self.as_slice()[t].hit
    }

    /// The live hit flags as a bitmask: bit `t` set iff table rank `t` hit.
    #[inline]
    pub fn hit_mask(&self) -> u16 {
        self.hits
    }

    /// The live lookups as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[TableLookup] {
        &self.entries[..usize::from(self.len)]
    }

    /// Iterates over the live lookups.
    pub fn iter(&self) -> core::slice::Iter<'_, TableLookup> {
        self.as_slice().iter()
    }
}

impl Default for TableLookups {
    fn default() -> Self {
        TableLookups::new()
    }
}

impl core::ops::Index<usize> for TableLookups {
    type Output = TableLookup;

    fn index(&self, t: usize) -> &TableLookup {
        &self.as_slice()[t]
    }
}

impl<'a> IntoIterator for &'a TableLookups {
    type Item = &'a TableLookup;
    type IntoIter = core::slice::Iter<'a, TableLookup>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for TableLookups {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for TableLookups {}

impl fmt::Debug for TableLookups {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// Which component provided the final (or alternate) prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provider {
    /// The bimodal base predictor (no tagged component hit).
    Bimodal,
    /// A tagged component; `table` is its rank (0 = shortest history).
    Tagged {
        /// Rank of the providing tagged component (0-based, increasing
        /// history length).
        table: usize,
    },
}

impl Provider {
    /// Returns `true` if the provider is the bimodal base predictor.
    pub fn is_bimodal(self) -> bool {
        matches!(self, Provider::Bimodal)
    }

    /// Returns the tagged-table rank, if the provider is a tagged component.
    pub fn table(self) -> Option<usize> {
        match self {
            Provider::Bimodal => None,
            Provider::Tagged { table } => Some(table),
        }
    }
}

impl fmt::Display for Provider {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Provider::Bimodal => write!(f, "bimodal"),
            Provider::Tagged { table } => write!(f, "T{}", table + 1),
        }
    }
}

/// Everything observable about one TAGE prediction.
///
/// The indices and tags computed at prediction time are carried along so the
/// update phase reuses exactly the values the prediction used (as the
/// hardware would), and so the structure is self-contained for confidence
/// classification.
///
/// The structure is `Copy` and lives entirely on the stack: the per-table
/// observables sit in the fixed-size [`TableLookups`] scratch, so producing
/// a prediction performs **zero heap allocations**.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagePrediction {
    /// The final predicted direction.
    pub taken: bool,
    /// The component that provided the final prediction.
    pub provider: Provider,
    /// The value of the provider's prediction counter
    /// (bimodal counter if `provider` is [`Provider::Bimodal`]).
    pub provider_counter: i8,
    /// The centered magnitude `|2*ctr + 1|` of the provider counter.
    pub provider_magnitude: u8,
    /// Whether the provider counter was in a weak state.
    pub provider_weak: bool,
    /// The alternate prediction `altpred`: what the predictor would have
    /// predicted on a miss in the provider component.
    pub alternate_taken: bool,
    /// The component that provided the alternate prediction.
    pub alternate_provider: Provider,
    /// Whether the final prediction used the alternate prediction instead of
    /// the provider's counter (the `USE_ALT_ON_NA` path for newly allocated
    /// entries).
    pub used_alternate: bool,
    /// Per-tagged-table lookup results (index, partial tag, hit) in the
    /// allocation-free fixed-size scratch.
    pub tables: TableLookups,
    /// The bimodal table index for this prediction.
    pub bimodal_index: usize,
    /// The value of the bimodal counter at prediction time.
    pub bimodal_counter: i8,
}

impl Default for TagePrediction {
    /// A cold placeholder (bimodal-provided, not taken, no lookups) — the
    /// slot value batched engines pre-size their output buffers with before
    /// resolving in place.
    fn default() -> Self {
        TagePrediction {
            taken: false,
            provider: Provider::Bimodal,
            provider_counter: 0,
            provider_magnitude: 0,
            provider_weak: false,
            alternate_taken: false,
            alternate_provider: Provider::Bimodal,
            used_alternate: false,
            tables: TableLookups::new(),
            bimodal_index: 0,
            bimodal_counter: 0,
        }
    }
}

impl TagePrediction {
    /// Returns `true` if the prediction was provided by the bimodal base
    /// predictor.
    pub fn is_bimodal_provided(&self) -> bool {
        self.provider.is_bimodal()
    }

    /// Returns `true` if the prediction was provided by a tagged component
    /// whose counter was saturated (the `Stag` class before the three-level
    /// grouping).
    pub fn is_saturated_tagged(&self, counter_bits: u8) -> bool {
        !self.provider.is_bimodal()
            && u32::from(self.provider_magnitude) == (1u32 << counter_bits) - 1
    }

    /// Returns `true` if the bimodal counter observed at prediction time was
    /// weak (the `low-conf-bim` condition).
    pub fn bimodal_weak(&self) -> bool {
        self.bimodal_counter == 0 || self.bimodal_counter == -1
    }
}

impl tage_predictors::PredictionOutcome for TagePrediction {
    fn predicted_taken(&self) -> bool {
        self.taken
    }
}

impl fmt::Display for TagePrediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by {} (ctr {}, |2c+1| {}{})",
            if self.taken { "taken" } else { "not-taken" },
            self.provider,
            self.provider_counter,
            self.provider_magnitude,
            if self.used_alternate {
                ", alt used"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(provider: Provider, magnitude: u8) -> TagePrediction {
        TagePrediction {
            taken: true,
            provider,
            provider_counter: 3,
            provider_magnitude: magnitude,
            provider_weak: magnitude == 1,
            alternate_taken: false,
            alternate_provider: Provider::Bimodal,
            used_alternate: false,
            tables: TableLookups::cold(4),
            bimodal_index: 0,
            bimodal_counter: 1,
        }
    }

    #[test]
    fn provider_accessors() {
        assert!(Provider::Bimodal.is_bimodal());
        assert_eq!(Provider::Bimodal.table(), None);
        assert!(!Provider::Tagged { table: 2 }.is_bimodal());
        assert_eq!(Provider::Tagged { table: 2 }.table(), Some(2));
    }

    #[test]
    fn saturated_tagged_detection_depends_on_counter_width() {
        let p = sample(Provider::Tagged { table: 1 }, 7);
        assert!(p.is_saturated_tagged(3));
        assert!(!p.is_saturated_tagged(4));
        let bim = sample(Provider::Bimodal, 7);
        assert!(!bim.is_saturated_tagged(3));
    }

    #[test]
    fn bimodal_weak_uses_observed_bimodal_counter() {
        let mut p = sample(Provider::Bimodal, 1);
        p.bimodal_counter = 0;
        assert!(p.bimodal_weak());
        p.bimodal_counter = -1;
        assert!(p.bimodal_weak());
        p.bimodal_counter = 2;
        assert!(!p.bimodal_weak());
    }

    #[test]
    fn table_lookups_push_and_accessors() {
        let mut lookups = TableLookups::new();
        assert!(lookups.is_empty());
        lookups.push(TableLookup {
            index: 17,
            tag: 0x1ab,
            hit: true,
        });
        lookups.push(TableLookup {
            index: 3,
            tag: 0x2cd,
            hit: false,
        });
        assert_eq!(lookups.len(), 2);
        assert_eq!(lookups.index(0), 17);
        assert_eq!(lookups.tag(0), 0x1ab);
        assert!(lookups.hit(0));
        assert!(!lookups.hit(1));
        assert_eq!(lookups[1].index, 3);
        assert_eq!(lookups.iter().filter(|l| l.hit).count(), 1);
    }

    #[test]
    fn table_lookups_equality_ignores_dead_slots() {
        let mut a = TableLookups::new();
        let mut b = TableLookups::new();
        a.push(TableLookup {
            index: 1,
            tag: 2,
            hit: true,
        });
        b.push(TableLookup {
            index: 1,
            tag: 2,
            hit: true,
        });
        assert_eq!(a, b);
        b.push(TableLookup::default());
        assert_ne!(a, b, "different live lengths must not compare equal");
        assert_eq!(TableLookups::cold(4).len(), 4);
        assert!(!TableLookups::cold(4).hit(3));
    }

    #[test]
    #[should_panic]
    fn table_lookups_overflow_panics() {
        let mut lookups = TableLookups::new();
        for _ in 0..=MAX_TAGGED_TABLES {
            lookups.push(TableLookup::default());
        }
    }

    #[test]
    fn display_mentions_provider() {
        let p = sample(Provider::Tagged { table: 0 }, 5);
        assert!(format!("{p}").contains("T1"));
        assert!(format!("{}", Provider::Bimodal).contains("bimodal"));
    }
}
