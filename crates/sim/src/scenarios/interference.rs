//! N-core **shared-predictor interference**.
//!
//! When N cores (or N hardware contexts of a cluster) share one branch
//! predictor and its confidence estimator, the streams alias in the shared
//! tables and interleave in the shared history registers. This scenario
//! measures what that sharing costs: every source of a suite becomes one
//! core's instruction stream, the streams are interleaved round-robin (one
//! conditional branch per cycle, the fair schedule) into a **single shared
//! [`SimEngine`]**, and the per-core misprediction counters are compared
//! against N private predictors running the same streams in isolation (the
//! ordinary per-trace run every other experiment performs).
//!
//! The staging cursors and the cycle loop are the shared
//! [`crate::interleave`] core (the same machinery behind the SMT fetch
//! model); this module adds only the shared-engine driver and the per-core
//! accounting. A single-core "shared" run degenerates to the private run
//! bit for bit — pinned by this module's tests — so every measured
//! difference at N ≥ 2 is interference, not harness noise.

use tage_confidence::scheme::ConfidenceScheme;
use tage_predictors::PredictorCore;
use tage_traces::format::FormatError;
use tage_traces::source::BranchSource;
use tage_traces::BranchRecord;

use crate::engine::SimEngine;
use crate::interleave::{
    interleave, next_round_robin, InterleaveDriver, StopCondition, StreamLane,
};

/// Per-core counters of a shared-predictor run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreCounters {
    /// The core's stream name.
    pub name: String,
    /// Conditional branches the core executed.
    pub branches: u64,
    /// Mispredictions among them under the shared predictor.
    pub mispredictions: u64,
    /// Instructions the core's stream carried (every record counted once).
    pub instructions: u64,
}

impl CoreCounters {
    /// The core's misprediction rate in mispredictions per
    /// kilo-instruction.
    pub fn mpki(&self) -> f64 {
        crate::per_kilo_instruction(self.mispredictions as f64, self.instructions)
    }
}

/// Outcome of interleaving N core streams through one shared engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedRunResult {
    /// Per-core counters, in input order.
    pub cores: Vec<CoreCounters>,
    /// Fetch cycles simulated (= total conditional branches executed).
    pub cycles: u64,
}

impl SharedRunResult {
    /// Total mispredictions over all cores.
    pub fn total_mispredictions(&self) -> u64 {
        self.cores.iter().map(|c| c.mispredictions).sum()
    }

    /// Arithmetic mean of the per-core MPKI values (matching the per-trace
    /// mean the private baseline reports).
    pub fn mean_mpki(&self) -> f64 {
        if self.cores.is_empty() {
            return 0.0;
        }
        self.cores.iter().map(CoreCounters::mpki).sum::<f64>() / self.cores.len() as f64
    }
}

/// Round-robin interleaving of N lanes into one shared engine.
struct SharedDriver<'e, P, S>
where
    P: PredictorCore,
    S: ConfidenceScheme<P::Lookup>,
{
    engine: &'e mut SimEngine<P, S>,
    cores: Vec<CoreCounters>,
    last: usize,
}

impl<P, S> InterleaveDriver for SharedDriver<'_, P, S>
where
    P: PredictorCore,
    S: ConfidenceScheme<P::Lookup>,
{
    fn arbitrate(&mut self, _cycle: u64, alive: &[bool]) -> usize {
        self.last = next_round_robin(self.last, alive);
        self.last
    }

    fn execute(&mut self, lane: usize, record: &BranchRecord, gap_instructions: u64, _cycle: u64) {
        let core = &mut self.cores[lane];
        core.instructions += gap_instructions + record.instructions();
        core.branches += 1;
        let step = self
            .engine
            .step_branch(record.pc, record.taken, record.instructions(), &mut ());
        if step.mispredicted {
            core.mispredictions += 1;
        }
    }

    fn finish_lane(&mut self, lane: usize, gap_instructions: u64) {
        // Trailing non-conditional records after the core's last branch.
        self.cores[lane].instructions += gap_instructions;
    }
}

/// Interleaves every source round-robin (one conditional branch per cycle)
/// through the single shared `engine`, running each stream to completion,
/// and returns the per-core counters.
///
/// With one source this is exactly the sequential [`SimEngine::run_source`]
/// execution — same prediction stream, same counters — so private-baseline
/// comparisons are apples to apples.
///
/// # Errors
///
/// Propagates the first [`FormatError`] any source reports.
pub fn run_shared_predictor<P, S, Src>(
    engine: &mut SimEngine<P, S>,
    sources: Vec<Src>,
) -> Result<SharedRunResult, FormatError>
where
    P: PredictorCore,
    S: ConfidenceScheme<P::Lookup>,
    Src: BranchSource,
{
    let mut lanes: Vec<StreamLane<Src>> = sources.into_iter().map(StreamLane::new).collect();
    let mut driver = SharedDriver {
        engine,
        cores: lanes
            .iter()
            .map(|lane| CoreCounters {
                name: lane.name().to_string(),
                branches: 0,
                mispredictions: 0,
                instructions: 0,
            })
            .collect(),
        last: lanes.len().saturating_sub(1),
    };
    let cycles = interleave(&mut lanes, &mut driver, StopCondition::AllExhausted)?;
    Ok(SharedRunResult {
        cores: driver.cores,
        cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::{CounterAutomaton, TageConfig, TagePredictor};
    use tage_confidence::TageConfidenceClassifier;
    use tage_traces::source::SyntheticSource;
    use tage_traces::suites;

    fn engine() -> SimEngine<TagePredictor, TageConfidenceClassifier> {
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        SimEngine::new(
            TagePredictor::new(config.clone()),
            TageConfidenceClassifier::new(&config),
        )
    }

    fn source(name: &str, branches: usize) -> SyntheticSource {
        SyntheticSource::from_spec(suites::cbp1_like().trace(name).unwrap(), branches)
    }

    #[test]
    fn single_core_shared_run_is_exactly_the_private_run() {
        let mut shared_engine = engine();
        let shared =
            run_shared_predictor(&mut shared_engine, vec![source("SERV-2", 5_000)]).unwrap();

        let mut private_engine = engine();
        let summary = private_engine
            .run_source(&mut source("SERV-2", 5_000), &mut ())
            .unwrap();

        assert_eq!(shared.cores.len(), 1);
        assert_eq!(shared.cores[0].branches, summary.measured_branches);
        assert_eq!(
            shared.cores[0].mispredictions,
            summary.measured_mispredictions
        );
        assert_eq!(
            shared.cores[0].instructions, summary.measured_instructions,
            "per-core instruction accounting covers every record exactly once"
        );
        assert_eq!(shared.cycles, summary.measured_branches);
    }

    #[test]
    fn sharing_a_predictor_across_cores_degrades_accuracy() {
        let names = ["FP-1", "MM-5", "SERV-2", "INT-1"];
        let branches = 12_000;
        let mut shared_engine = engine();
        let shared = run_shared_predictor(
            &mut shared_engine,
            names.iter().map(|n| source(n, branches)).collect(),
        )
        .unwrap();
        assert_eq!(shared.cores.len(), 4);

        let mut private_mispredictions = 0u64;
        for name in names {
            let mut private_engine = engine();
            let summary = private_engine
                .run_source(&mut source(name, branches), &mut ())
                .unwrap();
            private_mispredictions += summary.measured_mispredictions;
        }
        assert!(
            shared.total_mispredictions() > private_mispredictions,
            "shared {} vs private {} mispredictions: cross-core aliasing must cost accuracy",
            shared.total_mispredictions(),
            private_mispredictions
        );
        // Every core ran to completion under AllExhausted interleaving.
        for core in &shared.cores {
            assert_eq!(core.branches, branches as u64, "{}", core.name);
            assert!(core.mpki() > 0.0);
        }
        assert_eq!(shared.cycles, 4 * branches as u64);
    }

    #[test]
    fn shared_runs_are_deterministic_and_source_kind_independent() {
        let names = ["FP-1", "MM-5"];
        let run_streamed = || {
            let mut e = engine();
            run_shared_predictor(&mut e, names.iter().map(|n| source(n, 3_000)).collect()).unwrap()
        };
        let streamed = run_streamed();
        assert_eq!(streamed, run_streamed());

        // Materialized slices produce the identical interleaving.
        use tage_traces::source::SliceSource;
        let traces: Vec<_> = names
            .iter()
            .map(|n| suites::cbp1_like().trace(n).unwrap().generate(3_000))
            .collect();
        let mut e = engine();
        let sliced =
            run_shared_predictor(&mut e, traces.iter().map(SliceSource::from_trace).collect())
                .unwrap();
        assert_eq!(sliced, streamed);
    }
}
