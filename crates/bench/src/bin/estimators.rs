//! Related-work comparison: the storage-based baseline confidence estimators
//! (JRS, enhanced JRS, perceptron/GEHL self-confidence) against the
//! storage-free TAGE classification, using the binary metrics of Grunwald et
//! al. (SENS, SPEC, PVP, PVN).

use tage::{CounterAutomaton, TageConfig};
use tage_bench::{branches_from_args, print_header};
use tage_confidence::estimators::{JrsEstimator, SelfConfidenceEstimator};
use tage_confidence::ConfidenceLevel;
use tage_predictors::{GehlPredictor, GsharePredictor, PerceptronPredictor};
use tage_sim::baseline::run_baseline;
use tage_sim::report::{fraction, TextTable};
use tage_sim::runner::{run_trace, RunOptions};
use tage_traces::suites;

fn main() {
    let branches = branches_from_args();
    print_header(
        "Related work — storage-based estimators vs storage-free TAGE",
        branches,
    );
    let suite = suites::cbp1_like();
    let mut table = TextTable::new(vec![
        "predictor + estimator",
        "extra storage (bits)",
        "SENS",
        "SPEC",
        "PVP",
        "PVN",
    ]);

    // Aggregate the binary confusion over the whole suite for each scheme.
    let mut jrs_conf = tage_confidence::BinaryConfusion::default();
    let mut ejrs_conf = tage_confidence::BinaryConfusion::default();
    let mut perc_conf = tage_confidence::BinaryConfusion::default();
    let mut gehl_conf = tage_confidence::BinaryConfusion::default();
    let mut tage_conf = tage_confidence::BinaryConfusion::default();
    let mut jrs_storage = 0;
    let mut ejrs_storage = 0;

    for spec in suite.traces() {
        let trace = spec.generate(branches);

        let mut gshare = GsharePredictor::new(14, 14);
        let mut jrs = JrsEstimator::classic(12);
        let r = run_baseline(&mut gshare, &mut jrs, &trace);
        jrs_storage = r.estimator_storage_bits;
        merge(&mut jrs_conf, &r.confusion);

        let mut gshare = GsharePredictor::new(14, 14);
        let mut ejrs = JrsEstimator::enhanced(12);
        let r = run_baseline(&mut gshare, &mut ejrs, &trace);
        ejrs_storage = r.estimator_storage_bits;
        merge(&mut ejrs_conf, &r.confusion);

        let mut perceptron = PerceptronPredictor::new(512, 32);
        let mut self_conf = SelfConfidenceEstimator::new(60);
        let r = run_baseline(&mut perceptron, &mut self_conf, &trace);
        merge(&mut perc_conf, &r.confusion);

        let mut gehl = GehlPredictor::new(6, 11, 3, 120);
        let mut self_conf = SelfConfidenceEstimator::new(2 * 6 * 2);
        let r = run_baseline(&mut gehl, &mut self_conf, &trace);
        merge(&mut gehl_conf, &r.confusion);

        let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
        let r = run_trace(&config, &trace, &RunOptions::default());
        let confusion = r.report.binary_confusion(&[ConfidenceLevel::High]);
        merge(&mut tage_conf, &confusion);
    }

    let mut push = |name: &str, storage: u64, c: &tage_confidence::BinaryConfusion| {
        table.row(vec![
            name.to_string(),
            storage.to_string(),
            fraction(c.sensitivity()),
            fraction(c.specificity()),
            fraction(c.pvp()),
            fraction(c.pvn()),
        ]);
    };
    push("gshare + JRS (4-bit, t=15)", jrs_storage, &jrs_conf);
    push("gshare + enhanced JRS", ejrs_storage, &ejrs_conf);
    push("perceptron + self-confidence", 0, &perc_conf);
    push("GEHL + self-confidence", 0, &gehl_conf);
    push("TAGE-64K storage-free (high vs rest)", 0, &tage_conf);
    print!("{}", table.render());
    println!();
    println!("The TAGE classification requires no extra storage while matching or beating the table-based estimators.");
}

fn merge(into: &mut tage_confidence::BinaryConfusion, from: &tage_confidence::BinaryConfusion) {
    into.high_correct += from.high_correct;
    into.high_incorrect += from.high_incorrect;
    into.low_correct += from.low_correct;
    into.low_incorrect += from.low_incorrect;
}
