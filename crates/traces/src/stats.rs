//! Summary statistics over a branch trace.

use std::collections::HashMap;
use std::fmt;

use crate::record::{BranchKind, BranchRecord};

/// Summary statistics of a branch trace.
///
/// These are useful both to sanity-check synthetic workloads (static branch
/// footprint, taken rate, branch density) and to report workload
/// characteristics next to experiment results.
///
/// # Example
///
/// ```
/// use tage_traces::{BranchRecord, Trace};
///
/// let trace = Trace::from_records(
///     "t",
///     (0..100).map(|i| BranchRecord::conditional(0x1000 + (i % 4) * 8, i % 3 == 0).with_gap(5)),
/// );
/// let stats = trace.stats();
/// assert_eq!(stats.branches, 100);
/// assert_eq!(stats.static_branches, 4);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceStats {
    /// Total number of dynamic branch records.
    pub branches: u64,
    /// Number of dynamic *conditional* branch records.
    pub conditional_branches: u64,
    /// Number of dynamic conditional branches that were taken.
    pub taken_conditional: u64,
    /// Number of distinct static branch addresses (all kinds).
    pub static_branches: u64,
    /// Number of distinct static conditional branch addresses.
    pub static_conditional: u64,
    /// Total instructions accounted for by the trace.
    pub instructions: u64,
}

impl TraceStats {
    /// Computes statistics from a slice of records.
    pub fn from_records(records: &[BranchRecord]) -> Self {
        let mut stats = TraceStats::default();
        let mut static_pcs: HashMap<u64, BranchKind> = HashMap::new();
        for r in records {
            stats.branches += 1;
            stats.instructions += r.instructions();
            if r.kind.is_conditional() {
                stats.conditional_branches += 1;
                if r.taken {
                    stats.taken_conditional += 1;
                }
            }
            static_pcs.entry(r.pc).or_insert(r.kind);
        }
        stats.static_branches = static_pcs.len() as u64;
        stats.static_conditional =
            static_pcs.values().filter(|k| k.is_conditional()).count() as u64;
        stats
    }

    /// Fraction of dynamic conditional branches that were taken, in `[0, 1]`.
    /// Returns zero for a trace without conditional branches.
    pub fn taken_rate(&self) -> f64 {
        if self.conditional_branches == 0 {
            0.0
        } else {
            self.taken_conditional as f64 / self.conditional_branches as f64
        }
    }

    /// Dynamic conditional branches per kilo-instruction.
    pub fn branch_density_per_kiloinstruction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.conditional_branches as f64 * 1000.0 / self.instructions as f64
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} branches ({} conditional, {:.1}% taken), {} static, {} instructions",
            self.branches,
            self.conditional_branches,
            self.taken_rate() * 100.0,
            self.static_branches,
            self.instructions
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_records_yield_zeroed_stats() {
        let stats = TraceStats::from_records(&[]);
        assert_eq!(stats, TraceStats::default());
        assert_eq!(stats.taken_rate(), 0.0);
        assert_eq!(stats.branch_density_per_kiloinstruction(), 0.0);
    }

    #[test]
    fn counts_conditional_and_static_branches() {
        let records = vec![
            BranchRecord::conditional(0x10, true).with_gap(9),
            BranchRecord::conditional(0x10, false).with_gap(9),
            BranchRecord::conditional(0x20, true).with_gap(9),
            BranchRecord::conditional(0x30, true)
                .with_kind(BranchKind::Call)
                .with_gap(9),
        ];
        let stats = TraceStats::from_records(&records);
        assert_eq!(stats.branches, 4);
        assert_eq!(stats.conditional_branches, 3);
        assert_eq!(stats.taken_conditional, 2);
        assert_eq!(stats.static_branches, 3);
        assert_eq!(stats.static_conditional, 2);
        assert_eq!(stats.instructions, 4 * 10);
    }

    #[test]
    fn taken_rate_and_density() {
        let records = vec![
            BranchRecord::conditional(0x10, true).with_gap(4),
            BranchRecord::conditional(0x20, false).with_gap(4),
        ];
        let stats = TraceStats::from_records(&records);
        assert!((stats.taken_rate() - 0.5).abs() < 1e-12);
        // 2 conditional branches over 10 instructions = 200 per KI.
        assert!((stats.branch_density_per_kiloinstruction() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_counts() {
        let stats = TraceStats::from_records(&[BranchRecord::conditional(0x10, true)]);
        let s = format!("{stats}");
        assert!(s.contains("1 branches"));
    }
}
