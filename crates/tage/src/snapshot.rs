//! Shared encode/decode helpers for the two TAGE implementations'
//! snapshots (see `tage_traces::snapshot` for the framed format).

use tage_predictors::history::HistoryRegister;
use tage_traces::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

use crate::automaton::CounterAutomaton;
use crate::folded::FoldedHistory;
use crate::predictor::TageStats;

const AUTOMATON_STANDARD: u8 = 0;
const AUTOMATON_PROBABILISTIC: u8 = 1;

/// Encodes the counter automaton as a tag byte plus exponent. The automaton
/// lives in the snapshot *payload* (not the spec digest) because adaptive
/// runs mutate it at run time via `TagePredictor::set_automaton`.
pub(crate) fn write_automaton(w: &mut SnapshotWriter, automaton: CounterAutomaton) {
    match automaton {
        CounterAutomaton::Standard => {
            w.write_u8(AUTOMATON_STANDARD);
            w.write_u32(0);
        }
        CounterAutomaton::ProbabilisticSaturation {
            log2_inverse_probability,
        } => {
            w.write_u8(AUTOMATON_PROBABILISTIC);
            w.write_u32(log2_inverse_probability);
        }
    }
}

/// Decodes an automaton written by [`write_automaton`].
pub(crate) fn read_automaton(
    r: &mut SnapshotReader<'_>,
) -> Result<CounterAutomaton, SnapshotError> {
    let offset = r.offset();
    let tag = r.read_u8()?;
    let exponent = r.read_u32()?;
    match tag {
        AUTOMATON_STANDARD => Ok(CounterAutomaton::Standard),
        AUTOMATON_PROBABILISTIC => {
            let automaton = CounterAutomaton::ProbabilisticSaturation {
                log2_inverse_probability: exponent,
            };
            automaton
                .validate()
                .map_err(|reason| SnapshotError::MalformedSection { offset, reason })?;
            Ok(automaton)
        }
        other => Err(SnapshotError::MalformedSection {
            offset,
            reason: format!("unknown automaton tag {other}"),
        }),
    }
}

/// Writes a history register's backing words, count-prefixed.
pub(crate) fn write_history(w: &mut SnapshotWriter, history: &HistoryRegister) {
    let words = history.words();
    w.write_u32(words.len() as u32);
    for &word in words {
        w.write_u64(word);
    }
}

/// Reads words written by [`write_history`], verifying the count.
pub(crate) fn read_history(
    r: &mut SnapshotReader<'_>,
    expected_words: usize,
) -> Result<Vec<u64>, SnapshotError> {
    let offset = r.offset();
    let count = r.read_u32()? as usize;
    if count != expected_words {
        return Err(SnapshotError::MalformedSection {
            offset,
            reason: format!("history holds {count} words, predictor expects {expected_words}"),
        });
    }
    let mut words = Vec::with_capacity(count);
    for _ in 0..count {
        words.push(r.read_u64()?);
    }
    Ok(words)
}

/// Writes the raw values of a folded-history bank.
pub(crate) fn write_folds(w: &mut SnapshotWriter, folds: &[FoldedHistory]) {
    for fold in folds {
        w.write_u64(fold.value());
    }
}

/// Reads one raw value per fold of `folds`, range-checking each against the
/// fold's compressed width (the shape itself is pinned by the spec digest).
pub(crate) fn read_folds(
    r: &mut SnapshotReader<'_>,
    folds: &[FoldedHistory],
) -> Result<Vec<u64>, SnapshotError> {
    let mut values = Vec::with_capacity(folds.len());
    for fold in folds {
        let offset = r.offset();
        let value = r.read_u64()?;
        if fold.compressed_length() < 64 && value >> fold.compressed_length() != 0 {
            return Err(SnapshotError::MalformedSection {
                offset,
                reason: format!(
                    "folded-history value {value:#x} exceeds {} bits",
                    fold.compressed_length()
                ),
            });
        }
        values.push(value);
    }
    Ok(values)
}

/// Writes the predictor's event counters.
pub(crate) fn write_stats(w: &mut SnapshotWriter, stats: &TageStats) {
    w.write_u64(stats.updates);
    w.write_u64(stats.mispredictions);
    w.write_u64(stats.allocations);
    w.write_u64(stats.allocation_failures);
    w.write_u64(stats.useful_resets);
}

/// Reads counters written by [`write_stats`].
pub(crate) fn read_stats(r: &mut SnapshotReader<'_>) -> Result<TageStats, SnapshotError> {
    Ok(TageStats {
        updates: r.read_u64()?,
        mispredictions: r.read_u64()?,
        allocations: r.read_u64()?,
        allocation_failures: r.read_u64()?,
        useful_resets: r.read_u64()?,
    })
}
