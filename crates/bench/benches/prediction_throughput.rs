//! Criterion micro-benchmark: TAGE prediction + update throughput for the
//! three predictor sizes, plus the baseline predictors for context.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tage::{TageConfig, TagePredictor};
use tage_predictors::{
    BimodalPredictor, BranchPredictor, GehlPredictor, GsharePredictor, PerceptronPredictor,
};
use tage_traces::{suites, Trace};

fn workload() -> Trace {
    suites::cbp1_like().trace("INT-1").unwrap().generate(20_000)
}

fn bench_tage(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("tage_predict_update");
    group.throughput(Throughput::Elements(
        trace.iter().filter(|r| r.kind.is_conditional()).count() as u64,
    ));
    for config in [TageConfig::small(), TageConfig::medium(), TageConfig::large()] {
        group.bench_with_input(
            BenchmarkId::from_parameter(&config.name),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut predictor = TagePredictor::new(config.clone());
                    let mut misses = 0u64;
                    for record in trace.iter().filter(|r| r.kind.is_conditional()) {
                        let pred = predictor.predict(record.pc);
                        if pred.taken != record.taken {
                            misses += 1;
                        }
                        predictor.update(record.pc, record.taken, &pred);
                    }
                    misses
                });
            },
        );
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let trace = workload();
    let branches = trace.iter().filter(|r| r.kind.is_conditional()).count() as u64;
    let mut group = c.benchmark_group("baseline_predict_update");
    group.throughput(Throughput::Elements(branches));

    fn run_loop(p: &mut dyn BranchPredictor, trace: &Trace) -> u64 {
        let mut misses = 0u64;
        for record in trace.iter().filter(|r| r.kind.is_conditional()) {
            let pred = p.predict(record.pc);
            if pred.taken != record.taken {
                misses += 1;
            }
            p.update(record.pc, record.taken, &pred);
        }
        misses
    }

    group.bench_function("bimodal-8k", |b| {
        b.iter(|| run_loop(&mut BimodalPredictor::new(13), &trace));
    });
    group.bench_function("gshare-16k", |b| {
        b.iter(|| run_loop(&mut GsharePredictor::new(14, 14), &trace));
    });
    group.bench_function("perceptron-512x32", |b| {
        b.iter(|| run_loop(&mut PerceptronPredictor::new(512, 32), &trace));
    });
    group.bench_function("gehl-6x2k", |b| {
        b.iter(|| run_loop(&mut GehlPredictor::new(6, 11, 3, 120), &trace));
    });
    group.finish();
}

criterion_group!(benches, bench_tage, bench_baselines);
criterion_main!(benches);
