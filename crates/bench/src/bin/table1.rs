//! Table 1: the three simulated TAGE configurations and their mean
//! misprediction rates (misp/KI) on both workload suites.

use tage_bench::{branches_from_args, print_header};
use tage_sim::experiment::table1;
use tage_sim::report::{mpki, TextTable};
use tage_traces::suites;

fn main() {
    let branches = branches_from_args();
    print_header("Table 1 — simulated configurations", branches);
    let rows = table1(&suites::cbp1_like(), &suites::cbp2_like(), branches);
    let mut table = TextTable::new(vec!["", "Small", "Medium", "Large"]);
    let cell = |f: &dyn Fn(&tage_sim::experiment::Table1Row) -> String| -> Vec<String> {
        rows.iter().map(f).collect()
    };
    let push = |table: &mut TextTable, label: &str, values: Vec<String>| {
        let mut row = vec![label.to_string()];
        row.extend(values);
        table.row(row);
    };
    push(
        &mut table,
        "Storage budget",
        cell(&|r| format!("{} Kbits", r.storage_bits / 1024)),
    );
    push(
        &mut table,
        "Number of tables",
        cell(&|r| format!("1 + {}", r.num_tables - 1)),
    );
    push(
        &mut table,
        "Min Hist length",
        cell(&|r| r.min_history.to_string()),
    );
    push(
        &mut table,
        "Max Hist Length",
        cell(&|r| r.max_history.to_string()),
    );
    push(
        &mut table,
        "CBP-1-like misp/KI",
        cell(&|r| mpki(r.cbp1_mpki)),
    );
    push(
        &mut table,
        "CBP-2-like misp/KI",
        cell(&|r| mpki(r.cbp2_mpki)),
    );
    print!("{}", table.render());
    println!();
    println!("Paper (real CBP traces): 4.21 / 2.54 / 2.18 misp/KI on CBP-1 and 4.61 / 3.87 / 3.47 on CBP-2.");
}
