//! Figure 3: distribution of predictions and of mispredictions over the 7
//! classes, CBP-2-like traces, standard automaton, three predictor sizes.

use tage_bench::{branches_from_args, print_header};
use tage_confidence::PredictionClass;
use tage_sim::experiment::{class_distribution, standard_configs};
use tage_sim::report::TextTable;
use tage_traces::suites;

fn main() {
    let branches = branches_from_args();
    print_header(
        "Figure 3 — class distributions, CBP-2-like, standard automaton",
        branches,
    );
    let suite = suites::cbp2_like();
    for config in standard_configs() {
        println!("--- {} ---", config.name());
        let rows = class_distribution(&config, &suite, branches);
        let mut headers = vec!["trace"];
        headers.extend(PredictionClass::ALL.iter().map(|c| c.label()));
        headers.push("MPKI");
        let mut pcov_table = TextTable::new(headers.clone());
        let mut mpki_table = TextTable::new(headers);
        for row in &rows {
            let mut cells = vec![row.trace_name.clone()];
            cells.extend(row.pcov.iter().map(|p| format!("{:.3}", p)));
            cells.push(format!("{:.2}", row.total_mpki));
            pcov_table.row(cells);
            let mut cells = vec![row.trace_name.clone()];
            cells.extend(row.mpki_contribution.iter().map(|p| format!("{:.3}", p)));
            cells.push(format!("{:.2}", row.total_mpki));
            mpki_table.row(cells);
        }
        println!("prediction coverage (left plot):");
        print!("{}", pcov_table.render());
        println!("misprediction contribution in MPKI (right plot):");
        print!("{}", mpki_table.render());
        println!();
    }
}
