//! Branch trace model, trace IO and synthetic workload suites.
//!
//! The paper evaluates the TAGE confidence estimator on the CBP-1 and CBP-2
//! championship trace sets. Those traces are not redistributable, so this
//! crate provides:
//!
//! 1. a compact in-memory trace model ([`BranchRecord`], [`Trace`]),
//! 2. a binary and a text on-disk format with a reader and a writer
//!    ([`reader::TraceReader`], [`writer::TraceWriter`]) so that externally
//!    converted CBP-style traces can be plugged in,
//! 3. streaming [`source::BranchSource`]s — chunked, out-of-core record
//!    streams (zero-copy slices, bounded-memory binary files, on-the-fly
//!    synthetic generation) that the simulation engine consumes without
//!    materializing whole traces, and
//! 4. deterministic synthetic workload generators ([`synthetic`]) together
//!    with two 20-trace suites ([`suites::cbp1_like`], [`suites::cbp2_like`])
//!    that act as stand-ins for the championship sets. The generators model
//!    the statistical structure that the paper's observations depend on:
//!    loop branches, biased data-dependent branches, history-correlated
//!    branches that need long histories, phase changes, and large static
//!    branch footprints that stress predictor capacity.
//!
//! # Example
//!
//! ```
//! use tage_traces::suites;
//!
//! // Build a small version of the CBP-1-like suite (100k branches per trace).
//! let suite = suites::cbp1_like();
//! let trace = suite.traces()[0].generate(10_000);
//! let conditional = trace.iter().filter(|r| r.kind.is_conditional()).count();
//! assert_eq!(conditional, 10_000);
//! assert!(trace.instruction_count() >= 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod decoder;
pub mod format;
pub mod inflate;
pub mod jsonish;
pub mod reader;
pub mod record;
pub mod rng;
pub mod snapshot;
pub mod source;
pub mod stats;
pub mod suites;
pub mod synthetic;
pub mod trace;
pub mod writer;

pub use decoder::{DecodedSource, DecodedTrace, TraceDecoder};
pub use record::{BranchKind, BranchRecord};
pub use rng::SplitMix64;
pub use snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};
pub use source::{
    AnySource, BinaryFileSource, BranchSource, SamplingSpec, SliceSource, SourceSpec, SourceSuite,
    SyntheticSource, Take,
};
pub use stats::TraceStats;
pub use suites::{Suite, TraceSpec};
pub use trace::Trace;
