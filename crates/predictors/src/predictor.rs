//! The common interfaces every conditional branch predictor implements.
//!
//! Two layers of abstraction live here:
//!
//! * [`BranchPredictor`] — the object-safe, margin-based interface shared by
//!   every predictor. Its lookup result is the flat [`Prediction`] (direction
//!   plus self-confidence margin), which is all the storage-based confidence
//!   estimators need.
//! * [`PredictorCore`] — the generic execution interface consumed by the
//!   simulation engine (`tage_sim::engine`). Its associated `Lookup` type
//!   lets a predictor expose its *full* observable output — the TAGE
//!   predictor exposes its provider/counter observables, which is what the
//!   storage-free confidence classification is built on — while baseline
//!   predictors simply use [`Prediction`].
//!
//! Any [`BranchPredictor`] (including a trait object) can be driven through
//! the engine by wrapping it in [`MarginPredictor`].

use core::fmt;

use tage_traces::snapshot::SnapshotError;

/// The outcome of a prediction lookup, carrying the self-confidence margin.
///
/// For counter-based predictors the margin is the distance of the counter
/// from its weak state; for neural predictors (perceptron, GEHL) it is the
/// absolute value of the prediction sum. The margin is what *self-confidence*
/// estimation (Jiménez & Lin; Seznec's O-GEHL usage) thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted direction (`true` = taken).
    pub taken: bool,
    /// The predictor-specific confidence margin (larger = more confident).
    pub margin: i64,
}

impl Prediction {
    /// Creates a prediction with the given direction and margin.
    pub fn new(taken: bool, margin: i64) -> Self {
        Prediction { taken, margin }
    }

    /// A prediction with no margin information.
    pub fn direction(taken: bool) -> Self {
        Prediction { taken, margin: 0 }
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (margin {})",
            if self.taken { "taken" } else { "not-taken" },
            self.margin
        )
    }
}

/// A predictor lookup result that exposes, at minimum, its predicted
/// direction.
///
/// Implemented by the flat [`Prediction`] and by richer observable outputs
/// such as `tage::TagePrediction`; the simulation engine only needs the
/// direction to score a lookup, everything else is for the confidence scheme
/// attached to the run.
pub trait PredictionOutcome {
    /// The predicted direction (`true` = taken).
    fn predicted_taken(&self) -> bool;
}

impl PredictionOutcome for Prediction {
    fn predicted_taken(&self) -> bool {
        self.taken
    }
}

/// A trace-driven conditional branch predictor.
///
/// The simulation protocol is: call [`BranchPredictor::predict`] for a branch
/// PC, resolve the branch, then call [`BranchPredictor::update`] with the
/// actual outcome and the prediction that was made. Predictors keep their
/// speculative state (global history, folded histories) internally and update
/// it with the *resolved* outcome, which is exact for in-order trace-driven
/// simulation.
pub trait BranchPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> Prediction;

    /// Updates the predictor with the resolved outcome of the branch at
    /// `pc`. `prediction` must be the value returned by the matching
    /// [`BranchPredictor::predict`] call.
    fn update(&mut self, pc: u64, taken: bool, prediction: &Prediction);

    /// Total storage the predictor uses, in bits.
    fn storage_bits(&self) -> u64;

    /// A short human-readable name for reports.
    fn name(&self) -> String {
        "predictor".to_string()
    }

    /// Clears all dynamic state (tables, histories, statistics) while
    /// keeping the configuration, so the predictor starts a new trace cold.
    fn reset(&mut self);

    /// Creates a cold predictor with the same configuration.
    ///
    /// This is the duplication story for heterogeneous fleets: callers
    /// holding a `dyn BranchPredictor` (a configured prototype) can stamp
    /// out independent cold instances — e.g. one per trace or per thread —
    /// without knowing the concrete type. Each instance starts cold and
    /// shares no state with its siblings; the `Send` bound keeps the copies
    /// movable across the scoped threads the suite runner uses.
    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send>;

    /// Serializes the predictor's **full** dynamic state — tables,
    /// histories, RNG, statistics — into the versioned framed format of
    /// [`tage_traces::snapshot`]. Restoring the bytes into a predictor of
    /// the same specification (see [`BranchPredictor::spec_digest`])
    /// continues the run bit-identically to never having stopped.
    fn snapshot(&self) -> Vec<u8>;

    /// Restores state previously captured by [`BranchPredictor::snapshot`].
    ///
    /// The restore is all-or-nothing: on any error the predictor's state is
    /// exactly what it was before the call.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] carrying the byte offset of the problem
    /// when the bytes are truncated, corrupt, from a different format
    /// version, or from a different predictor specification.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;

    /// A digest of the predictor's *specification* — implementation name
    /// plus every structural configuration parameter, but no dynamic state.
    /// Two predictors accept each other's snapshots exactly when their
    /// digests match.
    fn spec_digest(&self) -> u64;
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for &mut P {
    fn predict(&mut self, pc: u64) -> Prediction {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: u64, taken: bool, prediction: &Prediction) {
        (**self).update(pc, taken, prediction)
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send> {
        (**self).clone_fresh()
    }

    fn snapshot(&self) -> Vec<u8> {
        (**self).snapshot()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        (**self).restore(bytes)
    }

    fn spec_digest(&self) -> u64 {
        (**self).spec_digest()
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn predict(&mut self, pc: u64) -> Prediction {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: u64, taken: bool, prediction: &Prediction) {
        (**self).update(pc, taken, prediction)
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send> {
        (**self).clone_fresh()
    }

    fn snapshot(&self) -> Vec<u8> {
        (**self).snapshot()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        (**self).restore(bytes)
    }

    fn spec_digest(&self) -> u64 {
        (**self).spec_digest()
    }
}

/// The generic execution interface the simulation engine drives.
///
/// Where [`BranchPredictor`] flattens every lookup into the margin-carrying
/// [`Prediction`], `PredictorCore` preserves the predictor's full observable
/// output through the associated [`PredictorCore::Lookup`] type, so that
/// observation-based confidence schemes (the paper's storage-free TAGE
/// classification) see everything the hardware would.
///
/// The protocol matches [`BranchPredictor`]: [`PredictorCore::lookup`] before
/// resolution, [`PredictorCore::train`] with the resolved outcome and the
/// matching lookup afterwards.
pub trait PredictorCore {
    /// The full observable output of one lookup.
    type Lookup: PredictionOutcome;

    /// Looks the predictor up for the conditional branch at `pc`.
    fn lookup(&mut self, pc: u64) -> Self::Lookup;

    /// Trains the predictor with the resolved outcome of the branch at `pc`.
    /// `lookup` must be the value returned by the matching
    /// [`PredictorCore::lookup`] call.
    fn train(&mut self, pc: u64, taken: bool, lookup: &Self::Lookup);

    /// Clears all dynamic state while keeping the configuration.
    fn reset(&mut self);

    /// Total storage the predictor uses, in bits.
    fn storage_bits(&self) -> u64;

    /// A short human-readable name for reports.
    fn name(&self) -> String;

    /// Serializes the predictor's full dynamic state (see
    /// [`BranchPredictor::snapshot`]).
    fn snapshot(&self) -> Vec<u8>;

    /// Restores state captured by [`PredictorCore::snapshot`],
    /// all-or-nothing (see [`BranchPredictor::restore`]).
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] carrying the byte offset of the problem
    /// when the bytes are truncated, corrupt, from a different format
    /// version, or from a different predictor specification.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;

    /// A digest of the predictor's specification (see
    /// [`BranchPredictor::spec_digest`]).
    fn spec_digest(&self) -> u64;
}

impl<P: PredictorCore + ?Sized> PredictorCore for &mut P {
    type Lookup = P::Lookup;

    fn lookup(&mut self, pc: u64) -> Self::Lookup {
        (**self).lookup(pc)
    }

    fn train(&mut self, pc: u64, taken: bool, lookup: &Self::Lookup) {
        (**self).train(pc, taken, lookup)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn snapshot(&self) -> Vec<u8> {
        (**self).snapshot()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        (**self).restore(bytes)
    }

    fn spec_digest(&self) -> u64 {
        (**self).spec_digest()
    }
}

/// Adapts any [`BranchPredictor`] — concrete, `&mut` reference or trait
/// object — to the engine-facing [`PredictorCore`] interface, using the flat
/// margin-carrying [`Prediction`] as the lookup type.
///
/// # Example
///
/// ```
/// use tage_predictors::{BranchPredictor, GsharePredictor, MarginPredictor, PredictorCore};
///
/// let mut gshare = GsharePredictor::new(10, 10);
/// let mut core = MarginPredictor(&mut gshare as &mut dyn BranchPredictor);
/// let lookup = core.lookup(0x4000);
/// core.train(0x4000, true, &lookup);
/// ```
#[derive(Debug)]
pub struct MarginPredictor<P>(pub P);

impl<P: BranchPredictor> PredictorCore for MarginPredictor<P> {
    type Lookup = Prediction;

    fn lookup(&mut self, pc: u64) -> Prediction {
        self.0.predict(pc)
    }

    fn train(&mut self, pc: u64, taken: bool, lookup: &Prediction) {
        self.0.update(pc, taken, lookup)
    }

    fn reset(&mut self) {
        self.0.reset()
    }

    fn storage_bits(&self) -> u64 {
        self.0.storage_bits()
    }

    fn name(&self) -> String {
        self.0.name()
    }

    fn snapshot(&self) -> Vec<u8> {
        self.0.snapshot()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.0.restore(bytes)
    }

    fn spec_digest(&self) -> u64 {
        self.0.spec_digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BimodalPredictor;

    #[test]
    fn prediction_constructors() {
        let p = Prediction::new(true, 12);
        assert!(p.taken);
        assert_eq!(p.margin, 12);
        let d = Prediction::direction(false);
        assert!(!d.taken);
        assert_eq!(d.margin, 0);
        assert!(p.predicted_taken());
        assert!(!d.predicted_taken());
    }

    #[test]
    fn prediction_display() {
        assert!(format!("{}", Prediction::new(true, 3)).contains("taken"));
        assert!(format!("{}", Prediction::new(false, 3)).contains("not-taken"));
    }

    #[test]
    fn trait_is_object_safe() {
        // Compile-time check: the trait must be usable as a trait object so
        // that the simulation harness can store heterogeneous predictors.
        fn _takes_dyn(_p: &dyn BranchPredictor) {}
    }

    #[test]
    fn margin_predictor_adapts_a_trait_object() {
        let mut bimodal = BimodalPredictor::new(8);
        let mut core = MarginPredictor(&mut bimodal as &mut dyn BranchPredictor);
        for _ in 0..4 {
            let lookup = core.lookup(0x2000);
            core.train(0x2000, true, &lookup);
        }
        assert!(core.lookup(0x2000).predicted_taken());
        assert!(core.name().contains("bimodal"));
        assert!(core.storage_bits() > 0);
        core.reset();
        assert_eq!(
            core.lookup(0x2000).margin,
            1,
            "reset returns to the weak state"
        );
    }

    #[test]
    fn clone_fresh_starts_cold_and_keeps_the_configuration() {
        let mut original = BimodalPredictor::new(8);
        for _ in 0..4 {
            let pred = original.predict(0x2000);
            original.update(0x2000, true, &pred);
        }
        let mut fresh = original.clone_fresh();
        assert_eq!(fresh.storage_bits(), original.storage_bits());
        assert_eq!(fresh.name(), original.name());
        assert_eq!(
            fresh.predict(0x2000).margin,
            1,
            "a fresh clone must not inherit trained state"
        );
        assert!(
            original.predict(0x2000).taken,
            "the original keeps its state"
        );
    }
}
