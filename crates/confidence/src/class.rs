//! The 7 prediction classes and the 3 confidence levels of the paper.

use core::fmt;

/// The seven prediction classes distinguishable by observing the TAGE
/// predictor's outputs (Section 5 of the paper).
///
/// Bimodal-provided predictions are split by counter strength and by the
/// recency of a bimodal-provided misprediction; tagged-provided predictions
/// are split by the centered magnitude `|2*ctr + 1|` of the 3-bit provider
/// counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PredictionClass {
    /// Bimodal provider, strong counter, no recent bimodal misprediction.
    /// Misprediction rate below ~10 MKP in the paper.
    HighConfBim,
    /// Bimodal provider shortly after a bimodal-provided misprediction
    /// (warming / capacity bursts). Misprediction rate in the 60–150 MKP
    /// range.
    MediumConfBim,
    /// Bimodal provider with a weak counter. Misprediction rate of 30 % and
    /// above.
    LowConfBim,
    /// Tagged provider with a weak counter (`|2*ctr+1| == 1`) — typically a
    /// newly allocated entry. Misprediction rate above 30 %.
    Wtag,
    /// Tagged provider with a nearly weak counter (`|2*ctr+1| == 3`).
    NWtag,
    /// Tagged provider with a nearly saturated counter (`|2*ctr+1| == 5`).
    NStag,
    /// Tagged provider with a saturated counter (`|2*ctr+1| == 7` for 3-bit
    /// counters). With the standard automaton its misprediction rate is
    /// close to the application average; with the paper's modified automaton
    /// it becomes a high-confidence class (1–5 MKP).
    Stag,
}

impl PredictionClass {
    /// All seven classes, in the paper's presentation order.
    pub const ALL: [PredictionClass; 7] = [
        PredictionClass::HighConfBim,
        PredictionClass::MediumConfBim,
        PredictionClass::LowConfBim,
        PredictionClass::Wtag,
        PredictionClass::NWtag,
        PredictionClass::NStag,
        PredictionClass::Stag,
    ];

    /// Returns `true` if the class is one of the three bimodal classes.
    pub fn is_bimodal(self) -> bool {
        matches!(
            self,
            PredictionClass::HighConfBim
                | PredictionClass::MediumConfBim
                | PredictionClass::LowConfBim
        )
    }

    /// The confidence level the class belongs to under the paper's
    /// three-level grouping (Section 6.1):
    ///
    /// * low — `low-conf-bim`, `Wtag`, `NWtag`;
    /// * medium — `medium-conf-bim`, `NStag`;
    /// * high — `high-conf-bim`, `Stag`.
    pub fn level(self) -> ConfidenceLevel {
        match self {
            PredictionClass::HighConfBim | PredictionClass::Stag => ConfidenceLevel::High,
            PredictionClass::MediumConfBim | PredictionClass::NStag => ConfidenceLevel::Medium,
            PredictionClass::LowConfBim | PredictionClass::Wtag | PredictionClass::NWtag => {
                ConfidenceLevel::Low
            }
        }
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            PredictionClass::HighConfBim => "high-conf-bim",
            PredictionClass::MediumConfBim => "medium-conf-bim",
            PredictionClass::LowConfBim => "low-conf-bim",
            PredictionClass::Wtag => "Wtag",
            PredictionClass::NWtag => "NWtag",
            PredictionClass::NStag => "NStag",
            PredictionClass::Stag => "Stag",
        }
    }
}

impl fmt::Display for PredictionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The three confidence levels of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConfidenceLevel {
    /// Misprediction rate above roughly 30 %.
    Low,
    /// Misprediction rate in the 5–15 % range.
    Medium,
    /// Misprediction rate below roughly 1 %.
    High,
}

impl ConfidenceLevel {
    /// All three levels, from low to high.
    pub const ALL: [ConfidenceLevel; 3] = [
        ConfidenceLevel::Low,
        ConfidenceLevel::Medium,
        ConfidenceLevel::High,
    ];

    /// The prediction classes grouped into this level.
    pub fn classes(self) -> &'static [PredictionClass] {
        match self {
            ConfidenceLevel::Low => &[
                PredictionClass::LowConfBim,
                PredictionClass::Wtag,
                PredictionClass::NWtag,
            ],
            ConfidenceLevel::Medium => &[PredictionClass::MediumConfBim, PredictionClass::NStag],
            ConfidenceLevel::High => &[PredictionClass::HighConfBim, PredictionClass::Stag],
        }
    }

    /// A short lowercase label (`"low"`, `"medium"`, `"high"`).
    pub fn label(self) -> &'static str {
        match self {
            ConfidenceLevel::Low => "low",
            ConfidenceLevel::Medium => "medium",
            ConfidenceLevel::High => "high",
        }
    }
}

impl fmt::Display for ConfidenceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_belongs_to_exactly_one_level() {
        for class in PredictionClass::ALL {
            let level = class.level();
            assert!(level.classes().contains(&class), "{class} not in {level}");
            let other_levels: Vec<_> = ConfidenceLevel::ALL
                .into_iter()
                .filter(|&l| l != level)
                .collect();
            for other in other_levels {
                assert!(!other.classes().contains(&class));
            }
        }
    }

    #[test]
    fn level_grouping_matches_section_6_1() {
        assert_eq!(PredictionClass::HighConfBim.level(), ConfidenceLevel::High);
        assert_eq!(PredictionClass::Stag.level(), ConfidenceLevel::High);
        assert_eq!(
            PredictionClass::MediumConfBim.level(),
            ConfidenceLevel::Medium
        );
        assert_eq!(PredictionClass::NStag.level(), ConfidenceLevel::Medium);
        assert_eq!(PredictionClass::LowConfBim.level(), ConfidenceLevel::Low);
        assert_eq!(PredictionClass::Wtag.level(), ConfidenceLevel::Low);
        assert_eq!(PredictionClass::NWtag.level(), ConfidenceLevel::Low);
    }

    #[test]
    fn bimodal_classes_are_flagged() {
        assert!(PredictionClass::HighConfBim.is_bimodal());
        assert!(PredictionClass::MediumConfBim.is_bimodal());
        assert!(PredictionClass::LowConfBim.is_bimodal());
        assert!(!PredictionClass::Wtag.is_bimodal());
        assert!(!PredictionClass::Stag.is_bimodal());
    }

    #[test]
    fn labels_match_the_paper_figures() {
        assert_eq!(PredictionClass::HighConfBim.label(), "high-conf-bim");
        assert_eq!(PredictionClass::NStag.to_string(), "NStag");
        assert_eq!(ConfidenceLevel::Medium.to_string(), "medium");
    }

    #[test]
    fn all_constants_are_complete_and_unique() {
        assert_eq!(PredictionClass::ALL.len(), 7);
        assert_eq!(ConfidenceLevel::ALL.len(), 3);
        let mut classes = PredictionClass::ALL.to_vec();
        classes.sort();
        classes.dedup();
        assert_eq!(classes.len(), 7);
        let total: usize = ConfidenceLevel::ALL.iter().map(|l| l.classes().len()).sum();
        assert_eq!(total, 7);
    }
}
