//! The multi-lane engine: K independent branch streams advanced in lockstep
//! through one engine, with the per-branch loop restructured into
//! per-component passes.
//!
//! The scalar engine walks one stream and pays the full dependency chain of
//! every branch — index hash, tag probe, provider select, confidence grade,
//! train — before it starts the next. A [`MultilaneEngine`] instead keeps K
//! streams in flight and advances each by one conditional branch per cycle:
//!
//! 1. **stage** — each lane consumes its stream up to the next conditional
//!    branch (accounting intervening calls/returns/jumps exactly as the
//!    scalar loop does), refilling its batch buffer from the source as
//!    needed;
//! 2. **predict** — [`tage::LaneGroup::predict`] computes all K
//!    folded-history indices and tags component-major: the group holds
//!    every lane's folded histories and global history *transposed*
//!    (lane-major), so each table rank's hash runs as one tight
//!    vectorizable loop over contiguous state;
//! 3. **grade** — per lane, the storage-free classifier assesses and
//!    observes the outcome and the per-lane report records it, in the exact
//!    scalar `step_branch` order;
//! 4. **train** — [`tage::LaneGroup::train`] applies the scalar
//!    counter/allocation update per lane, then advances all K histories
//!    and folds in vectorized per-component passes (AVX2/AVX-512 when the
//!    host has them, dispatched at run time).
//!
//! Each lane owns all of its mutable state — predictor tables, folded
//! histories, RNG, classifier window, report — so interleaving the lanes
//! changes nothing observable: every lane's counters, RNG draws and
//! [`ConfidenceReport`] are bit-for-bit identical to a scalar
//! [`run_source`] of that stream alone. `tests/multilane_parity.rs` pins
//! this for K ∈ {1, 2, 4, 8, 16}, ragged stream lengths and every source
//! kind.
//!
//! The win is instruction-level parallelism, not threads: the K dependency
//! chains are independent, so one core overlaps their latencies where the
//! scalar loop serialises them. Threads still compose on top — the suite
//! runner shards *sources across workers* and lane-batches *within* each
//! worker.
//!
//! When a stream ends mid-run (ragged lengths), its lane finalizes its
//! [`TraceRunResult`] in place, then either re-arms with the next pending
//! source (predictor and classifier reset in place, allocation-free) or
//! retires by compacting the active lane range, so the remaining lanes keep
//! full occupancy.

use std::mem;

use tage::{LaneGroup, TageBlueprint, TageGeometry, TagePredictor};
use tage_confidence::{ConfidenceReport, TageConfidenceClassifier};
use tage_predictors::PredictionOutcome;
use tage_traces::format::FormatError;
use tage_traces::source::{BranchSource, SourceSpec};
use tage_traces::BranchRecord;

use crate::engine::{SimEngine, SOURCE_BATCH_RECORDS};
use crate::runner::{run_source, RunOptions, TraceRunResult};

/// Default lane count for multilane runs: enough independent dependency
/// chains to keep one core's execution ports busy, small enough that the
/// per-lane working sets stay cache-resident together.
pub const DEFAULT_LANES: usize = 16;

/// Which execution path a run should take — the scalar per-stream engine or
/// the lane-batched lockstep engine. The two are bit-identical; the choice
/// is purely a throughput decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// One stream at a time through [`SimEngine::run_source`].
    Scalar,
    /// K streams in lockstep through [`MultilaneEngine`].
    Multilane,
}

/// Per-lane execution state: one stream's classifier, report and measurement
/// counters, plus its private record batch.
#[derive(Debug)]
struct LaneState {
    classifier: TageConfidenceClassifier,
    report: ConfidenceReport,
    conditional_seen: u64,
    measured_branches: u64,
    measured_instructions: u64,
    /// Index of the source (and result slot) this lane is running.
    source_idx: usize,
    batch: Vec<BranchRecord>,
    filled: usize,
    cursor: usize,
}

impl LaneState {
    fn new(geometry: &TageGeometry, options: &RunOptions, source_idx: usize) -> Self {
        LaneState {
            classifier: TageConfidenceClassifier::with_window(geometry, options.bim_miss_window),
            report: ConfidenceReport::new(),
            conditional_seen: 0,
            measured_branches: 0,
            measured_instructions: 0,
            source_idx,
            batch: vec![BranchRecord::default(); SOURCE_BATCH_RECORDS],
            filled: 0,
            cursor: 0,
        }
    }

    /// Re-arms the lane for a new source, allocation-free: the classifier's
    /// reset is equivalent to a fresh construction (the window length is
    /// fixed at construction) and the report was already drained by
    /// finalization.
    fn rearm(&mut self, source_idx: usize) {
        self.classifier.reset();
        self.conditional_seen = 0;
        self.measured_branches = 0;
        self.measured_instructions = 0;
        self.source_idx = source_idx;
        self.filled = 0;
        self.cursor = 0;
    }
}

/// The lockstep engine itself: K lanes of (predictor, classifier, report),
/// the staged per-cycle parallel arrays and the flat index/tag scratch.
///
/// Construct once and reuse across runs — every buffer (predictors, lane
/// batches, staging arrays, result strings in the caller's result slots) is
/// retained, so steady-state reruns perform no heap allocation.
#[derive(Debug)]
pub struct MultilaneEngine {
    geometry: TageGeometry,
    /// The geometry's derived report name, cached so lane finalization does
    /// not rebuild it per stream.
    config_name: String,
    options: RunOptions,
    lanes_max: usize,
    group: LaneGroup,
    states: Vec<LaneState>,
    /// Staged per-cycle inputs, one slot per active lane.
    pcs: Vec<u64>,
    takens: Vec<bool>,
    instrs: Vec<u64>,
    preds: Vec<tage::TagePrediction>,
}

impl MultilaneEngine {
    /// Creates an engine running up to `lanes` streams in lockstep (clamped
    /// to at least 1).
    ///
    /// # Panics
    ///
    /// Panics if `options` requests the adaptive saturation controller: the
    /// controller steers one predictor mid-run and has no batched
    /// equivalent; use the scalar [`run_source`] path for adaptive runs.
    pub fn new(blueprint: impl TageBlueprint, options: &RunOptions, lanes: usize) -> Self {
        assert!(
            options.adaptive_target_mkp.is_none(),
            "the multilane engine has no adaptive-controller path; run adaptive \
             experiments through the scalar engine"
        );
        let geometry = blueprint.tage_geometry();
        MultilaneEngine {
            group: LaneGroup::new(&geometry, lanes.max(1)),
            config_name: geometry.name(),
            geometry,
            options: options.clone(),
            lanes_max: lanes.max(1),
            states: Vec::new(),
            pcs: Vec::new(),
            takens: Vec::new(),
            instrs: Vec::new(),
            preds: Vec::new(),
        }
    }

    /// The configured lane count.
    pub fn lanes(&self) -> usize {
        self.lanes_max
    }

    /// Builds an empty result slot for [`MultilaneEngine::run_into`];
    /// finalization fills it in place, reusing its string capacity on
    /// reruns.
    pub fn placeholder_result() -> TraceRunResult {
        TraceRunResult {
            trace_name: String::new(),
            config_name: String::new(),
            report: ConfidenceReport::new(),
            conditional_branches: 0,
            instructions: 0,
            final_saturation_probability: 0.0,
        }
    }

    /// Ensures lane slot `k` exists (first run only) and arms it for
    /// `source_idx`, resetting reused predictors in place.
    fn arm_lane(&mut self, k: usize, source_idx: usize) {
        self.group.arm(k);
        if k < self.states.len() {
            self.states[k].rearm(source_idx);
        } else {
            self.states
                .push(LaneState::new(&self.geometry, &self.options, source_idx));
        }
    }

    /// Runs every source to exhaustion, `lanes()` at a time, writing each
    /// stream's [`TraceRunResult`] into the matching slot of `results`.
    ///
    /// Results are bit-identical to running each source alone through the
    /// scalar [`run_source`]. Sources are consumed from where they stand —
    /// callers reusing sources must reset them first.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed [`FormatError`] any source reported; the
    /// other streams still execute and their results are written (the
    /// failed slot holds the partial run up to the error). In-memory and
    /// synthetic sources never fail.
    ///
    /// # Panics
    ///
    /// Panics if `sources` and `results` disagree in length.
    pub fn run_into<S>(
        &mut self,
        sources: &mut [S],
        results: &mut [TraceRunResult],
    ) -> Result<(), FormatError>
    where
        S: BranchSource,
    {
        assert_eq!(sources.len(), results.len(), "one result slot per source");
        let lanes_max = self.lanes_max.min(sources.len());
        let mut next_pending = 0;
        let mut active = 0;
        while active < lanes_max {
            self.arm_lane(active, next_pending);
            next_pending += 1;
            active += 1;
        }
        self.pcs.resize(lanes_max, 0);
        self.takens.resize(lanes_max, false);
        self.instrs.resize(lanes_max, 0);

        // Split borrows: every array the cycle touches is a distinct field.
        let MultilaneEngine {
            geometry,
            config_name,
            options,
            group,
            states,
            pcs,
            takens,
            instrs,
            preds,
            ..
        } = self;
        let warmup = options.warmup_branches;
        let mut first_error: Option<(usize, FormatError)> = None;

        while active > 0 {
            // Stage: advance every active lane to its next conditional
            // branch, accounting non-branch records exactly as the scalar
            // `drive_source` does, and re-arming or retiring lanes whose
            // stream ends.
            let mut k = 0;
            while k < active {
                let staged = loop {
                    let st = &mut states[k];
                    let mut staged_here = false;
                    while st.cursor < st.filled {
                        let record = &st.batch[st.cursor];
                        let instructions = record.instructions();
                        if record.kind.is_conditional() {
                            pcs[k] = record.pc;
                            takens[k] = record.taken;
                            instrs[k] = instructions;
                            st.cursor += 1;
                            staged_here = true;
                            break;
                        }
                        st.cursor += 1;
                        if st.conditional_seen >= warmup {
                            st.report.add_instructions(instructions);
                            st.measured_instructions += instructions;
                        }
                    }
                    if staged_here {
                        break true;
                    }
                    // Batch drained — refill from the lane's source. A read
                    // error retires the stream like exhaustion (its partial
                    // result slot is discarded by the caller anyway).
                    let slot = st.source_idx;
                    let filled = match sources[slot].next_batch(&mut st.batch) {
                        Ok(n) => n,
                        Err(error) => {
                            if first_error
                                .as_ref()
                                .is_none_or(|(failed, _)| slot < *failed)
                            {
                                first_error = Some((slot, error));
                            }
                            0
                        }
                    };
                    if filled > 0 {
                        st.filled = filled;
                        st.cursor = 0;
                        continue;
                    }
                    // Stream over: finalize this lane's result in place.
                    let result = &mut results[slot];
                    result.trace_name.clear();
                    result.trace_name.push_str(sources[slot].name());
                    result.config_name.clear();
                    result.config_name.push_str(config_name);
                    result.report = mem::replace(&mut st.report, ConfidenceReport::new());
                    result.conditional_branches = st.measured_branches;
                    result.instructions = st.measured_instructions;
                    result.final_saturation_probability =
                        geometry.automaton.saturation_probability();
                    if next_pending < sources.len() {
                        group.arm(k);
                        st.rearm(next_pending);
                        next_pending += 1;
                        continue;
                    }
                    // No pending work: retire the lane, compacting the
                    // active range so passes stay dense.
                    active -= 1;
                    if k < active {
                        group.swap(k, active);
                        states.swap(k, active);
                        continue; // the swapped-in lane still needs staging
                    }
                    break false;
                };
                if staged {
                    k += 1;
                }
            }
            if active == 0 {
                break;
            }

            // Predict: all lanes, component-major over the transposed
            // folds (pass A), then probe + resolve per lane (pass B).
            group.predict(&pcs[..active], preds);

            // Grade + train counters: the scalar `step_branch` bookkeeping
            // and the counter/allocation update, one pass over the
            // predictions per cycle in the exact scalar order (assess,
            // observe, then update — each lane's state is private, so
            // fusing the loops only changes locality, not results).
            for k in 0..active {
                let st = &mut states[k];
                let prediction = &preds[k];
                let in_measurement = st.conditional_seen >= warmup;
                st.conditional_seen += 1;
                let class = st.classifier.classify(prediction);
                let mispredicted = prediction.predicted_taken() != takens[k];
                st.classifier.observe(prediction, takens[k]);
                if in_measurement {
                    st.report.record(class, mispredicted);
                    st.report.add_instructions(instrs[k]);
                    st.measured_branches += 1;
                    st.measured_instructions += instrs[k];
                }
                group.train_lane(k, takens[k], prediction);
            }

            // Then one vectorized history-advance pass across all lanes.
            group.advance(&takens[..active]);
        }

        match first_error {
            Some((_, error)) => Err(error),
            None => Ok(()),
        }
    }
}

/// Opens every spec and runs all of them through a [`MultilaneEngine`],
/// `lanes` streams at a time.
///
/// Each returned [`TraceRunResult`] is bit-identical to
/// [`run_source`] on that spec alone. When `options` requests the adaptive
/// saturation controller the specs fall back to the scalar engine, one
/// stream at a time (the controller steers one predictor mid-run and cannot
/// be batched).
///
/// # Errors
///
/// Returns the first [`FormatError`] in spec order, from opening or
/// streaming any source.
pub fn run_specs_multilane(
    blueprint: &dyn TageBlueprint,
    specs: &[SourceSpec],
    conditional_branches: usize,
    options: &RunOptions,
    lanes: usize,
) -> Result<Vec<TraceRunResult>, FormatError> {
    if options.adaptive_target_mkp.is_some() {
        let mut results = Vec::with_capacity(specs.len());
        for spec in specs {
            let mut source = spec.open(conditional_branches)?;
            results.push(run_source(blueprint, &mut source, options)?);
        }
        return Ok(results);
    }
    let mut sources = Vec::with_capacity(specs.len());
    for spec in specs {
        sources.push(spec.open(conditional_branches)?);
    }
    let mut engine = MultilaneEngine::new(blueprint, options, lanes);
    let mut results: Vec<TraceRunResult> = (0..specs.len())
        .map(|_| MultilaneEngine::placeholder_result())
        .collect();
    engine.run_into(&mut sources, &mut results)?;
    Ok(results)
}

impl SimEngine<TagePredictor, TageConfidenceClassifier> {
    /// Runs `sources` through the lane-batched lockstep path, `lanes`
    /// streams at a time — the multilane counterpart of driving each source
    /// through [`SimEngine::run_source`] in turn, bit-identical to doing
    /// exactly that.
    ///
    /// Adaptive runs (`options.adaptive_target_mkp`) fall back to the
    /// scalar engine per source.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed [`FormatError`] any source reported; the
    /// remaining streams still execute.
    pub fn run_sources_multilane<S>(
        blueprint: &dyn TageBlueprint,
        sources: &mut [S],
        options: &RunOptions,
        lanes: usize,
    ) -> Result<Vec<TraceRunResult>, FormatError>
    where
        S: BranchSource,
    {
        if options.adaptive_target_mkp.is_some() {
            let mut results = Vec::with_capacity(sources.len());
            for source in sources {
                results.push(run_source(blueprint, source, options)?);
            }
            return Ok(results);
        }
        let mut engine = MultilaneEngine::new(blueprint, options, lanes);
        let mut results: Vec<TraceRunResult> = (0..sources.len())
            .map(|_| MultilaneEngine::placeholder_result())
            .collect();
        engine.run_into(sources, &mut results)?;
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::TageConfig;
    use tage_traces::source::SyntheticSource;
    use tage_traces::suites;

    #[test]
    fn multilane_matches_scalar_per_source() {
        let suite = suites::cbp1_like();
        let config = TageConfig::small();
        let options = RunOptions::default();
        let specs: Vec<SourceSpec> = suite
            .traces()
            .iter()
            .map(|t| SourceSpec::Synthetic(t.clone()))
            .collect();
        let batched = run_specs_multilane(&config, &specs, 3_000, &options, 4).unwrap();
        assert_eq!(batched.len(), specs.len());
        for (spec, result) in specs.iter().zip(&batched) {
            let mut source = spec.open(3_000).unwrap();
            let scalar = run_source(&config, &mut source, &options).unwrap();
            assert_eq!(result.report, scalar.report, "{}", scalar.trace_name);
            assert_eq!(result.trace_name, scalar.trace_name);
            assert_eq!(result.config_name, scalar.config_name);
            assert_eq!(result.conditional_branches, scalar.conditional_branches);
            assert_eq!(result.instructions, scalar.instructions);
        }
    }

    #[test]
    fn engine_reuse_is_bit_identical_across_runs() {
        let spec = suites::cbp1_like().trace("INT-1").unwrap().clone();
        let config = TageConfig::small();
        let mut engine = MultilaneEngine::new(config.clone(), &RunOptions::default(), 2);
        let mut results = vec![
            MultilaneEngine::placeholder_result(),
            MultilaneEngine::placeholder_result(),
        ];
        let mut sources = vec![
            SyntheticSource::from_spec(&spec, 2_000),
            SyntheticSource::from_spec(&spec, 2_000),
        ];
        engine.run_into(&mut sources, &mut results).unwrap();
        let first = results[0].report.clone();
        for source in &mut sources {
            use tage_traces::source::BranchSource as _;
            source.reset().unwrap();
        }
        engine.run_into(&mut sources, &mut results).unwrap();
        assert_eq!(results[0].report, first);
        assert_eq!(results[1].report, first);
    }

    #[test]
    #[should_panic(expected = "adaptive")]
    fn adaptive_options_are_rejected_by_the_batched_engine() {
        let _ = MultilaneEngine::new(TageConfig::small(), &RunOptions::adaptive(), 4);
    }
}
