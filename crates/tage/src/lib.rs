//! A faithful TAGE conditional branch predictor.
//!
//! TAGE (TAgged GEometric history length) is the state-of-the-art branch
//! predictor introduced by Seznec and Michaud (2006). It couples a simple
//! PC-indexed bimodal *base predictor* with a set of *tagged components*
//! indexed with hashes of the PC and geometrically increasing global-history
//! lengths. The hitting tagged component using the longest history provides
//! the prediction; the base predictor provides the default.
//!
//! The paper reproduced by this workspace — *Storage Free Confidence
//! Estimation for the TAGE branch predictor* (Seznec, HPCA 2011) — observes
//! the outputs of this predictor to grade the confidence of each prediction,
//! and slightly modifies the 3-bit counter update automaton of the tagged
//! components (probabilistic transition to the saturated states) so that
//! saturated counters become a genuine high-confidence class.
//!
//! This crate provides:
//!
//! * [`TageConfig`] — configuration and exact storage accounting, with the
//!   paper's three presets: [`TageConfig::small`] (16 Kbit),
//!   [`TageConfig::medium`] (64 Kbit) and [`TageConfig::large`] (256 Kbit);
//! * [`CounterAutomaton`] — the standard 3-bit automaton and the modified
//!   probabilistic-saturation automaton (Section 6 of the paper);
//! * [`TagePredictor`] — prediction, update, entry allocation, useful-counter
//!   aging and the `USE_ALT_ON_NA` heuristic;
//! * [`TagePrediction`] — the full observable output of a prediction
//!   (provider component, counter values, alternate prediction), which is all
//!   the confidence classifier in `tage-confidence` needs.
//!
//! # Hot-path storage layout
//!
//! The predictor is built for simulation throughput as well as fidelity:
//!
//! * the tagged components live in [`tables::TageTables`], a flat
//!   structure-of-arrays layout (contiguous tag / prediction-counter /
//!   useful-counter arrays addressed with power-of-two shift-and-mask
//!   indices), so the lookup's tag probes touch only the tag array;
//! * each prediction's per-table observables land in the fixed-size
//!   [`TableLookups`] scratch (`[TableLookup; MAX_TAGGED_TABLES]` on the
//!   stack), so [`TagePredictor::predict`] and [`TagePredictor::update`]
//!   perform **zero heap allocations**;
//! * the pre-optimisation nested-`Vec` implementation is kept as
//!   [`reference::ReferenceTagePredictor`], the executable specification the
//!   fast path is pinned against (`tests/soa_parity.rs`).
//!
//! # Example
//!
//! ```
//! use tage::{TageConfig, TagePredictor};
//!
//! let mut predictor = TagePredictor::new(TageConfig::medium());
//! // Train a loop branch: taken 7 times, then not taken.
//! for _round in 0..100 {
//!     for i in 0..8 {
//!         let taken = i != 7;
//!         let pred = predictor.predict(0x4000_0000);
//!         predictor.update(0x4000_0000, taken, &pred);
//!     }
//! }
//! let prediction = predictor.predict(0x4000_0000);
//! assert!(prediction.taken);
//! ```

// `deny` rather than `forbid`: the software-prefetch hint in `tables`
// carries the crate's only `#[allow(unsafe_code)]` (a prefetch cannot fault
// and has no architectural effect).
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod automaton;
pub mod config;
pub mod entry;
pub mod folded;
pub mod geometry;
pub mod lanes;
pub mod prediction;
pub mod predictor;
pub mod reference;
pub(crate) mod snapshot;
pub mod tables;

pub use automaton::CounterAutomaton;
pub use config::{TageConfig, TageConfigBuilder};
pub use geometry::{TableGeometry, TageBlueprint, TageGeometry};
pub use lanes::LaneGroup;
pub use prediction::{Provider, TableLookup, TableLookups, TagePrediction, MAX_TAGGED_TABLES};
pub use predictor::TagePredictor;
pub use reference::ReferenceTagePredictor;
pub use tables::TageTables;
