//! Counter-update automatons for the tagged components.
//!
//! Section 6 of the paper proposes a marginal modification of the 3-bit
//! prediction-counter automaton: on a correct prediction, a counter that is
//! one step away from saturation only moves into the saturated state with a
//! small probability (1/128 in the paper's experiments). The saturated state
//! then implies that the counter has provided no misprediction in the recent
//! past, which turns the saturated-counter class `Stag` into a genuine
//! high-confidence class (1–5 MKP) at a negligible accuracy cost
//! (< 0.02 misp/KI).

use core::fmt;

use tage_predictors::counter::SignedCounter;
use tage_traces::SplitMix64;

/// The counter-update automaton used for the tagged prediction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CounterAutomaton {
    /// The standard saturating-counter automaton of the original TAGE.
    #[default]
    Standard,
    /// The paper's modified automaton: the transition from the
    /// nearly-saturated state into the saturated state on a correct
    /// prediction is only taken with probability `1 / 2^log2_inverse_probability`.
    ProbabilisticSaturation {
        /// log2 of the inverse transition probability (7 ⇒ 1/128, the
        /// paper's default; 4 ⇒ 1/16, the paper's Section 6.2 comparison).
        log2_inverse_probability: u32,
    },
}

impl CounterAutomaton {
    /// Convenience constructor for the probabilistic-saturation automaton.
    ///
    /// `log2_inverse_probability = 7` gives the paper's default 1/128.
    pub fn probabilistic(log2_inverse_probability: u32) -> Self {
        CounterAutomaton::ProbabilisticSaturation {
            log2_inverse_probability,
        }
    }

    /// The paper's default modified automaton (probability 1/128).
    pub fn paper_default() -> Self {
        CounterAutomaton::probabilistic(7)
    }

    /// Validates the automaton parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem if the probability exponent is
    /// out of range (0..=20).
    pub fn validate(&self) -> Result<(), String> {
        match self {
            CounterAutomaton::Standard => Ok(()),
            CounterAutomaton::ProbabilisticSaturation {
                log2_inverse_probability,
            } => {
                if *log2_inverse_probability > 20 {
                    Err("log2_inverse_probability must be at most 20".to_string())
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The saturation probability of this automaton (1.0 for the standard
    /// automaton).
    pub fn saturation_probability(&self) -> f64 {
        match self {
            CounterAutomaton::Standard => 1.0,
            CounterAutomaton::ProbabilisticSaturation {
                log2_inverse_probability,
            } => 1.0 / f64::from(1u32 << log2_inverse_probability.min(&30)),
        }
    }

    /// Updates a tagged prediction counter with the resolved outcome.
    ///
    /// For the standard automaton this is a plain saturating update. For the
    /// probabilistic automaton, when the update is *towards* the counter's
    /// current direction (a correct prediction) and the counter sits one
    /// step from saturation, the final step is taken only with the
    /// configured probability; all other transitions are unchanged.
    pub fn update_counter(&self, counter: &mut SignedCounter, taken: bool, rng: &mut SplitMix64) {
        match self {
            CounterAutomaton::Standard => counter.update(taken),
            CounterAutomaton::ProbabilisticSaturation {
                log2_inverse_probability,
            } => {
                let correct = counter.predict_taken() == taken;
                let about_to_saturate = correct
                    && counter.is_nearly_saturated_boundary()
                    // Moving further in the counter's own direction.
                    && ((taken && counter.value() > 0) || (!taken && counter.value() < 0));
                if about_to_saturate {
                    let mask = (1u64 << log2_inverse_probability) - 1;
                    if rng.next_u64() & mask == 0 {
                        counter.update(taken);
                    }
                    // Otherwise the counter stays in the nearly-saturated
                    // state.
                } else {
                    counter.update(taken);
                }
            }
        }
    }
}

impl fmt::Display for CounterAutomaton {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterAutomaton::Standard => write!(f, "standard"),
            CounterAutomaton::ProbabilisticSaturation {
                log2_inverse_probability,
            } => write!(f, "probabilistic(1/{})", 1u64 << log2_inverse_probability),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_at(value: i8) -> SignedCounter {
        SignedCounter::with_value(3, value)
    }

    #[test]
    fn standard_automaton_is_plain_saturating_update() {
        let mut rng = SplitMix64::new(1);
        let automaton = CounterAutomaton::Standard;
        let mut c = counter_at(2);
        automaton.update_counter(&mut c, true, &mut rng);
        assert_eq!(c.value(), 3);
        automaton.update_counter(&mut c, false, &mut rng);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn probabilistic_automaton_rarely_saturates_positive_side() {
        let automaton = CounterAutomaton::probabilistic(7);
        let mut rng = SplitMix64::new(42);
        let trials = 20_000;
        let mut saturated = 0;
        for _ in 0..trials {
            let mut c = counter_at(2);
            automaton.update_counter(&mut c, true, &mut rng);
            if c.value() == 3 {
                saturated += 1;
            }
        }
        let rate = saturated as f64 / trials as f64;
        assert!(
            (rate - 1.0 / 128.0).abs() < 0.005,
            "saturation rate {rate} should be close to 1/128"
        );
    }

    #[test]
    fn probabilistic_automaton_rarely_saturates_negative_side() {
        let automaton = CounterAutomaton::probabilistic(4);
        let mut rng = SplitMix64::new(7);
        let trials = 20_000;
        let mut saturated = 0;
        for _ in 0..trials {
            let mut c = counter_at(-3);
            automaton.update_counter(&mut c, false, &mut rng);
            if c.value() == -4 {
                saturated += 1;
            }
        }
        let rate = saturated as f64 / trials as f64;
        assert!(
            (rate - 1.0 / 16.0).abs() < 0.01,
            "saturation rate {rate} should be close to 1/16"
        );
    }

    #[test]
    fn probabilistic_automaton_leaves_other_transitions_untouched() {
        let automaton = CounterAutomaton::probabilistic(7);
        let mut rng = SplitMix64::new(3);
        // Weak counter moves freely.
        let mut c = counter_at(0);
        automaton.update_counter(&mut c, true, &mut rng);
        assert_eq!(c.value(), 1);
        // A misprediction moves the nearly-saturated counter down freely.
        let mut c = counter_at(2);
        automaton.update_counter(&mut c, false, &mut rng);
        assert_eq!(c.value(), 1);
        // A saturated counter on a misprediction weakens freely.
        let mut c = counter_at(3);
        automaton.update_counter(&mut c, false, &mut rng);
        assert_eq!(c.value(), 2);
        // The not-taken direction away from saturation is unaffected.
        let mut c = counter_at(-3);
        automaton.update_counter(&mut c, true, &mut rng);
        assert_eq!(c.value(), -2);
    }

    #[test]
    fn saturation_probability_reporting() {
        assert_eq!(CounterAutomaton::Standard.saturation_probability(), 1.0);
        assert!(
            (CounterAutomaton::probabilistic(7).saturation_probability() - 1.0 / 128.0).abs()
                < 1e-12
        );
        assert!((CounterAutomaton::probabilistic(0).saturation_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probability_zero_exponent_behaves_like_standard() {
        let automaton = CounterAutomaton::probabilistic(0);
        let mut rng = SplitMix64::new(11);
        let mut c = counter_at(2);
        automaton.update_counter(&mut c, true, &mut rng);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn validation_bounds_exponent() {
        assert!(CounterAutomaton::probabilistic(20).validate().is_ok());
        assert!(CounterAutomaton::probabilistic(21).validate().is_err());
        assert!(CounterAutomaton::Standard.validate().is_ok());
    }

    #[test]
    fn paper_default_is_one_over_128() {
        assert_eq!(
            CounterAutomaton::paper_default(),
            CounterAutomaton::probabilistic(7)
        );
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(format!("{}", CounterAutomaton::Standard), "standard");
        assert_eq!(
            format!("{}", CounterAutomaton::probabilistic(7)),
            "probabilistic(1/128)"
        );
    }
}
