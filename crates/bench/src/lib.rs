//! Benchmark harness: shared helpers for the table/figure regeneration
//! binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). They all accept an optional
//! first argument: the number of conditional branches to simulate per trace
//! (the traces in the paper are ~30 M instructions long; the default here is
//! chosen so a full binary completes in seconds to minutes on a laptop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Default number of conditional branches simulated per trace by the
/// experiment binaries.
pub const DEFAULT_BRANCHES_PER_TRACE: usize = 200_000;

/// Reads the branches-per-trace count from the first CLI argument, falling
/// back to [`DEFAULT_BRANCHES_PER_TRACE`].
pub fn branches_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.replace('_', "").parse().ok())
        .unwrap_or(DEFAULT_BRANCHES_PER_TRACE)
}

/// Prints the standard experiment header used by every binary.
pub fn print_header(what: &str, branches: usize) {
    println!("== {what} ==");
    println!(
        "synthetic CBP-1-like / CBP-2-like workloads, {branches} conditional branches per trace"
    );
    println!();
}

pub mod harness {
    //! A tiny, dependency-free micro-benchmark harness.
    //!
    //! The workspace must build and run without network access, so the
    //! benches under `benches/` cannot use criterion. This harness provides
    //! the small subset they need: warm up, run a fixed number of timed
    //! iterations, and report throughput in million elements per second.

    use std::time::Instant;

    /// Number of timed iterations per measurement.
    pub const DEFAULT_ITERATIONS: u32 = 5;

    /// Times `f` and prints `group/name: <rate> Melem/s (<ms>/iter)`.
    ///
    /// `elements_per_iter` is the number of logical work items (branches,
    /// bytes, ...) one call to `f` processes. The closure's return value is
    /// accumulated and printed so the compiler cannot discard the work.
    pub fn bench<R: std::fmt::Debug>(
        group: &str,
        name: &str,
        elements_per_iter: u64,
        mut f: impl FnMut() -> R,
    ) {
        // Warm-up iteration (untimed): touches caches and page tables.
        let mut sink = f();
        let start = Instant::now();
        for _ in 0..DEFAULT_ITERATIONS {
            sink = f();
        }
        let elapsed = start.elapsed();
        let per_iter = elapsed / DEFAULT_ITERATIONS;
        let rate = if per_iter.as_nanos() == 0 {
            f64::INFINITY
        } else {
            elements_per_iter as f64 / per_iter.as_secs_f64() / 1.0e6
        };
        println!(
            "{group}/{name}: {rate:.2} Melem/s ({:.2} ms/iter, last result {sink:?})",
            per_iter.as_secs_f64() * 1.0e3,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_reports_without_panicking() {
        harness::bench("test", "noop", 1, || 42u64);
    }

    #[test]
    fn default_is_used_without_args() {
        // The test binary receives its own args; just check the helper does
        // not panic and returns a positive count.
        assert!(branches_from_args() > 0);
    }
}
