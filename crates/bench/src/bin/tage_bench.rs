//! `tage-bench` — the cross-product campaign runner.
//!
//! Expands a declarative predictor × confidence-scheme × suite grid into
//! sweep points, executes them through the generic simulation engine with a
//! work-stealing queue over points, and writes a versioned JSON campaign
//! report (see `docs/CAMPAIGNS.md` for the grid format and schema).
//!
//! ```text
//! tage-bench [--predictors LIST] [--schemes LIST] [--suites LIST]
//!            [--branches N] [--workers N] [--label STR] [--out PATH]
//!            [--no-timing] [--list]
//! tage-bench --check PATH
//! ```
//!
//! Lists are comma-separated grid tokens; `--list` prints every known axis
//! value. `--check` structurally validates an existing report (schema
//! version + required fields) and exits non-zero on mismatch — the CI
//! campaign-smoke job runs it on the artifact it just produced.

use std::process::ExitCode;

use tage_bench::campaign::{run_campaign, validate_report, CampaignSpec, SCHEMA_VERSION};
use tage_bench::cli;
use tage_sim::engine::default_parallelism;
use tage_sim::point::{PredictorSpec, SchemeSpec};
use tage_traces::suites;

/// The default smoke grid: one TAGE size and one baseline predictor, the
/// storage-free scheme against one baseline estimator, over the mini suite.
const DEFAULT_PREDICTORS: &str = "tage-16k,gshare";
const DEFAULT_SCHEMES: &str = "storage-free,jrs-classic";
const DEFAULT_SUITES: &str = "cbp1-mini";
const DEFAULT_BRANCHES: usize = 20_000;

struct Options {
    predictors: String,
    schemes: String,
    suites: String,
    branches: usize,
    workers: usize,
    label: String,
    out: Option<String>,
    include_timing: bool,
    list: bool,
    check: Option<String>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        predictors: DEFAULT_PREDICTORS.to_string(),
        schemes: DEFAULT_SCHEMES.to_string(),
        suites: DEFAULT_SUITES.to_string(),
        branches: DEFAULT_BRANCHES,
        workers: default_parallelism(),
        label: "campaign".to_string(),
        out: None,
        include_timing: true,
        list: false,
        check: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--predictors" => options.predictors = cli::require_value(&mut args, "--predictors")?,
            "--schemes" => options.schemes = cli::require_value(&mut args, "--schemes")?,
            "--suites" => options.suites = cli::require_value(&mut args, "--suites")?,
            "--branches" => {
                let value = cli::require_value(&mut args, "--branches")?;
                options.branches = cli::parse_count("--branches", &value)?;
            }
            "--workers" => {
                let value = cli::require_value(&mut args, "--workers")?;
                options.workers = cli::parse_count("--workers", &value)?;
            }
            "--label" => options.label = cli::require_value(&mut args, "--label")?,
            "--out" => options.out = Some(cli::require_value(&mut args, "--out")?),
            "--no-timing" => options.include_timing = false,
            "--list" => options.list = true,
            "--check" => options.check = Some(cli::require_value(&mut args, "--check")?),
            other => {
                return Err(format!(
                    "unknown argument: {other} (see --list or docs/CAMPAIGNS.md)"
                ))
            }
        }
    }
    Ok(options)
}

fn parse_axis<T>(
    axis: &str,
    list: &str,
    parse: impl Fn(&str) -> Option<T>,
    known: &[String],
) -> Result<Vec<T>, String> {
    let mut values = Vec::new();
    for token in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match parse(token) {
            Some(value) => values.push(value),
            None => {
                return Err(format!(
                    "unknown {axis} token \"{token}\" (known: {})",
                    known.join(", ")
                ))
            }
        }
    }
    if values.is_empty() {
        return Err(format!("the {axis} axis is empty"));
    }
    Ok(values)
}

fn print_axes() {
    println!(
        "predictor tokens: {}",
        PredictorSpec::known_tokens().join(", ")
    );
    println!(
        "scheme tokens:    {}",
        SchemeSpec::known_tokens().join(", ")
    );
    println!("suite tokens:     {}", suites::REGISTRY.join(", "));
    println!();
    println!("(storage-free pairs with TAGE predictors only; other cells are skipped)");
}

fn check_report(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(error) => {
            eprintln!("--check: cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    match validate_report(&json) {
        Ok(summary) => {
            println!(
                "{path}: valid campaign report (schema {}, {} points, {} skipped)",
                summary.schema, summary.points, summary.skipped
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("--check: {path}: {error}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(error) => {
            eprintln!("tage-bench: {error}");
            return ExitCode::FAILURE;
        }
    };
    if options.list {
        print_axes();
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &options.check {
        return check_report(path);
    }

    let spec = {
        let predictors = parse_axis(
            "predictor",
            &options.predictors,
            PredictorSpec::parse,
            &PredictorSpec::known_tokens(),
        );
        let schemes = parse_axis(
            "scheme",
            &options.schemes,
            SchemeSpec::parse,
            &SchemeSpec::known_tokens(),
        );
        let suite_names: Vec<String> = suites::REGISTRY.iter().map(|s| s.to_string()).collect();
        let suites = parse_axis("suite", &options.suites, suites::by_name, &suite_names);
        match (predictors, schemes, suites) {
            (Ok(predictors), Ok(schemes), Ok(suites)) => CampaignSpec {
                label: options.label.clone(),
                predictors,
                schemes,
                suites,
                branches_per_trace: options.branches,
            },
            (predictors, schemes, suites) => {
                for error in [predictors.err(), schemes.err(), suites.err()]
                    .into_iter()
                    .flatten()
                {
                    eprintln!("tage-bench: {error}");
                }
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "== tage-bench campaign \"{}\" — {} × {} × {} grid, {} branches/trace, {} workers ==",
        spec.label,
        spec.predictors.len(),
        spec.schemes.len(),
        spec.suites.len(),
        spec.branches_per_trace,
        options.workers,
    );
    let report = run_campaign(&spec, options.workers);
    if report.points.is_empty() {
        eprintln!(
            "tage-bench: the grid produced no executable points ({} skipped)",
            report.skipped.len()
        );
        return ExitCode::FAILURE;
    }

    println!(
        "{:<14} {:<15} {:<11} {:>11} {:>10} {:>10} {:>10}",
        "predictor", "scheme", "suite", "predictions", "mean_mpki", "high_pcov", "seconds"
    );
    for point in &report.points {
        let result = &point.result;
        println!(
            "{:<14} {:<15} {:<11} {:>11} {:>10.3} {:>10.3} {:>10.3}",
            result.predictor,
            result.scheme,
            result.suite,
            result.total_predictions(),
            result.mean_mpki(),
            result
                .aggregate
                .level_pcov(tage_confidence::ConfidenceLevel::High),
            point.wall_seconds,
        );
    }
    for skipped in &report.skipped {
        println!(
            "skipped        {} × {} on {}: {}",
            skipped.predictor, skipped.scheme, skipped.suite, skipped.reason
        );
    }
    println!();
    println!(
        "{} points in {:.3}s on {} workers ({} steals), schema {}",
        report.points.len(),
        report.wall_seconds,
        report.workers,
        report.steals,
        SCHEMA_VERSION
    );

    if let Some(path) = &options.out {
        let json = report.render_json(options.include_timing);
        if let Err(error) = std::fs::write(path, &json) {
            eprintln!("tage-bench: could not write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
