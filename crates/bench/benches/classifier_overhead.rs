//! Criterion micro-benchmark: cost of the storage-free confidence
//! classification on top of a plain TAGE simulation loop.
//!
//! The paper's argument is that the estimation is free in hardware; this
//! bench shows it is also nearly free in simulation (a few percent on top of
//! predict + update).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence::TageConfidenceClassifier;
use tage_traces::{suites, Trace};

fn workload() -> Trace {
    suites::cbp1_like().trace("MM-3").unwrap().generate(20_000)
}

fn config() -> TageConfig {
    TageConfig::medium().with_automaton(CounterAutomaton::paper_default())
}

fn bench_classifier_overhead(c: &mut Criterion) {
    let trace = workload();
    let mut group = c.benchmark_group("classifier_overhead");
    group.throughput(Throughput::Elements(
        trace.iter().filter(|r| r.kind.is_conditional()).count() as u64,
    ));
    group.bench_function("predict_update_only", |b| {
        b.iter(|| {
            let mut predictor = TagePredictor::new(config());
            let mut misses = 0u64;
            for record in trace.iter().filter(|r| r.kind.is_conditional()) {
                let pred = predictor.predict(record.pc);
                if pred.taken != record.taken {
                    misses += 1;
                }
                predictor.update(record.pc, record.taken, &pred);
            }
            misses
        });
    });
    group.bench_function("predict_classify_update", |b| {
        b.iter(|| {
            let mut predictor = TagePredictor::new(config());
            let mut classifier = TageConfidenceClassifier::new(&config());
            let mut high = 0u64;
            for record in trace.iter().filter(|r| r.kind.is_conditional()) {
                let pred = predictor.predict(record.pc);
                let class = classifier.classify_and_observe(&pred, record.taken);
                if class.level() == tage_confidence::ConfidenceLevel::High {
                    high += 1;
                }
                predictor.update(record.pc, record.taken, &pred);
            }
            high
        });
    });
    group.finish();
}

criterion_group!(benches, bench_classifier_overhead);
criterion_main!(benches);
