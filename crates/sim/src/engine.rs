//! The generic, predictor-agnostic simulation engine.
//!
//! Every experiment in the workspace used to carry its own copy of the trace
//! loop: the TAGE runner, the baseline-estimator runner, the fetch-gating
//! model and the SMT model all re-implemented "predict, grade confidence,
//! record, train". [`SimEngine`] replaces those copies with one execution
//! path generic over
//!
//! * the predictor, via [`PredictorCore`] — the TAGE predictor with its rich
//!   observable lookup, or any [`tage_predictors::BranchPredictor`] (even a
//!   trait object) through [`tage_predictors::MarginPredictor`];
//! * the confidence scheme, via [`ConfidenceScheme`] — the storage-free TAGE
//!   classifier or any storage-based baseline estimator through
//!   [`tage_confidence::EstimatorScheme`];
//! * per-branch instrumentation, via [`EngineObserver`] — report
//!   accumulation, adaptive automaton control, gating policies, SMT fetch
//!   arbitration. Observers compose as tuples and receive mutable access to
//!   the predictor so controllers can steer it mid-run.
//!
//! The engine exposes two granularities: [`SimEngine::run`] drives a whole
//! trace (warm-up exclusion, instruction accounting), while
//! [`SimEngine::step_branch`] executes a single conditional branch so
//! cycle-interleaved models (SMT) can share the exact same predict → assess
//! → observe → train sequence.
//!
//! [`par_map`] provides the communication-free per-trace sharding used by
//! `run_suite` and the experiment sweeps: results are written into
//! preallocated slots and merged in deterministic input order, so a parallel
//! suite run is bit-identical to a serial one.
//!
//! # Example: an arbitrary predictor × estimator cross-product
//!
//! ```
//! use tage_confidence::estimators::JrsEstimator;
//! use tage_confidence::EstimatorScheme;
//! use tage_predictors::{GsharePredictor, MarginPredictor};
//! use tage_sim::engine::{ReportObserver, SimEngine};
//! use tage_traces::suites;
//!
//! let trace = suites::cbp1_like().traces()[0].generate(2_000);
//! let mut engine = SimEngine::new(
//!     MarginPredictor(GsharePredictor::new(12, 12)),
//!     EstimatorScheme(JrsEstimator::classic(10)),
//! );
//! let mut report = ReportObserver::default();
//! let summary = engine.run(&trace, &mut report);
//! assert_eq!(summary.measured_branches, 2_000);
//! assert_eq!(report.report.total().predictions, 2_000);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tage_confidence::scheme::{Assessment, ConfidenceScheme};
use tage_confidence::ConfidenceReport;
use tage_predictors::{PredictionOutcome, PredictorCore};
use tage_traces::format::FormatError;
use tage_traces::source::{BranchSource, SliceSource};
use tage_traces::{BranchRecord, Trace};

/// Everything the engine knows about one executed conditional branch,
/// handed to every [`EngineObserver`].
#[derive(Debug)]
pub struct BranchEvent<'a, L> {
    /// The branch PC.
    pub pc: u64,
    /// The resolved direction.
    pub taken: bool,
    /// Whether the final prediction was wrong.
    pub mispredicted: bool,
    /// The confidence scheme's verdict for this prediction.
    pub assessment: Assessment,
    /// The predictor's full lookup output.
    pub lookup: &'a L,
    /// Whether the branch falls inside the measured region (past warm-up).
    pub in_measurement: bool,
    /// Instructions attributed to **this record alone**: the branch
    /// instruction itself plus the record's own non-branch gap
    /// ([`tage_traces::BranchRecord::instructions`]).
    ///
    /// Instructions carried by intervening non-conditional records (calls,
    /// returns, jumps — each with its own gap) are *not* folded in here;
    /// they are delivered separately through
    /// [`EngineObserver::on_instructions`]. An observer that sums both
    /// streams therefore counts every trace instruction exactly once —
    /// adding any part of one stream to the other double-counts.
    pub instructions: u64,
}

/// Per-branch instrumentation plugged into a [`SimEngine`] run.
///
/// `on_branch` fires after the scheme has observed the outcome and *before*
/// the predictor trains, which is the window a run-time controller (the
/// adaptive saturation controller of the paper's Section 6.2) needs to steer
/// the predictor; pure collectors simply ignore the predictor argument.
///
/// Observers compose structurally: tuples of arity 2 through 6 run their
/// elements left to right (`(&mut a, &mut b)` runs `a` then `b`), and
/// `Option<O>` is a no-op when `None`.
pub trait EngineObserver<P: PredictorCore> {
    /// Called once per conditional branch.
    fn on_branch(&mut self, predictor: &mut P, event: &BranchEvent<'_, P::Lookup>);

    /// Called for every non-branch record (calls, returns, jumps) with its
    /// instruction count.
    fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
        let _ = (instructions, in_measurement);
    }
}

/// The no-op observer.
impl<P: PredictorCore> EngineObserver<P> for () {
    fn on_branch(&mut self, _predictor: &mut P, _event: &BranchEvent<'_, P::Lookup>) {}
}

impl<P: PredictorCore, O: EngineObserver<P> + ?Sized> EngineObserver<P> for &mut O {
    fn on_branch(&mut self, predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
        (**self).on_branch(predictor, event)
    }

    fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
        (**self).on_instructions(instructions, in_measurement)
    }
}

impl<P: PredictorCore, O: EngineObserver<P>> EngineObserver<P> for Option<O> {
    fn on_branch(&mut self, predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
        if let Some(observer) = self {
            observer.on_branch(predictor, event)
        }
    }

    fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
        if let Some(observer) = self {
            observer.on_instructions(instructions, in_measurement)
        }
    }
}

/// Observers compose structurally as tuples: `(a, b)` runs `a` then `b` for
/// every event. Implemented for arities 2 through 6, so a scenario stack
/// (report + energy + prefetch + controller, say) is one flat tuple instead
/// of awkward nesting.
macro_rules! impl_observer_tuple {
    ($($observer:ident . $index:tt),+) => {
        impl<P: PredictorCore, $($observer: EngineObserver<P>),+> EngineObserver<P>
            for ($($observer,)+)
        {
            fn on_branch(&mut self, predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
                $(self.$index.on_branch(predictor, event);)+
            }

            fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
                $(self.$index.on_instructions(instructions, in_measurement);)+
            }
        }
    };
}

impl_observer_tuple!(A.0, B.1);
impl_observer_tuple!(A.0, B.1, C.2);
impl_observer_tuple!(A.0, B.1, C.2, D.3);
impl_observer_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_observer_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Accumulates a per-class [`ConfidenceReport`] (with instruction counts for
/// MPKI) over the measured region of a run — the observer behind every
/// table and figure of the paper.
///
/// Classed assessments land in their prediction-class bucket; level-only
/// assessments (baseline estimators) land in the report's level buckets.
#[derive(Debug, Default)]
pub struct ReportObserver {
    /// The accumulated report.
    pub report: ConfidenceReport,
}

impl<P: PredictorCore> EngineObserver<P> for ReportObserver {
    fn on_branch(&mut self, _predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
        if !event.in_measurement {
            return;
        }
        match event.assessment.class {
            Some(class) => self.report.record(class, event.mispredicted),
            None => self
                .report
                .record_level(event.assessment.level, event.mispredicted),
        }
        self.report.add_instructions(event.instructions);
    }

    fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
        if in_measurement {
            self.report.add_instructions(instructions);
        }
    }
}

/// The outcome of a single [`SimEngine::step_branch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// The confidence scheme's verdict.
    pub assessment: Assessment,
    /// Whether the prediction was wrong.
    pub mispredicted: bool,
    /// Whether the branch fell inside the measured region.
    pub in_measurement: bool,
}

/// Aggregate counters of one [`SimEngine::run`] call (measured region only,
/// except `total_branches`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSummary {
    /// Conditional branches inside the measured region.
    pub measured_branches: u64,
    /// Mispredictions inside the measured region.
    pub measured_mispredictions: u64,
    /// Instructions attributed to the measured region.
    pub measured_instructions: u64,
    /// All conditional branches executed, including warm-up.
    pub total_branches: u64,
}

/// Number of records [`SimEngine::run_source`] pulls from a
/// [`BranchSource`] per batch — the engine's only per-run record footprint
/// when streaming.
pub const SOURCE_BATCH_RECORDS: usize = 4096;

/// The generic simulation engine: one predictor, one confidence scheme, one
/// execution path for every experiment.
///
/// See the [module documentation](self) for the design; `runner`, `baseline`,
/// `gating` and `smt` are all thin assemblies of this type.
#[derive(Debug)]
pub struct SimEngine<P, S>
where
    P: PredictorCore,
    S: ConfidenceScheme<P::Lookup>,
{
    predictor: P,
    scheme: S,
    warmup_branches: u64,
    conditional_seen: u64,
    /// Reusable batch buffer for [`SimEngine::run_source`]; allocated once
    /// at construction so streaming runs stay allocation-free in steady
    /// state.
    batch: Vec<BranchRecord>,
}

impl<P, S> SimEngine<P, S>
where
    P: PredictorCore,
    S: ConfidenceScheme<P::Lookup>,
{
    /// Couples a predictor with a confidence scheme.
    pub fn new(predictor: P, scheme: S) -> Self {
        SimEngine {
            predictor,
            scheme,
            warmup_branches: 0,
            conditional_seen: 0,
            batch: vec![BranchRecord::default(); SOURCE_BATCH_RECORDS],
        }
    }

    /// Excludes the first `warmup_branches` conditional branches from the
    /// measured statistics (the predictor still trains on them).
    pub fn with_warmup(mut self, warmup_branches: u64) -> Self {
        self.warmup_branches = warmup_branches;
        self
    }

    /// The wrapped predictor.
    pub fn predictor(&self) -> &P {
        &self.predictor
    }

    /// Mutable access to the wrapped predictor.
    pub fn predictor_mut(&mut self) -> &mut P {
        &mut self.predictor
    }

    /// The wrapped confidence scheme.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// Conditional branches executed so far (across `run` and `step_branch`
    /// calls).
    pub fn branches_executed(&self) -> u64 {
        self.conditional_seen
    }

    /// Resets predictor, scheme and warm-up progress, so the engine starts
    /// the next trace cold.
    pub fn reset(&mut self) {
        self.predictor.reset();
        self.scheme.reset();
        self.conditional_seen = 0;
    }

    /// Consumes the engine, returning the predictor and the scheme.
    pub fn into_parts(self) -> (P, S) {
        (self.predictor, self.scheme)
    }

    /// Executes one conditional branch through the full predict → assess →
    /// observe → notify → train sequence.
    ///
    /// `instructions` is the instruction count attributed to the branch
    /// record (forwarded to observers for MPKI accounting; pass the record's
    /// [`tage_traces::BranchRecord::instructions`] or 0 when irrelevant).
    ///
    /// # Example
    ///
    /// Cycle-interleaved models (the SMT fetch policy) drive branches one at
    /// a time; a trained TAGE engine answers each step with the scheme's
    /// confidence verdict:
    ///
    /// ```
    /// use tage::{TageConfig, TagePredictor};
    /// use tage_confidence::TageConfidenceClassifier;
    /// use tage_sim::engine::SimEngine;
    ///
    /// let config = TageConfig::small();
    /// let mut engine = SimEngine::new(
    ///     TagePredictor::new(config.clone()),
    ///     TageConfidenceClassifier::new(&config),
    /// );
    /// // A loop branch: taken three times, then falls through.
    /// let mut mispredictions = 0;
    /// for round in 0..200 {
    ///     for i in 0..4 {
    ///         let outcome = engine.step_branch(0x4000_1000, i != 3, 1, &mut ());
    ///         if round > 50 && outcome.mispredicted {
    ///             mispredictions += 1;
    ///         }
    ///     }
    /// }
    /// assert_eq!(engine.branches_executed(), 800);
    /// assert!(mispredictions < 20, "TAGE captures a period-4 loop");
    /// ```
    pub fn step_branch<O: EngineObserver<P>>(
        &mut self,
        pc: u64,
        taken: bool,
        instructions: u64,
        observer: &mut O,
    ) -> StepOutcome {
        let in_measurement = self.conditional_seen >= self.warmup_branches;
        self.conditional_seen += 1;

        let lookup = self.predictor.lookup(pc);
        let assessment = self.scheme.assess(pc, &lookup);
        let mispredicted = lookup.predicted_taken() != taken;
        self.scheme.observe(pc, &lookup, taken);

        let event = BranchEvent {
            pc,
            taken,
            mispredicted,
            assessment,
            lookup: &lookup,
            in_measurement,
            instructions,
        };
        observer.on_branch(&mut self.predictor, &event);

        self.predictor.train(pc, taken, &lookup);

        StepOutcome {
            assessment,
            mispredicted,
            in_measurement,
        }
    }

    /// Drives the engine over every record of `trace`.
    ///
    /// Non-conditional records (calls, returns, jumps) contribute to the
    /// instruction accounting but are not predicted, as in the paper's
    /// methodology.
    ///
    /// The per-branch loop is allocation-free end to end for the TAGE path:
    /// `TagePredictor::predict` collects its per-table observables in a
    /// fixed-size stack scratch (see `tage::TableLookups`), so a run's heap
    /// traffic is limited to whatever the observers themselves do.
    ///
    /// # Example
    ///
    /// ```
    /// use tage::{TageConfig, TagePredictor};
    /// use tage_confidence::TageConfidenceClassifier;
    /// use tage_sim::engine::{ReportObserver, SimEngine};
    /// use tage_traces::suites;
    ///
    /// let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(5_000);
    /// let config = TageConfig::small();
    /// let mut engine = SimEngine::new(
    ///     TagePredictor::new(config.clone()),
    ///     TageConfidenceClassifier::new(&config),
    /// ).with_warmup(1_000);
    /// let mut report = ReportObserver::default();
    /// let summary = engine.run(&trace, &mut report);
    /// assert_eq!(summary.total_branches, 5_000);
    /// assert_eq!(summary.measured_branches, 4_000);
    /// assert_eq!(report.report.total().predictions, 4_000);
    /// ```
    pub fn run<O: EngineObserver<P>>(&mut self, trace: &Trace, observer: &mut O) -> EngineSummary {
        let mut source = SliceSource::from_trace(trace);
        self.run_source(&mut source, observer)
            .expect("in-memory slice sources are infallible")
    }

    /// Drives the engine over every record of a streaming [`BranchSource`]
    /// — the out-of-core counterpart of [`SimEngine::run`], and the path
    /// `run` itself is an adapter over (a [`SliceSource`] wrapping the
    /// trace).
    ///
    /// Records are pulled in batches of [`SOURCE_BATCH_RECORDS`] into a
    /// buffer the engine allocated at construction, so the engine's resident
    /// record memory is bounded by the batch size no matter how long the
    /// stream is, and steady-state streaming performs no heap allocation.
    /// Results are bit-identical to running the materialized trace.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FormatError`] the source reports (IO failure,
    /// corrupt or truncated record). In-memory and synthetic sources never
    /// fail.
    ///
    /// # Example
    ///
    /// ```
    /// use tage::{TageConfig, TagePredictor};
    /// use tage_confidence::TageConfidenceClassifier;
    /// use tage_sim::engine::{ReportObserver, SimEngine};
    /// use tage_traces::source::SyntheticSource;
    /// use tage_traces::suites;
    ///
    /// let spec = suites::cbp1_like().trace("INT-1").unwrap().clone();
    /// // Stream 5 000 branches straight out of the generator — no Vec of
    /// // records is ever materialized.
    /// let mut source = SyntheticSource::from_spec(&spec, 5_000);
    /// let config = TageConfig::small();
    /// let mut engine = SimEngine::new(
    ///     TagePredictor::new(config.clone()),
    ///     TageConfidenceClassifier::new(&config),
    /// );
    /// let mut report = ReportObserver::default();
    /// let summary = engine.run_source(&mut source, &mut report).unwrap();
    /// assert_eq!(summary.total_branches, 5_000);
    /// // Identical to running the materialized trace:
    /// let trace = spec.generate(5_000);
    /// let mut engine2 = SimEngine::new(
    ///     TagePredictor::new(config.clone()),
    ///     TageConfidenceClassifier::new(&config),
    /// );
    /// let mut report2 = ReportObserver::default();
    /// assert_eq!(engine2.run(&trace, &mut report2), summary);
    /// assert_eq!(report.report, report2.report);
    /// ```
    pub fn run_source<Src, O>(
        &mut self,
        source: &mut Src,
        observer: &mut O,
    ) -> Result<EngineSummary, FormatError>
    where
        Src: BranchSource + ?Sized,
        O: EngineObserver<P>,
    {
        // The batch buffer and the predictor both live in `self`; take the
        // buffer out for the duration of the run (alloc-free) so the borrow
        // checker sees disjoint ownership.
        let mut batch = std::mem::take(&mut self.batch);
        let result = self.drive_source(source, observer, &mut batch);
        self.batch = batch;
        result
    }

    fn drive_source<Src, O>(
        &mut self,
        source: &mut Src,
        observer: &mut O,
        batch: &mut [BranchRecord],
    ) -> Result<EngineSummary, FormatError>
    where
        Src: BranchSource + ?Sized,
        O: EngineObserver<P>,
    {
        let mut summary = EngineSummary::default();
        loop {
            let filled = source.next_batch(batch)?;
            if filled == 0 {
                return Ok(summary);
            }
            for record in &batch[..filled] {
                if !record.kind.is_conditional() {
                    let in_measurement = self.conditional_seen >= self.warmup_branches;
                    observer.on_instructions(record.instructions(), in_measurement);
                    if in_measurement {
                        summary.measured_instructions += record.instructions();
                    }
                    continue;
                }
                let outcome =
                    self.step_branch(record.pc, record.taken, record.instructions(), observer);
                summary.total_branches += 1;
                if outcome.in_measurement {
                    summary.measured_branches += 1;
                    summary.measured_instructions += record.instructions();
                    if outcome.mispredicted {
                        summary.measured_mispredictions += 1;
                    }
                }
            }
        }
    }
}

/// The number of worker threads [`par_map`] uses by default: one per
/// available hardware thread.
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Applies `f` to every item of `items` across up to `workers` scoped
/// threads and returns the results **in input order**.
///
/// Work is handed out through a shared atomic cursor (communication-free
/// sharding: no channels, no work stealing) and every result is written to
/// its own preallocated slot, so the output is deterministic regardless of
/// scheduling — `par_map(items, n, f)` equals `items.iter().map(f)` for any
/// `n`. With `workers <= 1` the closure runs inline on the caller's thread.
///
/// # Panics
///
/// Propagates the first panic raised by `f` on a worker thread.
pub fn par_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= items.len() {
                    break;
                }
                let result = f(&items[index]);
                *slots[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::{TageConfig, TagePredictor};
    use tage_confidence::estimators::{JrsEstimator, SelfConfidenceEstimator};
    use tage_confidence::{EstimatorScheme, TageConfidenceClassifier};
    use tage_predictors::{BranchPredictor, GsharePredictor, MarginPredictor, PerceptronPredictor};
    use tage_traces::suites;

    fn small_trace(n: usize) -> tage_traces::Trace {
        suites::cbp1_like().trace("INT-1").unwrap().generate(n)
    }

    fn tage_engine() -> SimEngine<TagePredictor, TageConfidenceClassifier> {
        let config = TageConfig::small();
        SimEngine::new(
            TagePredictor::new(config.clone()),
            TageConfidenceClassifier::new(&config),
        )
    }

    #[test]
    fn engine_counts_every_branch_and_instruction() {
        let trace = small_trace(3_000);
        let mut engine = tage_engine();
        let mut report = ReportObserver::default();
        let summary = engine.run(&trace, &mut report);
        assert_eq!(summary.measured_branches, 3_000);
        assert_eq!(summary.total_branches, 3_000);
        assert_eq!(summary.measured_instructions, trace.instruction_count());
        assert_eq!(report.report.total().predictions, 3_000);
        assert_eq!(report.report.instructions(), trace.instruction_count());
        assert_eq!(
            report.report.total().mispredictions,
            summary.measured_mispredictions
        );
    }

    #[test]
    fn warmup_excludes_a_prefix_but_still_trains() {
        let trace = small_trace(3_000);
        let mut engine = tage_engine().with_warmup(1_000);
        let mut report = ReportObserver::default();
        let summary = engine.run(&trace, &mut report);
        assert_eq!(summary.measured_branches, 2_000);
        assert_eq!(summary.total_branches, 3_000);
        assert_eq!(report.report.total().predictions, 2_000);
        assert!(summary.measured_instructions < trace.instruction_count());
    }

    #[test]
    fn engine_is_deterministic() {
        let trace = small_trace(2_000);
        let run = || {
            let mut engine = tage_engine();
            let mut report = ReportObserver::default();
            engine.run(&trace, &mut report);
            report.report
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_restores_a_cold_engine() {
        let trace = small_trace(2_000);
        let mut engine = tage_engine();
        let mut first = ReportObserver::default();
        engine.run(&trace, &mut first);
        engine.reset();
        assert_eq!(engine.branches_executed(), 0);
        let mut second = ReportObserver::default();
        engine.run(&trace, &mut second);
        assert_eq!(first.report, second.report, "reset must erase all state");
    }

    #[test]
    fn any_predictor_estimator_cross_product_runs() {
        // The point of the refactor: arbitrary BranchPredictor × estimator
        // pairs flow through the same engine, including via trait objects.
        let trace = small_trace(2_000);

        let mut gshare = GsharePredictor::new(12, 12);
        let dyn_predictor: &mut dyn BranchPredictor = &mut gshare;
        let mut engine = SimEngine::new(
            MarginPredictor(dyn_predictor),
            EstimatorScheme(JrsEstimator::classic(10)),
        );
        let mut report = ReportObserver::default();
        engine.run(&trace, &mut report);
        assert_eq!(report.report.total().predictions, 2_000);
        // Baseline verdicts are level-only: class queries stay empty while
        // level accounting is complete.
        let by_level: u64 = tage_confidence::ConfidenceLevel::ALL
            .iter()
            .map(|&l| report.report.level(l).predictions)
            .sum();
        assert_eq!(by_level, 2_000);

        let mut engine = SimEngine::new(
            MarginPredictor(PerceptronPredictor::new(128, 16)),
            EstimatorScheme(SelfConfidenceEstimator::new(30)),
        );
        let mut report = ReportObserver::default();
        engine.run(&trace, &mut report);
        assert_eq!(report.report.total().predictions, 2_000);
    }

    /// Regression pin for the `BranchEvent::instructions` contract: the
    /// event carries the record's own count only, non-conditional records
    /// arrive via `on_instructions`, and summing both streams counts every
    /// trace instruction exactly once (no double-count).
    #[test]
    fn instruction_accounting_sums_each_record_exactly_once() {
        let trace = small_trace(4_000);
        assert!(
            trace.iter().any(|r| !r.kind.is_conditional()),
            "the pin needs a trace with non-branch records"
        );
        let branch_own: u64 = trace
            .iter()
            .filter(|r| r.kind.is_conditional())
            .map(|r| r.instructions())
            .sum();
        let non_branch: u64 = trace
            .iter()
            .filter(|r| !r.kind.is_conditional())
            .map(|r| r.instructions())
            .sum();
        assert_eq!(branch_own + non_branch, trace.instruction_count());

        /// Splits the two delivery paths so the test can see each stream.
        #[derive(Default)]
        struct SplitCounter {
            via_events: u64,
            via_notifications: u64,
        }
        impl<P: PredictorCore> EngineObserver<P> for SplitCounter {
            fn on_branch(&mut self, _p: &mut P, event: &BranchEvent<'_, P::Lookup>) {
                self.via_events += event.instructions;
            }
            fn on_instructions(&mut self, instructions: u64, _in_measurement: bool) {
                self.via_notifications += instructions;
            }
        }

        let mut engine = tage_engine();
        let mut report = ReportObserver::default();
        let mut split = SplitCounter::default();
        let summary = engine.run(&trace, &mut (&mut report, &mut split));
        assert_eq!(
            split.via_events, branch_own,
            "events carry record-own counts"
        );
        assert_eq!(
            split.via_notifications, non_branch,
            "notifications carry exactly the non-branch records"
        );
        // The ReportObserver (which sums both streams) and the engine
        // summary both land on the trace total exactly once.
        assert_eq!(report.report.instructions(), trace.instruction_count());
        assert_eq!(summary.measured_instructions, trace.instruction_count());
    }

    #[test]
    fn observers_compose_and_see_the_predictor() {
        struct CountHigh(u64);
        impl<P: PredictorCore> EngineObserver<P> for CountHigh {
            fn on_branch(&mut self, _p: &mut P, event: &BranchEvent<'_, P::Lookup>) {
                self.0 += u64::from(event.assessment.is_high());
            }
        }
        let trace = small_trace(2_000);
        let mut engine = tage_engine();
        let mut report = ReportObserver::default();
        let mut high = CountHigh(0);
        engine.run(&trace, &mut (&mut report, &mut high, ()));
        let high_level = report
            .report
            .level(tage_confidence::ConfidenceLevel::High)
            .predictions;
        assert_eq!(high.0, high_level);
    }

    #[test]
    fn observer_tuples_compose_flat_up_to_arity_six() {
        #[derive(Default)]
        struct Count {
            branches: u64,
            instructions: u64,
        }
        impl<P: PredictorCore> EngineObserver<P> for Count {
            fn on_branch(&mut self, _p: &mut P, event: &BranchEvent<'_, P::Lookup>) {
                self.branches += 1;
                self.instructions += event.instructions;
            }
            fn on_instructions(&mut self, instructions: u64, _in_measurement: bool) {
                self.instructions += instructions;
            }
        }
        let trace = small_trace(600);
        let mut engine = tage_engine();
        let mut six = (
            Count::default(),
            Count::default(),
            Count::default(),
            Count::default(),
            Count::default(),
            Count::default(),
        );
        engine.run(&trace, &mut six);
        for count in [&six.0, &six.1, &six.2, &six.3, &six.4, &six.5] {
            assert_eq!(count.branches, 600);
            assert_eq!(count.instructions, trace.instruction_count());
        }

        let mut engine = tage_engine();
        let mut four = (
            Count::default(),
            ReportObserver::default(),
            Count::default(),
            (),
        );
        engine.run(&trace, &mut four);
        assert_eq!(four.0.branches, 600);
        assert_eq!(four.2.branches, 600);
        assert_eq!(four.1.report.total().predictions, 600);
    }

    #[test]
    fn step_branch_matches_run() {
        let trace = small_trace(1_500);
        let mut stepped = tage_engine();
        let mut whole = tage_engine();
        let mut step_report = ReportObserver::default();
        let mut run_report = ReportObserver::default();
        whole.run(&trace, &mut run_report);
        for record in trace.iter() {
            if record.kind.is_conditional() {
                stepped.step_branch(
                    record.pc,
                    record.taken,
                    record.instructions(),
                    &mut step_report,
                );
            } else {
                EngineObserver::<TagePredictor>::on_instructions(
                    &mut step_report,
                    record.instructions(),
                    true,
                );
            }
        }
        assert_eq!(step_report.report, run_report.report);
    }

    #[test]
    fn run_source_matches_run_for_every_source_kind() {
        use tage_traces::source::{SliceSource, SyntheticSource};
        let spec = suites::cbp1_like().trace("SERV-2").unwrap().clone();
        let trace = spec.generate(4_000);

        let mut reference = tage_engine().with_warmup(500);
        let mut reference_report = ReportObserver::default();
        let reference_summary = reference.run(&trace, &mut reference_report);

        let mut slice = tage_engine().with_warmup(500);
        let mut slice_report = ReportObserver::default();
        let slice_summary = slice
            .run_source(&mut SliceSource::from_trace(&trace), &mut slice_report)
            .unwrap();
        assert_eq!(slice_summary, reference_summary);
        assert_eq!(slice_report.report, reference_report.report);

        let mut synthetic = tage_engine().with_warmup(500);
        let mut synthetic_report = ReportObserver::default();
        let synthetic_summary = synthetic
            .run_source(
                &mut SyntheticSource::from_spec(&spec, 4_000),
                &mut synthetic_report,
            )
            .unwrap();
        assert_eq!(synthetic_summary, reference_summary);
        assert_eq!(synthetic_report.report, reference_report.report);
    }

    #[test]
    fn par_map_is_order_preserving_and_worker_count_independent() {
        let items: Vec<u64> = (0..37).collect();
        let serial = par_map(&items, 1, |&x| x * x);
        for workers in [2, 3, 8, 64] {
            assert_eq!(par_map(&items, workers, |&x| x * x), serial);
        }
        assert_eq!(serial[36], 36 * 36);
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, 4, |&x: &u64| x).is_empty());
    }

    #[test]
    fn default_parallelism_is_positive() {
        assert!(default_parallelism() >= 1);
    }
}
