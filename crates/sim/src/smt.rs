//! A two-thread SMT fetch-policy model driven by branch confidence.
//!
//! Controlling SMT resource allocation through the fetch policy is one of
//! the confidence applications the paper cites (Luo et al.). The model here
//! interleaves two traces as two hardware threads sharing one fetch port:
//! every cycle the port is granted to one thread. The confidence-driven
//! policy deprioritises the thread with more unresolved low-confidence
//! branches in flight, so a thread that is likely on the wrong path does not
//! hog the shared front-end; the baseline policy is round-robin (ICOUNT-like
//! fairness without confidence information).
//!
//! Each hardware thread owns a [`SimEngine`] and fetches through
//! [`SimEngine::step_branch`], so the per-branch predict → classify → train
//! sequence is byte-for-byte the one every other experiment runs; only the
//! cycle-level arbitration lives here.

use core::fmt;

use tage::{TageConfig, TagePredictor};
use tage_confidence::{ConfidenceLevel, TageConfidenceClassifier};
use tage_traces::format::FormatError;
use tage_traces::source::{BranchSource, SliceSource};
use tage_traces::{BranchRecord, Trace};

use crate::engine::SimEngine;

/// Fetch arbitration policies for the two-thread model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmtFetchPolicy {
    /// Alternate between the threads irrespective of confidence.
    RoundRobin,
    /// Grant fetch to the thread with fewer unresolved low- or
    /// medium-confidence branches (ties broken round-robin).
    ConfidenceCount,
}

impl fmt::Display for SmtFetchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmtFetchPolicy::RoundRobin => write!(f, "round-robin"),
            SmtFetchPolicy::ConfidenceCount => write!(f, "confidence-count"),
        }
    }
}

/// Per-thread outcome of the SMT model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SmtThreadResult {
    /// Branches fetched (and predicted) for this thread.
    pub branches: u64,
    /// Mispredictions for this thread.
    pub mispredictions: u64,
    /// Wrong-path fetch slots charged to this thread: branches fetched while
    /// the thread had an unresolved misprediction outstanding.
    pub wrong_path_slots: u64,
}

/// Outcome of the two-thread SMT fetch simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SmtRunResult {
    /// Policy simulated.
    pub policy: SmtFetchPolicy,
    /// Per-thread results.
    pub threads: [SmtThreadResult; 2],
    /// Total fetch cycles simulated.
    pub cycles: u64,
}

impl SmtRunResult {
    /// Total wrong-path fetch slots over both threads — the quantity a
    /// confidence-aware policy is meant to reduce.
    pub fn total_wrong_path_slots(&self) -> u64 {
        self.threads.iter().map(|t| t.wrong_path_slots).sum()
    }

    /// Total branches fetched over both threads.
    pub fn total_branches(&self) -> u64 {
        self.threads.iter().map(|t| t.branches).sum()
    }
}

impl fmt::Display for SmtRunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} branches, {} wrong-path slots",
            self.policy,
            self.total_branches(),
            self.total_wrong_path_slots()
        )
    }
}

/// Number of fetch cycles a branch stays "in flight" before it resolves in
/// the model.
const RESOLVE_DELAY: u64 = 8;

/// Records a hardware thread's stream cursor holds in memory at a time.
const THREAD_BATCH_RECORDS: usize = 1024;

struct ThreadState<S: BranchSource> {
    source: S,
    batch: Vec<BranchRecord>,
    filled: usize,
    cursor: usize,
    /// The next conditional branch to fetch, if any.
    staged: Option<BranchRecord>,
    stream_done: bool,
    engine: SimEngine<TagePredictor, TageConfidenceClassifier>,
    /// (resolve_cycle, was_not_high_confidence, was_mispredicted)
    in_flight: Vec<(u64, bool, bool)>,
    result: SmtThreadResult,
}

impl<S: BranchSource> ThreadState<S> {
    fn new(config: &TageConfig, source: S) -> Self {
        ThreadState {
            source,
            batch: vec![BranchRecord::default(); THREAD_BATCH_RECORDS],
            filled: 0,
            cursor: 0,
            staged: None,
            stream_done: false,
            engine: SimEngine::new(
                TagePredictor::new(config.clone()),
                TageConfidenceClassifier::new(config),
            ),
            in_flight: Vec::new(),
            result: SmtThreadResult::default(),
        }
    }

    /// Pulls records (skipping non-conditional ones — only conditional
    /// branches occupy fetch slots in this model) until a conditional branch
    /// is staged or the stream ends.
    fn stage(&mut self) -> Result<(), FormatError> {
        while self.staged.is_none() && !self.stream_done {
            if self.cursor == self.filled {
                self.filled = self.source.next_batch(&mut self.batch)?;
                self.cursor = 0;
                if self.filled == 0 {
                    self.stream_done = true;
                    break;
                }
            }
            let record = self.batch[self.cursor];
            self.cursor += 1;
            if record.kind.is_conditional() {
                self.staged = Some(record);
            }
        }
        Ok(())
    }

    fn exhausted(&self) -> bool {
        self.staged.is_none() && self.stream_done
    }

    fn unresolved_low_confidence(&self) -> usize {
        self.in_flight.iter().filter(|(_, risky, _)| *risky).count()
    }

    fn has_unresolved_misprediction(&self) -> bool {
        self.in_flight.iter().any(|(_, _, miss)| *miss)
    }

    fn resolve(&mut self, cycle: u64) {
        self.in_flight
            .retain(|(resolve_at, _, _)| *resolve_at > cycle);
    }

    fn fetch_one(&mut self, cycle: u64) {
        let Some(record) = self.staged.take() else {
            return;
        };
        // Fetching while an older branch of this thread is actually
        // mispredicted means these slots are wrong-path work.
        if self.has_unresolved_misprediction() {
            self.result.wrong_path_slots += 1;
        }
        let step = self
            .engine
            .step_branch(record.pc, record.taken, record.instructions(), &mut ());
        self.result.branches += 1;
        if step.mispredicted {
            self.result.mispredictions += 1;
        }
        self.in_flight.push((
            cycle + RESOLVE_DELAY,
            step.assessment.level != ConfidenceLevel::High,
            step.mispredicted,
        ));
    }
}

/// Runs the two-thread SMT fetch model: one conditional branch is fetched
/// per cycle, granted to one of the two threads according to `policy`.
///
/// As is customary for multiprogrammed studies, the simulation stops as soon
/// as either thread runs out of trace, so both threads are always present
/// and the policies are compared over the same co-run region.
pub fn simulate_smt(
    config: &TageConfig,
    thread0: &Trace,
    thread1: &Trace,
    policy: SmtFetchPolicy,
) -> SmtRunResult {
    simulate_smt_sources(
        config,
        [
            SliceSource::from_trace(thread0),
            SliceSource::from_trace(thread1),
        ],
        policy,
    )
    .expect("in-memory slice sources are infallible")
}

/// [`simulate_smt`] over two streaming [`BranchSource`]s: each hardware
/// thread pulls its records through a bounded cursor, so multi-gigabyte
/// co-run traces never materialize.
///
/// # Errors
///
/// Propagates the first [`FormatError`] either source reports.
pub fn simulate_smt_sources<S: BranchSource>(
    config: &TageConfig,
    sources: [S; 2],
    policy: SmtFetchPolicy,
) -> Result<SmtRunResult, FormatError> {
    let [source0, source1] = sources;
    let mut threads = [
        ThreadState::new(config, source0),
        ThreadState::new(config, source1),
    ];
    for t in threads.iter_mut() {
        t.stage()?;
    }
    let mut cycle = 0u64;
    let mut last = 1usize;
    while threads.iter().all(|t| !t.exhausted()) {
        cycle += 1;
        for t in threads.iter_mut() {
            t.resolve(cycle);
        }
        let pick = match policy {
            SmtFetchPolicy::RoundRobin => 1 - last,
            SmtFetchPolicy::ConfidenceCount => {
                let low0 = threads[0].unresolved_low_confidence();
                let low1 = threads[1].unresolved_low_confidence();
                match low0.cmp(&low1) {
                    std::cmp::Ordering::Less => 0,
                    std::cmp::Ordering::Greater => 1,
                    std::cmp::Ordering::Equal => 1 - last,
                }
            }
        };
        threads[pick].fetch_one(cycle);
        threads[pick].stage()?;
        last = pick;
    }
    Ok(SmtRunResult {
        policy,
        threads: [threads[0].result, threads[1].result],
        cycles: cycle,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::CounterAutomaton;
    use tage_traces::suites;

    fn config() -> TageConfig {
        TageConfig::small().with_automaton(CounterAutomaton::paper_default())
    }

    #[test]
    fn both_policies_fetch_from_both_threads_until_one_finishes() {
        let suite = suites::cbp1_like();
        let a = suite.trace("FP-1").unwrap().generate(4_000);
        let b = suite.trace("MM-5").unwrap().generate(4_000);
        for policy in [SmtFetchPolicy::RoundRobin, SmtFetchPolicy::ConfidenceCount] {
            let result = simulate_smt(&config(), &a, &b, policy);
            // One fetch per cycle, and the run stops once either thread is
            // out of trace.
            assert_eq!(result.total_branches(), result.cycles, "{policy}");
            assert!(result.threads.iter().all(|t| t.branches > 0), "{policy}");
            assert!(
                result.threads.iter().any(|t| t.branches == 4_000),
                "{policy}"
            );
            assert!(result.total_branches() <= 8_000);
        }
    }

    #[test]
    fn confidence_policy_reduces_wrong_path_slots() {
        // Pair a very predictable thread with a poorly predictable one: the
        // confidence-aware policy should steer fetch away from the
        // mispredicting thread and reduce total wrong-path work.
        let suite = suites::cbp1_like();
        let a = suite.trace("FP-1").unwrap().generate(12_000);
        let b = suite.trace("MM-5").unwrap().generate(12_000);
        let rr = simulate_smt(&config(), &a, &b, SmtFetchPolicy::RoundRobin);
        let cc = simulate_smt(&config(), &a, &b, SmtFetchPolicy::ConfidenceCount);
        assert!(
            cc.total_wrong_path_slots() <= rr.total_wrong_path_slots(),
            "confidence {} vs round-robin {}",
            cc.total_wrong_path_slots(),
            rr.total_wrong_path_slots()
        );
    }

    #[test]
    fn source_driven_smt_matches_the_materialized_path() {
        use tage_traces::source::SyntheticSource;
        let suite = suites::cbp1_like();
        let spec_a = suite.trace("FP-1").unwrap().clone();
        let spec_b = suite.trace("MM-5").unwrap().clone();
        let a = spec_a.generate(6_000);
        let b = spec_b.generate(6_000);
        for policy in [SmtFetchPolicy::RoundRobin, SmtFetchPolicy::ConfidenceCount] {
            let reference = simulate_smt(&config(), &a, &b, policy);
            let streamed = simulate_smt_sources(
                &config(),
                [
                    SyntheticSource::from_spec(&spec_a, 6_000),
                    SyntheticSource::from_spec(&spec_b, 6_000),
                ],
                policy,
            )
            .unwrap();
            assert_eq!(streamed, reference, "{policy}");
        }
    }

    #[test]
    fn display_mentions_policy() {
        let suite = suites::cbp1_like();
        let a = suite.trace("FP-1").unwrap().generate(500);
        let b = suite.trace("FP-2").unwrap().generate(500);
        let result = simulate_smt(&config(), &a, &b, SmtFetchPolicy::RoundRobin);
        assert!(format!("{result}").contains("round-robin"));
    }
}
