//! The 7 prediction classes of the paper's Section 5, measured on one trace
//! for the standard and the modified counter automaton side by side.
//!
//! Run with: `cargo run --release --example confidence_classes [trace-name]`

use tage_confidence_suite::confidence::PredictionClass;
use tage_confidence_suite::sim::runner::{run_trace, RunOptions};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig};
use tage_confidence_suite::traces::suites;

fn main() {
    let trace_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "MM-3".to_string());
    let cbp1 = suites::cbp1_like();
    let cbp2 = suites::cbp2_like();
    let spec = cbp1
        .trace(&trace_name)
        .or_else(|| cbp2.trace(&trace_name))
        .unwrap_or_else(|| {
            eprintln!("unknown trace {trace_name}, falling back to MM-3");
            cbp1.trace("MM-3")
                .expect("MM-3 exists in the CBP-1-like suite")
        });
    let trace = spec.generate(300_000);

    println!("trace: {trace}");
    println!();
    for automaton in [
        CounterAutomaton::Standard,
        CounterAutomaton::paper_default(),
    ] {
        let config = TageConfig::medium().with_automaton(automaton);
        let result = run_trace(&config, &trace, &RunOptions::default());
        println!("--- {} automaton ({automaton}) ---", config.name());
        println!(
            "overall: {:.2} MPKI, {:.1} MKP",
            result.mpki(),
            result.mkp()
        );
        println!(
            "{:<16} {:>8} {:>8} {:>12}",
            "class", "Pcov", "MPcov", "MPrate (MKP)"
        );
        for class in PredictionClass::ALL {
            println!(
                "{:<16} {:>8.3} {:>8.3} {:>12.1}",
                class.label(),
                result.report.pcov(class),
                result.report.mpcov(class),
                result.report.mprate_mkp(class)
            );
        }
        println!();
    }
    println!("With the modified automaton the saturated-counter class (Stag) becomes a genuine high-confidence class.");
}
