#!/usr/bin/env bash
# Full verification: formatting, lints, build, tests and a throughput smoke.
# This is what CI runs; keep it green before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc --no-deps (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== throughput smoke (+ regression gate) =="
# --baseline seeds from the tracked milestone file while --out keeps routine
# runs on an untracked path (see docs/BENCHMARKS.md), so verification never
# dirties the working tree; --check-regression fails the run if the
# same-host SoA/reference speedup ratio drops below 0.5x the latest
# committed milestone's ratio (host-speed-immune, see docs/BENCHMARKS.md).
cargo run --release --bin throughput -- 50000 \
  --baseline BENCH_throughput.json --out target/BENCH_throughput.json \
  --check-regression

echo "== campaign smoke (tage-bench) =="
# Tiny default grid (2 predictors x 2 schemes x 1 suite); the --check pass
# validates the report's schema (see docs/CAMPAIGNS.md).
cargo run --release --bin tage-bench -- --branches 10000 --label verify \
  --out target/campaign-smoke.json
cargo run --release --bin tage-bench -- --check target/campaign-smoke.json

echo "== engine parity smoke (multilane vs scalar) =="
# One storage-free grid cell through each engine; the timing-free schema-4
# reports must byte-match — the multilane engine's bit-parity contract,
# observed end to end at the report level (docs/BENCHMARKS.md).
cargo run --release --bin tage-bench -- \
  --predictors tage-16k --schemes storage-free --suites cbp1-mini \
  --branches 10000 --label verify-engine --engine multilane --no-timing \
  --out target/campaign-multilane.json
cargo run --release --bin tage-bench -- \
  --predictors tage-16k --schemes storage-free --suites cbp1-mini \
  --branches 10000 --label verify-engine --engine scalar --no-timing \
  --out target/campaign-scalar.json
cmp target/campaign-multilane.json target/campaign-scalar.json

echo "== scenario smoke (tage-bench --scenario) =="
# One cell per scenario kind (recovery-energy, shared-predictor,
# prefetch-throttle) and the schema-4 validation of the scenario_metrics
# the report must carry (docs/SCENARIOS.md).
cargo run --release --bin tage-bench -- \
  --predictors tage-16k --schemes storage-free --suites cbp1-mini \
  --scenario recovery-energy,shared-predictor,prefetch-throttle \
  --branches 10000 --label verify-scenarios \
  --out target/campaign-scenarios.json
cargo run --release --bin tage-bench -- --check target/campaign-scenarios.json

echo "== streaming smoke (BranchSource) =="
# Out-of-core pipeline: generator -> disk -> chunked BinaryFileSource ->
# engine, asserting bit-parity with the materialized run
# (docs/STREAMING.md).
cargo run --release --example streaming_ingestion
# File-backed campaign: export the mini suite as binary traces, run a 2x2
# grid over them through BinaryFileSource, validate the report schema.
rm -rf target/verify-traces
cargo run --release --bin tage-bench -- --export-traces target/verify-traces \
  --suites cbp1-mini --branches 10000
cargo run --release --bin tage-bench -- --trace-dir target/verify-traces \
  --predictors tage-16k,gshare --schemes storage-free,jrs-classic \
  --label verify-file --out target/campaign-file-smoke.json
cargo run --release --bin tage-bench -- --check target/campaign-file-smoke.json

echo "== snapshot round-trip (parity + corruption + fuzz suite) =="
# Versioned predictor-state snapshots: split-point parity for every
# predictor spec, precise corruption errors, multilane restores and the
# op-interleaving fuzz (docs/SNAPSHOTS.md).
cargo test --release -q --test snapshot_parity

echo "== checkpointed campaign smoke (kill + resume) =="
# Kill a grid after one executed cell (--max-cells), resume it from the
# checkpoint, and require the resumed timing-free report to byte-match a
# clean uninterrupted run's (docs/CAMPAIGNS.md).
rm -rf target/verify-ckpt
rm -f target/campaign-resumed.json target/campaign-clean.json
cargo run --release --bin tage-bench -- \
  --predictors tage-16k,gshare --schemes storage-free,jrs-classic \
  --branches 10000 --label verify-ckpt --no-timing \
  --checkpoint target/verify-ckpt --max-cells 1 \
  --out target/campaign-resumed.json
test ! -f target/campaign-resumed.json
cargo run --release --bin tage-bench -- \
  --predictors tage-16k,gshare --schemes storage-free,jrs-classic \
  --branches 10000 --label verify-ckpt --no-timing \
  --resume target/verify-ckpt --out target/campaign-resumed.json
cargo run --release --bin tage-bench -- \
  --predictors tage-16k,gshare --schemes storage-free,jrs-classic \
  --branches 10000 --label verify-ckpt --no-timing \
  --out target/campaign-clean.json
cmp target/campaign-resumed.json target/campaign-clean.json

echo "== explore smoke (tage-bench --explore, kill + resume) =="
# Design-space search under a 32 Kbit budget (<=8 geometries): validate the
# schema-4 report with its explore/Pareto section, then kill the same grid
# after one cell, resume it, and require the explore report to byte-match
# the uninterrupted run's (docs/GEOMETRY.md, docs/CAMPAIGNS.md).
rm -rf target/verify-explore-ckpt
rm -f target/explore-clean.json target/explore-resumed.json
cargo run --release --bin tage-bench -- \
  --explore --budget-bits 32768 --max-geometries 8 \
  --branches 10000 --label verify-explore --no-timing \
  --out target/explore-clean.json
cargo run --release --bin tage-bench -- --check target/explore-clean.json
grep -q '"explore":' target/explore-clean.json
cargo run --release --bin tage-bench -- \
  --explore --budget-bits 32768 --max-geometries 8 \
  --branches 10000 --label verify-explore --no-timing \
  --checkpoint target/verify-explore-ckpt --max-cells 1 \
  --out target/explore-resumed.json
test ! -f target/explore-resumed.json
cargo run --release --bin tage-bench -- \
  --explore --budget-bits 32768 --max-geometries 8 \
  --branches 10000 --label verify-explore --no-timing \
  --resume target/verify-explore-ckpt \
  --out target/explore-resumed.json
cmp target/explore-clean.json target/explore-resumed.json

echo "== sampling smoke (gzip export + phase-sampled campaign) =="
# Real-trace + phase-sampling pipeline end to end (docs/TRACES.md): export
# a 200k-branch suite as gzip-framed traces (read back through the
# std-only inflate), run the full-trace cell and the sampled cell
# (interval 250, k 8) over them, and require (a) the weighted
# reconstruction to land within 5% of the exact mean MPKI at >= 5x fewer
# measured branches, (b) byte-identical sampled reports across 1 vs 4
# workers and across a kill/--resume split.
rm -rf target/verify-sampling
cargo run --release --bin tage-bench -- --export-traces target/verify-sampling/traces \
  --gzip --suites cbp1-mini --branches 200000
cargo run --release --bin tage-bench -- --trace-dir target/verify-sampling/traces \
  --predictors tage-16k --schemes storage-free --branches 200000 \
  --label verify-sampling --no-timing \
  --out target/verify-sampling/full.json
cargo run --release --bin tage-bench -- --trace-dir target/verify-sampling/traces \
  --predictors tage-16k --schemes storage-free --branches 200000 \
  --sample-interval 250 --sample-k 8 --workers 1 \
  --label verify-sampling --no-timing \
  --out target/verify-sampling/sampled-w1.json
cargo run --release --bin tage-bench -- --check target/verify-sampling/sampled-w1.json
grep -q '"sampling":' target/verify-sampling/sampled-w1.json
full_mpki=$(grep -o '"mean_mpki": [0-9.]*' target/verify-sampling/full.json | head -1 | grep -o '[0-9.]*$')
sampled_mpki=$(grep -o '"mean_mpki": [0-9.]*' target/verify-sampling/sampled-w1.json | head -1 | grep -o '[0-9.]*$')
awk -v f="$full_mpki" -v s="$sampled_mpki" 'BEGIN {
  d = (s - f) / f; if (d < 0) d = -d;
  printf "reconstruction error: %.2f%% (full %s, sampled %s)\n", d * 100, f, s;
  exit (d < 0.05) ? 0 : 1
}'
measured=$(grep -o '"measured_branches": [0-9]*' target/verify-sampling/sampled-w1.json | grep -o '[0-9]*$')
total=$(grep -o '"total_records": [0-9]*' target/verify-sampling/sampled-w1.json | grep -o '[0-9]*$')
awk -v m="$measured" -v t="$total" 'BEGIN {
  printf "measured %s of %s records (%.1fx reduction)\n", m, t, t / m;
  exit (m * 5 <= t) ? 0 : 1
}'
cargo run --release --bin tage-bench -- --trace-dir target/verify-sampling/traces \
  --predictors tage-16k --schemes storage-free --branches 200000 \
  --sample-interval 250 --sample-k 8 --workers 4 --engine scalar \
  --label verify-sampling --no-timing \
  --out target/verify-sampling/sampled-w4.json
cmp target/verify-sampling/sampled-w1.json target/verify-sampling/sampled-w4.json
cargo run --release --bin tage-bench -- --trace-dir target/verify-sampling/traces \
  --predictors tage-16k,tage-64k --schemes storage-free --branches 200000 \
  --sample-interval 250 --sample-k 8 \
  --label verify-sampling-ckpt --no-timing \
  --checkpoint target/verify-sampling/ckpt --max-cells 1 \
  --out target/verify-sampling/sampled-resumed.json
test ! -f target/verify-sampling/sampled-resumed.json
cargo run --release --bin tage-bench -- --trace-dir target/verify-sampling/traces \
  --predictors tage-16k,tage-64k --schemes storage-free --branches 200000 \
  --sample-interval 250 --sample-k 8 \
  --label verify-sampling-ckpt --no-timing \
  --resume target/verify-sampling/ckpt \
  --out target/verify-sampling/sampled-resumed.json
cargo run --release --bin tage-bench -- --trace-dir target/verify-sampling/traces \
  --predictors tage-16k,tage-64k --schemes storage-free --branches 200000 \
  --sample-interval 250 --sample-k 8 \
  --label verify-sampling-ckpt --no-timing \
  --out target/verify-sampling/sampled-clean.json
cmp target/verify-sampling/sampled-resumed.json target/verify-sampling/sampled-clean.json

echo "== service smoke (tage-serve daemon: cache + kill/restart) =="
# The campaign daemon end to end (docs/SERVICE.md): submit a file-backed
# grid over exported binary traces, require the served report to byte-match
# a one-shot run, require a relabelled resubmission to be answered entirely
# from the cell cache (zero recompute), then SIGTERM the daemon mid-second-
# grid (graceful shutdown must exit 0), restart it over the same store +
# journal, and require the rehydrated campaign's report to byte-match a
# clean run too.
SERVE_URL=http://127.0.0.1:17421
rm -rf target/verify-serve
mkdir -p target/verify-serve
cargo build --release --bin tage-serve --bin tage-bench
cargo run --release --bin tage-bench -- --export-traces target/verify-serve/traces \
  --suites cbp1-mini --branches 10000
./target/release/tage-serve --addr 127.0.0.1:17421 \
  --store target/verify-serve/cells --journal target/verify-serve/journal \
  >target/verify-serve/serve1.log 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -sf "$SERVE_URL/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
./target/release/tage-bench --submit "$SERVE_URL" \
  --trace-dir target/verify-serve/traces \
  --predictors tage-16k,gshare --schemes storage-free,jrs-classic \
  --branches 10000 --label verify-serve \
  --out target/verify-serve/report-served.json
./target/release/tage-bench --trace-dir target/verify-serve/traces \
  --predictors tage-16k,gshare --schemes storage-free,jrs-classic \
  --branches 10000 --label verify-serve --no-timing \
  --out target/verify-serve/report-clean.json
cmp target/verify-serve/report-served.json target/verify-serve/report-clean.json
computed=$(curl -sf "$SERVE_URL/metrics" | grep -o '"cells_computed": [0-9]*' | grep -o '[0-9]*$')
./target/release/tage-bench --submit "$SERVE_URL" \
  --trace-dir target/verify-serve/traces \
  --predictors tage-16k,gshare --schemes storage-free,jrs-classic \
  --branches 10000 --label verify-serve-relabelled \
  --out target/verify-serve/report-relabelled.json
recomputed=$(curl -sf "$SERVE_URL/metrics" | grep -o '"cells_computed": [0-9]*' | grep -o '[0-9]*$')
# The relabelled grid must be answered entirely from the cell cache.
test "$computed" = "$recomputed"
./target/release/tage-bench --submit "$SERVE_URL" --no-wait \
  --predictors tage-16k --schemes storage-free --suites cbp1-mini \
  --scenario baseline,recovery-energy,shared-predictor,prefetch-throttle \
  --branches 10000 --label verify-serve-2
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
./target/release/tage-serve --addr 127.0.0.1:17421 \
  --store target/verify-serve/cells --journal target/verify-serve/journal \
  >target/verify-serve/serve2.log 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  curl -sf "$SERVE_URL/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
./target/release/tage-bench --submit "$SERVE_URL" \
  --predictors tage-16k --schemes storage-free --suites cbp1-mini \
  --scenario baseline,recovery-energy,shared-predictor,prefetch-throttle \
  --branches 10000 --label verify-serve-2 \
  --out target/verify-serve/report-resumed.json
./target/release/tage-bench \
  --predictors tage-16k --schemes storage-free --suites cbp1-mini \
  --scenario baseline,recovery-energy,shared-predictor,prefetch-throttle \
  --branches 10000 --label verify-serve-2 --no-timing \
  --out target/verify-serve/report-resumed-clean.json
cmp target/verify-serve/report-resumed.json target/verify-serve/report-resumed-clean.json
curl -sf -X POST "$SERVE_URL/shutdown" >/dev/null
wait "$SERVE_PID"
trap - EXIT

echo "verify: OK"
