//! A std-only DEFLATE (RFC 1951) decompressor and gzip (RFC 1952) framing,
//! plus a matching stored-block gzip compressor for trace export.
//!
//! The workspace carries no external dependencies, so compressed trace
//! files are handled by this from-scratch implementation. It mirrors the
//! error discipline of the binary trace reader: every failure is a
//! [`FormatError::CorruptFrame`] carrying the byte offset in the
//! *compressed* stream at which the corruption was detected, and garbage
//! input never panics (see the fuzz test below).
//!
//! The compressor emits only *stored* (uncompressed) DEFLATE blocks — a
//! valid, universally readable gzip stream without implementing Huffman
//! encoding. `gzip -d`, zlib and this module's own [`gunzip`] all accept
//! it; the decompressor conversely accepts streams from any conforming
//! compressor (fixed and dynamic Huffman blocks included).

use crate::format::FormatError;

/// Maximum bits of a DEFLATE Huffman code.
const MAX_BITS: usize = 15;
/// Number of literal/length symbols (0..=287, 286/287 never occur in data).
const MAX_LIT_SYMBOLS: usize = 288;
/// Number of distance symbols.
const MAX_DIST_SYMBOLS: usize = 30;

/// Base match lengths for length symbols 257..=285.
const LENGTH_BASE: [u16; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
/// Extra bits for length symbols 257..=285.
const LENGTH_EXTRA: [u8; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
/// Base match distances for distance symbols 0..=29.
const DIST_BASE: [u16; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
/// Extra bits for distance symbols 0..=29.
const DIST_EXTRA: [u8; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];
/// The order in which code-length code lengths are stored (RFC 1951 §3.2.7).
const CLEN_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// The standard CRC-32 (IEEE 802.3) table, computed at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
};

/// The CRC-32 checksum gzip trailers carry (IEEE polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in bytes {
        c = CRC_TABLE[((c ^ byte as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// LSB-first bit reader over a byte slice, tracking the byte offset for
/// error reporting.
struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next unread byte.
    pos: usize,
    /// Bits already consumed from `data[pos - 1]`; bits are held in `bag`.
    bag: u32,
    bag_bits: u32,
    /// Offset of `data[0]` in the enclosing stream, for error messages.
    base_offset: u64,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8], base_offset: u64) -> Self {
        BitReader {
            data,
            pos: 0,
            bag: 0,
            bag_bits: 0,
            base_offset,
        }
    }

    /// Byte offset (in the enclosing stream) reported by errors raised here.
    fn offset(&self) -> u64 {
        self.base_offset + self.pos as u64
    }

    fn corrupt(&self, reason: &str) -> FormatError {
        FormatError::CorruptFrame {
            offset: self.offset(),
            reason: reason.to_string(),
        }
    }

    /// Reads `count` bits (0..=16), LSB first.
    fn bits(&mut self, count: u32) -> Result<u32, FormatError> {
        while self.bag_bits < count {
            let Some(&byte) = self.data.get(self.pos) else {
                return Err(self.corrupt("unexpected end of compressed data"));
            };
            self.bag |= (byte as u32) << self.bag_bits;
            self.bag_bits += 8;
            self.pos += 1;
        }
        let value = self.bag & ((1u32 << count) - 1);
        self.bag >>= count;
        self.bag_bits -= count;
        Ok(value)
    }

    /// Discards partial bits and returns to a byte boundary.
    fn align(&mut self) {
        self.bag = 0;
        self.bag_bits = 0;
    }

    /// Reads `count` whole bytes after aligning (used by stored blocks).
    fn bytes(&mut self, count: usize) -> Result<&'a [u8], FormatError> {
        self.align();
        let end = self
            .pos
            .checked_add(count)
            .filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(self.corrupt("stored block overruns the compressed data"));
        };
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// A canonical Huffman decoding table: symbol counts per code length plus
/// the symbols sorted by (length, symbol) — the classic compact
/// representation that decodes one bit at a time.
struct Huffman {
    counts: [u16; MAX_BITS + 1],
    symbols: Vec<u16>,
}

impl Huffman {
    /// Builds the table from per-symbol code lengths. Over-subscribed
    /// length sets are rejected; incomplete sets are allowed (they error at
    /// decode time if an unassigned code appears), matching zlib.
    fn from_lengths(lengths: &[u8], reader: &BitReader<'_>) -> Result<Huffman, FormatError> {
        let mut counts = [0u16; MAX_BITS + 1];
        for &len in lengths {
            counts[len as usize] += 1;
        }
        if counts[0] as usize == lengths.len() {
            return Err(reader.corrupt("Huffman code with no symbols"));
        }
        let mut left = 1i32;
        for &count in &counts[1..] {
            left = (left << 1) - count as i32;
            if left < 0 {
                return Err(reader.corrupt("over-subscribed Huffman code"));
            }
        }
        let mut offsets = [0u16; MAX_BITS + 2];
        for len in 1..=MAX_BITS {
            offsets[len + 1] = offsets[len] + counts[len];
        }
        let mut symbols = vec![0u16; lengths.len()];
        for (symbol, &len) in lengths.iter().enumerate() {
            if len != 0 {
                symbols[offsets[len as usize] as usize] = symbol as u16;
                offsets[len as usize] += 1;
            }
        }
        Ok(Huffman { counts, symbols })
    }

    /// Decodes one symbol, reading bits until a code of some length matches.
    fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16, FormatError> {
        let mut code = 0i32;
        let mut first = 0i32;
        let mut index = 0i32;
        for len in 1..=MAX_BITS {
            code |= reader.bits(1)? as i32;
            let count = self.counts[len] as i32;
            if code - first < count {
                return Ok(self.symbols[(index + (code - first)) as usize]);
            }
            index += count;
            first = (first + count) << 1;
            code <<= 1;
        }
        Err(reader.corrupt("invalid Huffman code"))
    }
}

/// The fixed literal/length table of BTYPE=01 blocks.
fn fixed_literal_table(reader: &BitReader<'_>) -> Result<Huffman, FormatError> {
    let mut lengths = [0u8; MAX_LIT_SYMBOLS];
    for (symbol, len) in lengths.iter_mut().enumerate() {
        *len = match symbol {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    Huffman::from_lengths(&lengths, reader)
}

/// The fixed distance table of BTYPE=01 blocks.
fn fixed_distance_table(reader: &BitReader<'_>) -> Result<Huffman, FormatError> {
    let lengths = [5u8; MAX_DIST_SYMBOLS];
    Huffman::from_lengths(&lengths, reader)
}

/// Reads the dynamic code-length descriptor of a BTYPE=10 block and builds
/// its literal/length and distance tables.
fn dynamic_tables(reader: &mut BitReader<'_>) -> Result<(Huffman, Huffman), FormatError> {
    let hlit = reader.bits(5)? as usize + 257;
    let hdist = reader.bits(5)? as usize + 1;
    let hclen = reader.bits(4)? as usize + 4;
    if hlit > MAX_LIT_SYMBOLS || hdist > MAX_DIST_SYMBOLS + 2 {
        return Err(reader.corrupt("dynamic block declares too many symbols"));
    }
    let mut clen_lengths = [0u8; 19];
    for &slot in CLEN_ORDER.iter().take(hclen) {
        clen_lengths[slot] = reader.bits(3)? as u8;
    }
    let clen_table = Huffman::from_lengths(&clen_lengths, reader)?;

    let mut lengths = vec![0u8; hlit + hdist];
    let mut index = 0;
    while index < lengths.len() {
        let symbol = clen_table.decode(reader)?;
        match symbol {
            0..=15 => {
                lengths[index] = symbol as u8;
                index += 1;
            }
            16 => {
                if index == 0 {
                    return Err(reader.corrupt("length repeat with no previous length"));
                }
                let previous = lengths[index - 1];
                let repeat = 3 + reader.bits(2)? as usize;
                if index + repeat > lengths.len() {
                    return Err(reader.corrupt("length repeat overflows the symbol count"));
                }
                lengths[index..index + repeat].fill(previous);
                index += repeat;
            }
            17 | 18 => {
                let repeat = if symbol == 17 {
                    3 + reader.bits(3)? as usize
                } else {
                    11 + reader.bits(7)? as usize
                };
                if index + repeat > lengths.len() {
                    return Err(reader.corrupt("zero-length repeat overflows the symbol count"));
                }
                index += repeat;
            }
            _ => return Err(reader.corrupt("invalid code-length symbol")),
        }
    }
    if lengths[256] == 0 {
        return Err(reader.corrupt("dynamic block has no end-of-block code"));
    }
    let literal = Huffman::from_lengths(&lengths[..hlit], reader)?;
    let distance = Huffman::from_lengths(&lengths[hlit..], reader)?;
    Ok((literal, distance))
}

/// Decodes the compressed payload of one Huffman block into `out`.
fn inflate_block(
    reader: &mut BitReader<'_>,
    literal: &Huffman,
    distance: &Huffman,
    out: &mut Vec<u8>,
) -> Result<(), FormatError> {
    loop {
        let symbol = literal.decode(reader)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            256 => return Ok(()),
            257..=285 => {
                let slot = symbol as usize - 257;
                let length =
                    LENGTH_BASE[slot] as usize + reader.bits(LENGTH_EXTRA[slot] as u32)? as usize;
                let dist_symbol = distance.decode(reader)? as usize;
                if dist_symbol >= MAX_DIST_SYMBOLS {
                    return Err(reader.corrupt("invalid distance symbol"));
                }
                let dist = DIST_BASE[dist_symbol] as usize
                    + reader.bits(DIST_EXTRA[dist_symbol] as u32)? as usize;
                if dist > out.len() {
                    return Err(reader.corrupt("match distance reaches before stream start"));
                }
                let start = out.len() - dist;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            _ => return Err(reader.corrupt("invalid literal/length symbol")),
        }
    }
}

/// Decompresses a raw DEFLATE stream starting at `data[start]`.
///
/// Returns the decompressed bytes and the index one past the last
/// compressed byte consumed (gzip framing reads its trailer from there).
/// `base_offset` is added to every reported error offset, so callers can
/// report positions in the enclosing file.
///
/// # Errors
///
/// [`FormatError::CorruptFrame`] with the byte offset at which the stream
/// stopped making sense.
pub fn inflate_from(
    data: &[u8],
    start: usize,
    base_offset: u64,
) -> Result<(Vec<u8>, usize), FormatError> {
    let mut reader = BitReader::new(&data[start.min(data.len())..], base_offset + start as u64);
    let mut out = Vec::new();
    loop {
        let final_block = reader.bits(1)? == 1;
        let block_type = reader.bits(2)?;
        match block_type {
            0 => {
                let header = reader.bytes(4)?;
                let len = u16::from_le_bytes([header[0], header[1]]);
                let nlen = u16::from_le_bytes([header[2], header[3]]);
                if len != !nlen {
                    return Err(FormatError::CorruptFrame {
                        offset: reader.offset() - 4,
                        reason: "stored block length check failed".to_string(),
                    });
                }
                let bytes = reader.bytes(len as usize)?;
                out.extend_from_slice(bytes);
            }
            1 => {
                let literal = fixed_literal_table(&reader)?;
                let distance = fixed_distance_table(&reader)?;
                inflate_block(&mut reader, &literal, &distance, &mut out)?;
            }
            2 => {
                let (literal, distance) = dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, &literal, &distance, &mut out)?;
            }
            _ => return Err(reader.corrupt("reserved DEFLATE block type")),
        }
        if final_block {
            break;
        }
    }
    reader.align();
    Ok((out, start + reader.pos))
}

/// Decompresses a complete raw DEFLATE stream.
///
/// # Errors
///
/// [`FormatError::CorruptFrame`] with the byte offset of the corruption.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, FormatError> {
    inflate_from(data, 0, 0).map(|(out, _)| out)
}

fn corrupt_at(offset: u64, reason: &str) -> FormatError {
    FormatError::CorruptFrame {
        offset,
        reason: reason.to_string(),
    }
}

/// Decompresses a gzip (RFC 1952) file: container header, DEFLATE payload,
/// and the CRC-32 / length trailer, both of which are verified.
///
/// # Errors
///
/// [`FormatError::CorruptFrame`] with the byte offset of the corruption —
/// a bad magic/method byte, a truncated optional field, corrupt DEFLATE
/// data, trailing garbage, or a failed CRC / length check.
pub fn gunzip(data: &[u8]) -> Result<Vec<u8>, FormatError> {
    if data.len() < 10 {
        return Err(corrupt_at(data.len() as u64, "truncated gzip header"));
    }
    if data[0] != 0x1F || data[1] != 0x8B {
        return Err(corrupt_at(0, "bad gzip magic bytes"));
    }
    if data[2] != 8 {
        return Err(corrupt_at(2, "unsupported gzip compression method"));
    }
    let flags = data[3];
    if flags & 0xE0 != 0 {
        return Err(corrupt_at(3, "reserved gzip flag bits set"));
    }
    // MTIME (4), XFL, OS are informational.
    let mut pos = 10usize;
    if flags & 0x04 != 0 {
        // FEXTRA
        if pos + 2 > data.len() {
            return Err(corrupt_at(pos as u64, "truncated gzip extra-field length"));
        }
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        if pos + xlen > data.len() {
            return Err(corrupt_at(pos as u64, "truncated gzip extra field"));
        }
        pos += xlen;
    }
    for (bit, what) in [(0x08u8, "file name"), (0x10u8, "comment")] {
        if flags & bit != 0 {
            match data[pos..].iter().position(|&b| b == 0) {
                Some(nul) => pos += nul + 1,
                None => {
                    return Err(corrupt_at(
                        data.len() as u64,
                        &format!("unterminated gzip {what}"),
                    ))
                }
            }
        }
    }
    if flags & 0x02 != 0 {
        // FHCRC: 16-bit header checksum, skipped (not part of the payload
        // integrity contract; the full CRC-32 below is verified).
        if pos + 2 > data.len() {
            return Err(corrupt_at(pos as u64, "truncated gzip header checksum"));
        }
        pos += 2;
    }

    let (out, end) = inflate_from(data, pos, 0)?;
    if end + 8 > data.len() {
        return Err(corrupt_at(end as u64, "truncated gzip trailer"));
    }
    if end + 8 < data.len() {
        return Err(corrupt_at(
            (end + 8) as u64,
            "trailing garbage after gzip trailer",
        ));
    }
    let expected_crc = u32::from_le_bytes(data[end..end + 4].try_into().expect("slice length"));
    let expected_len = u32::from_le_bytes(data[end + 4..end + 8].try_into().expect("slice length"));
    let actual_crc = crc32(&out);
    if actual_crc != expected_crc {
        return Err(corrupt_at(end as u64, "gzip CRC-32 mismatch"));
    }
    if expected_len != out.len() as u32 {
        return Err(corrupt_at((end + 4) as u64, "gzip length (ISIZE) mismatch"));
    }
    Ok(out)
}

/// Compresses `data` into a gzip file using stored (uncompressed) DEFLATE
/// blocks: a valid RFC 1952 stream any gzip implementation reads, produced
/// without a Huffman encoder. The size overhead is 5 bytes per 64 KiB
/// block plus the 18-byte container.
pub fn gzip_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 18 + data.len() / 65_535 * 5 + 5);
    // Header: magic, method=deflate, no flags, zero mtime, no extra flags,
    // "unknown" OS.
    out.extend_from_slice(&[0x1F, 0x8B, 8, 0, 0, 0, 0, 0, 0, 0xFF]);
    let mut chunks = data.chunks(65_535).peekable();
    if data.is_empty() {
        // An empty stream still needs one final stored block.
        out.extend_from_slice(&[0x01, 0, 0, 0xFF, 0xFF]);
    }
    while let Some(chunk) = chunks.next() {
        let bfinal = if chunks.peek().is_none() { 1u8 } else { 0u8 };
        out.push(bfinal); // BTYPE=00 in bits 1-2.
        let len = chunk.len() as u16;
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&(!len).to_le_bytes());
        out.extend_from_slice(chunk);
    }
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn stored_round_trip_through_own_compressor() {
        for len in [0usize, 1, 100, 65_535, 65_536, 200_000] {
            let mut rng = SplitMix64::new(len as u64 + 1);
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let packed = gzip_compress(&data);
            let back = gunzip(&packed).unwrap_or_else(|e| panic!("len {len}: {e}"));
            assert_eq!(back, data, "len {len}");
        }
    }

    /// A fixed-Huffman stream compressed by an external conforming
    /// implementation (`zlib.compress(b"hello hello hello hello", 9)` raw
    /// deflate payload): exercises the fixed tables and match copies.
    #[test]
    fn fixed_huffman_stream_with_matches_decodes() {
        // Raw DEFLATE: literal "hello " then matches; hand-assembled
        // fixed-Huffman block: literals 'a'..'f' then end-of-block.
        // Build programmatically instead: BFINAL=1, BTYPE=01, then 8-bit
        // codes for 0x30+byte (bytes 0..=143 map to codes 0x30..0xBF,
        // emitted MSB-first within the code).
        let mut bits: Vec<bool> = vec![true, true, false]; // BFINAL=1, BTYPE=01 (LSB first)
        let push_code = |bits: &mut Vec<bool>, code: u16, len: u32| {
            for i in (0..len).rev() {
                bits.push(code & (1 << i) != 0);
            }
        };
        for &byte in b"abcdef" {
            push_code(&mut bits, 0x30 + byte as u16, 8);
        }
        push_code(&mut bits, 0, 7); // end-of-block (symbol 256, code 0000000)
        let mut data = vec![0u8; bits.len().div_ceil(8)];
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                data[i / 8] |= 1 << (i % 8);
            }
        }
        let out = inflate(&data).expect("fixed-Huffman stream decodes");
        assert_eq!(out, b"abcdef");
    }

    #[test]
    fn match_copies_replicate_overlapping_history() {
        // Fixed-Huffman: literal 'x', then a length-6 match at distance 1
        // ("xxxxxxx" total), then end-of-block.
        let mut bits: Vec<bool> = vec![true, true, false]; // BFINAL=1, BTYPE=01
        let push_code = |bits: &mut Vec<bool>, code: u16, len: u32| {
            for i in (0..len).rev() {
                bits.push(code & (1 << i) != 0);
            }
        };
        push_code(&mut bits, 0x30 + b'x' as u16, 8);
        // Length symbol 260 (base 6, no extra): codes 256..=279 are 7-bit
        // values 0..=23, so symbol 260 is code 4.
        push_code(&mut bits, 4, 7);
        // Distance symbol 0 (distance 1): 5-bit code 0.
        push_code(&mut bits, 0, 5);
        push_code(&mut bits, 0, 7); // end of block
        let mut data = vec![0u8; bits.len().div_ceil(8)];
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                data[i / 8] |= 1 << (i % 8);
            }
        }
        let out = inflate(&data).expect("overlapping match decodes");
        assert_eq!(out, b"xxxxxxx");
    }

    #[test]
    fn corrupt_streams_report_offsets_not_panics() {
        let packed = gzip_compress(b"the quick brown fox jumps over the lazy dog");

        // Bad magic.
        let mut bad = packed.clone();
        bad[0] = 0x00;
        assert!(matches!(
            gunzip(&bad),
            Err(FormatError::CorruptFrame { offset: 0, .. })
        ));

        // Bad method byte.
        let mut bad = packed.clone();
        bad[2] = 7;
        assert!(matches!(
            gunzip(&bad),
            Err(FormatError::CorruptFrame { offset: 2, .. })
        ));

        // Flipped payload byte: the stored-block copy survives (stored
        // blocks have no redundancy) but the CRC check catches it.
        let mut bad = packed.clone();
        let payload_at = 15; // inside the stored block data
        bad[payload_at] ^= 0xFF;
        let err = gunzip(&bad).unwrap_err();
        assert!(
            matches!(err, FormatError::CorruptFrame { .. }),
            "unexpected {err:?}"
        );
        assert!(err.to_string().contains("CRC"), "{err}");

        // Truncated trailer.
        let truncated = &packed[..packed.len() - 3];
        let err = gunzip(truncated).unwrap_err();
        assert!(err.to_string().contains("trailer"), "{err}");

        // Trailing garbage.
        let mut padded = packed.clone();
        padded.push(0x55);
        let err = gunzip(&padded).unwrap_err();
        assert!(err.to_string().contains("garbage"), "{err}");

        // Corrupt stored-block length complement.
        let mut bad = packed.clone();
        bad[12] ^= 0xFF; // NLEN byte of the first stored block
        let err = gunzip(&bad).unwrap_err();
        assert!(err.to_string().contains("length check"), "{err}");
    }

    #[test]
    fn reserved_block_type_is_rejected() {
        // BFINAL=1, BTYPE=11 (reserved).
        let err = inflate(&[0b0000_0111]).unwrap_err();
        assert!(err.to_string().contains("reserved"), "{err}");
    }

    #[test]
    fn garbage_never_panics_fuzz() {
        let mut rng = SplitMix64::new(0x1F8B);
        for round in 0..2_000 {
            let len = (rng.next_u64() % 192) as usize;
            let mut data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            // Half the rounds start from a valid prefix to reach deeper
            // code paths (header parsing alone rejects pure noise).
            if round % 2 == 0 && data.len() > 10 {
                data[0] = 0x1F;
                data[1] = 0x8B;
                data[2] = 8;
                data[3] &= 0x1F;
            }
            let _ = gunzip(&data); // must return, never panic
            let _ = inflate(&data);
        }
    }

    #[test]
    fn dynamic_huffman_stream_decodes() {
        // A minimal dynamic-Huffman block encoding "aab": HLIT=257+2 isn't
        // needed — assemble one with two literal symbols ('a', 'b') plus
        // end-of-block, all code length 2, via the code-length alphabet.
        let mut bits: Vec<bool> = Vec::new();
        let push = |bits: &mut Vec<bool>, value: u32, len: u32| {
            for i in 0..len {
                bits.push(value & (1 << i) != 0);
            }
        };
        // Header: BFINAL=1, BTYPE=10.
        push(&mut bits, 1, 1);
        push(&mut bits, 2, 2);
        // HLIT = 257 (0), HDIST = 1 (0), HCLEN = 19 (15).
        push(&mut bits, 0, 5);
        push(&mut bits, 0, 5);
        push(&mut bits, 15, 4);
        // Code-length code lengths, in CLEN_ORDER
        // [16,17,18,0,8,7,9,6,10,5,11,4,12,3,13,2,14,1,15]:
        // we need: symbol 18 -> len 2 (zero runs), 0 -> len 2,
        // 2 -> len 2 (the literal code lengths), 1 -> len 2 (unused dist).
        // Everything else 0.
        let clen_lengths: [u32; 19] = [0, 0, 2, 2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 2, 0];
        for v in clen_lengths {
            push(&mut bits, v, 3);
        }
        // Canonical codes for the clen alphabet {0:2, 1:2, 2:2, 18:2}:
        // symbol 0 -> 00, 1 -> 01, 2 -> 10, 18 -> 11 (MSB-first).
        let clen_code = |bits: &mut Vec<bool>, code: u32| {
            bits.push(code & 2 != 0);
            bits.push(code & 1 != 0);
        };
        // Literal lengths: 97 zeros ('a' is symbol 97), then len 2 for 'a',
        // len 2 for 'b', zeros up to 255, len 2 for 256 (EOB).
        // 97 zeros: 18 with repeat 88 (11+extra 77? max 138) — use 18 with
        // extra bits: repeat = 11 + 7-bit extra. 97 = 11 + 86.
        clen_code(&mut bits, 3); // symbol 18
        push(&mut bits, 86, 7);
        clen_code(&mut bits, 2); // 'a' -> len 2
        clen_code(&mut bits, 2); // 'b' -> len 2
                                 // Zeros from 99 to 255: 157 zeros = 138 + 19.
        clen_code(&mut bits, 3);
        push(&mut bits, 127, 7); // 138 zeros
        clen_code(&mut bits, 3);
        push(&mut bits, 8, 7); // 19 zeros
        clen_code(&mut bits, 2); // symbol 256 -> len 2
                                 // One distance symbol, length 1 (symbol 0): code-length 1 via
                                 // clen symbol 1.
        clen_code(&mut bits, 1);
        // Literal canonical codes: {97:2, 98:2, 256:2} -> 'a'=00, 'b'=01,
        // 256=10 (MSB-first).
        let lit = |bits: &mut Vec<bool>, code: u32| {
            bits.push(code & 2 != 0);
            bits.push(code & 1 != 0);
        };
        lit(&mut bits, 0); // 'a'
        lit(&mut bits, 0); // 'a'
        lit(&mut bits, 1); // 'b'
        lit(&mut bits, 2); // end of block
        let mut data = vec![0u8; bits.len().div_ceil(8)];
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                data[i / 8] |= 1 << (i % 8);
            }
        }
        let out = inflate(&data).expect("dynamic-Huffman stream decodes");
        assert_eq!(out, b"aab");
    }
}
