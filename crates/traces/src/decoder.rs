//! Format-agnostic trace decoding: the [`TraceDecoder`] abstraction and the
//! built-in adapters behind [`crate::source::SourceSpec`] auto-detection.
//!
//! A decoder turns the raw bytes of a trace file into an in-memory record
//! stream. Three adapters ship with the crate:
//!
//! | extension   | format                                                 |
//! |-------------|--------------------------------------------------------|
//! | `.trace.gz`, `.tracez` | gzip-compressed native binary trace ([`crate::format`]) |
//! | `.cbp`      | CBP-style text: `"<pc-hex> <0\|1\|T\|N>"` per line      |
//! | `.cbpb`     | CBP-style binary: 9-byte records (u64 LE pc + outcome) |
//!
//! The native uncompressed `.trace` format is *not* decoded through this
//! module — [`crate::source::BinaryFileSource`] streams it chunked and
//! out-of-core. Decoders materialize the whole record set (compressed
//! frames cannot be record-seeked anyway), which keeps them simple and
//! makes [`DecodedSource`] trivially seekable for segmented runs.
//!
//! Errors follow the repo-wide discipline: every corruption is a
//! [`FormatError`] carrying the byte offset (or line number) at which the
//! input stopped making sense, and garbage input never panics.

use std::path::Path;

use crate::format::{decode_record, FormatError, RECORD_BYTES};
use crate::inflate::gunzip;
use crate::reader::read_binary_header;
use crate::record::BranchRecord;
use crate::source::BranchSource;

/// A decoded trace: the records plus the best available name (from the
/// container when the format carries one, else the caller's default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedTrace {
    /// Trace name for reports.
    pub name: String,
    /// The full record stream, in trace order.
    pub records: Vec<BranchRecord>,
}

/// Decodes one on-disk trace format into branch records.
///
/// Implementations are stateless unit structs registered in [`REGISTRY`];
/// [`detect`] picks one by file-name suffix.
pub trait TraceDecoder: Sync {
    /// Short human-readable format name (shown by `tage-bench --list`).
    fn format_name(&self) -> &'static str;

    /// File-name suffixes this decoder claims, without the leading dot
    /// (e.g. `"trace.gz"`). Matched case-sensitively against the end of
    /// the file name.
    fn extensions(&self) -> &'static [&'static str];

    /// One-line description of the format (shown by `tage-bench --list`).
    fn description(&self) -> &'static str;

    /// Decodes the raw file bytes. `default_name` names the trace when the
    /// format itself carries no name (CBP-style formats).
    ///
    /// # Errors
    ///
    /// A [`FormatError`] locating the corruption by byte offset or line
    /// number.
    fn decode(&self, bytes: &[u8], default_name: &str) -> Result<DecodedTrace, FormatError>;
}

/// Gzip-compressed native binary traces (`.trace.gz` / `.tracez`):
/// the [`crate::format`] byte layout inside an RFC 1952 container,
/// decompressed by the std-only [`crate::inflate`] module. Error offsets
/// locate container/DEFLATE corruption in the *compressed* stream and
/// record corruption in the *decompressed* stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct GzipNativeDecoder;

impl TraceDecoder for GzipNativeDecoder {
    fn format_name(&self) -> &'static str {
        "gzip-native"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["trace.gz", "tracez"]
    }

    fn description(&self) -> &'static str {
        "gzip-compressed native binary trace (TAGT inside RFC 1952)"
    }

    fn decode(&self, bytes: &[u8], _default_name: &str) -> Result<DecodedTrace, FormatError> {
        let raw = gunzip(bytes)?;
        let mut cursor: &[u8] = &raw;
        let header = read_binary_header(&mut cursor)?;
        let data = &raw[header.data_offset as usize..];
        let whole = data.len() / RECORD_BYTES;
        let available = match header.declared_records {
            Some(declared) if declared > whole as u64 => {
                return Err(FormatError::TruncatedRecord {
                    offset: header.data_offset + (whole * RECORD_BYTES) as u64,
                })
            }
            Some(declared) => declared as usize,
            None => {
                if !data.len().is_multiple_of(RECORD_BYTES) {
                    return Err(FormatError::TruncatedRecord {
                        offset: header.data_offset + (whole * RECORD_BYTES) as u64,
                    });
                }
                whole
            }
        };
        let mut records = Vec::with_capacity(available);
        for index in 0..available {
            let start = index * RECORD_BYTES;
            let offset = header.data_offset + start as u64;
            records.push(decode_record(&data[start..start + RECORD_BYTES], offset)?);
        }
        Ok(DecodedTrace {
            name: header.name,
            records,
        })
    }
}

/// CBP-style text traces (`.cbp`): one branch per line, `"<pc-hex>
/// <outcome>"` where the outcome is `0`/`N` (not taken) or `1`/`T`
/// (taken). Blank lines and `#` comments are skipped. Every record is a
/// conditional branch with a zero instruction gap (championship traces
/// carry branches only), so per-kilo-instruction metrics degenerate to
/// per-kilo-branch — exactly how CBP scored.
#[derive(Debug, Clone, Copy, Default)]
pub struct CbpTextDecoder;

impl TraceDecoder for CbpTextDecoder {
    fn format_name(&self) -> &'static str {
        "cbp-text"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["cbp"]
    }

    fn description(&self) -> &'static str {
        "CBP-style text: \"<pc-hex> <0|1|T|N>\" per line, # comments"
    }

    fn decode(&self, bytes: &[u8], default_name: &str) -> Result<DecodedTrace, FormatError> {
        let text = String::from_utf8_lossy(bytes);
        let mut records = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let malformed = |reason: &str| FormatError::MalformedLine {
                line: line_no,
                reason: reason.to_string(),
            };
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let pc = parts.next().ok_or_else(|| malformed("missing pc"))?;
            let pc = u64::from_str_radix(pc, 16).map_err(|_| malformed("pc is not hex"))?;
            let outcome = parts.next().ok_or_else(|| malformed("missing outcome"))?;
            let taken = match outcome {
                "1" | "T" => true,
                "0" | "N" => false,
                _ => return Err(malformed("outcome must be 0, 1, T or N")),
            };
            if parts.next().is_some() {
                return Err(malformed("trailing tokens"));
            }
            records.push(BranchRecord::conditional(pc, taken));
        }
        Ok(DecodedTrace {
            name: default_name.to_string(),
            records,
        })
    }
}

/// Size of one CBP-style binary record: u64 LE pc + one outcome byte.
pub const CBP_RECORD_BYTES: usize = 9;

/// CBP-style binary traces (`.cbpb`): headerless streams of 9-byte
/// records — a u64 little-endian branch pc followed by one outcome byte
/// (`0` not taken, `1` taken). Every record is a conditional branch with a
/// zero instruction gap.
#[derive(Debug, Clone, Copy, Default)]
pub struct CbpBinaryDecoder;

impl TraceDecoder for CbpBinaryDecoder {
    fn format_name(&self) -> &'static str {
        "cbp-binary"
    }

    fn extensions(&self) -> &'static [&'static str] {
        &["cbpb"]
    }

    fn description(&self) -> &'static str {
        "CBP-style binary: 9-byte records (u64 LE pc + outcome byte)"
    }

    fn decode(&self, bytes: &[u8], default_name: &str) -> Result<DecodedTrace, FormatError> {
        if !bytes.len().is_multiple_of(CBP_RECORD_BYTES) {
            let whole = bytes.len() / CBP_RECORD_BYTES;
            return Err(FormatError::TruncatedRecord {
                offset: (whole * CBP_RECORD_BYTES) as u64,
            });
        }
        let mut records = Vec::with_capacity(bytes.len() / CBP_RECORD_BYTES);
        for (index, chunk) in bytes.chunks_exact(CBP_RECORD_BYTES).enumerate() {
            let offset = (index * CBP_RECORD_BYTES) as u64;
            let pc = u64::from_le_bytes(chunk[..8].try_into().expect("slice length"));
            let taken = match chunk[8] {
                0 => false,
                1 => true,
                byte => {
                    return Err(FormatError::InvalidOutcome { byte, offset });
                }
            };
            records.push(BranchRecord::conditional(pc, taken));
        }
        Ok(DecodedTrace {
            name: default_name.to_string(),
            records,
        })
    }
}

/// Every built-in decoder, in detection order.
pub static REGISTRY: [&dyn TraceDecoder; 3] =
    [&GzipNativeDecoder, &CbpTextDecoder, &CbpBinaryDecoder];

/// Picks the decoder whose suffix matches `path`'s file name, along with
/// the matched suffix (useful for stripping it off report labels).
/// Longest match wins, so `foo.trace.gz` resolves to the gzip decoder and
/// not to any shorter suffix.
pub fn detect(path: &Path) -> Option<(&'static dyn TraceDecoder, &'static str)> {
    let file_name = path.file_name()?.to_string_lossy();
    let mut best: Option<(&'static dyn TraceDecoder, &'static str)> = None;
    for &decoder in REGISTRY.iter() {
        for &suffix in decoder.extensions() {
            let dotted = format!(".{suffix}");
            if file_name.ends_with(&dotted) && file_name.len() > dotted.len() {
                match best {
                    Some((_, current)) if current.len() >= suffix.len() => {}
                    _ => best = Some((decoder, suffix)),
                }
            }
        }
    }
    best
}

/// Reads and decodes a trace file through the decoder its suffix names.
/// The default trace name (for formats that carry none) is the file name
/// with the format suffix stripped.
///
/// # Errors
///
/// [`FormatError::Io`] when the file has no decoder suffix or cannot be
/// read, or the decoder's error for corrupt content.
pub fn decode_file(path: impl AsRef<Path>) -> Result<DecodedSource, FormatError> {
    let path = path.as_ref();
    let Some((decoder, suffix)) = detect(path) else {
        return Err(FormatError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("no trace decoder claims {}", path.display()),
        )));
    };
    let bytes = std::fs::read(path)?;
    let default_name = default_trace_name(path, suffix);
    let decoded = decoder.decode(&bytes, &default_name)?;
    Ok(DecodedSource::new(decoded))
}

/// The file name with the decoder suffix (and its dot) stripped — the
/// stable report label of a decoded file.
pub fn default_trace_name(path: &Path, suffix: &str) -> String {
    let file_name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    file_name
        .strip_suffix(&format!(".{suffix}"))
        .map(str::to_string)
        .unwrap_or(file_name)
}

/// A [`BranchSource`] over a fully decoded trace: owned records, a cursor,
/// O(1) skip and reset. Decoded formats cannot be streamed out-of-core
/// (compressed frames are not record-seekable), so the memory cost is the
/// whole record set — fine for the CBP-scale traces these formats carry.
#[derive(Debug, Clone)]
pub struct DecodedSource {
    name: String,
    records: Vec<BranchRecord>,
    position: usize,
}

impl DecodedSource {
    /// Wraps a decoded trace as a source positioned at its first record.
    pub fn new(decoded: DecodedTrace) -> Self {
        DecodedSource {
            name: decoded.name,
            records: decoded.records,
            position: 0,
        }
    }

    /// The decoded records (all of them, independent of the cursor).
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }
}

impl BranchSource for DecodedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_batch(&mut self, buf: &mut [BranchRecord]) -> Result<usize, FormatError> {
        let remaining = &self.records[self.position..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.position += n;
        Ok(n)
    }

    fn reset(&mut self) -> Result<(), FormatError> {
        self.position = 0;
        Ok(())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.records.len() as u64)
    }

    fn skip_records(&mut self, n: u64) -> Result<u64, FormatError> {
        let remaining = (self.records.len() - self.position) as u64;
        let skip = n.min(remaining);
        self.position += skip as usize;
        Ok(skip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::gzip_compress;
    use crate::rng::SplitMix64;
    use crate::suites;
    use crate::trace::Trace;
    use crate::writer::TraceWriter;
    use std::path::PathBuf;

    #[test]
    fn gzip_native_round_trips_a_real_trace() {
        let trace = suites::cbp1_mini().traces()[0].generate(2_000);
        let packed = gzip_compress(&TraceWriter::to_binary_bytes(&trace));
        let decoded = GzipNativeDecoder.decode(&packed, "fallback").unwrap();
        assert_eq!(decoded.name, trace.name());
        assert_eq!(decoded.records, trace.records());
    }

    #[test]
    fn gzip_native_reports_truncation_in_decompressed_offsets() {
        let trace = Trace::from_records(
            "t",
            vec![
                BranchRecord::conditional(1, true),
                BranchRecord::conditional(2, false),
            ],
        );
        let mut raw = TraceWriter::to_binary_bytes(&trace);
        raw.truncate(raw.len() - 5);
        let packed = gzip_compress(&raw);
        let err = GzipNativeDecoder.decode(&packed, "t").unwrap_err();
        let header_len = (4 + 4 + 4 + 1 + 8) as u64;
        assert!(
            matches!(err, FormatError::TruncatedRecord { offset } if offset == header_len + RECORD_BYTES as u64),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn gzip_native_rejects_corrupt_container() {
        let trace = suites::cbp1_mini().traces()[0].generate(100);
        let mut packed = gzip_compress(&TraceWriter::to_binary_bytes(&trace));
        let trailer_at = packed.len() - 8;
        packed[trailer_at] ^= 0x01; // CRC byte
        let err = GzipNativeDecoder.decode(&packed, "t").unwrap_err();
        assert!(
            matches!(err, FormatError::CorruptFrame { .. }),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn cbp_text_parses_outcome_spellings_and_comments() {
        let text = "# a comment\n\n1000 1\nffff T\nbeef 0\n 20 N \n";
        let decoded = CbpTextDecoder.decode(text.as_bytes(), "mytrace").unwrap();
        assert_eq!(decoded.name, "mytrace");
        let outcomes: Vec<(u64, bool)> = decoded.records.iter().map(|r| (r.pc, r.taken)).collect();
        assert_eq!(
            outcomes,
            vec![
                (0x1000, true),
                (0xffff, true),
                (0xbeef, false),
                (0x20, false)
            ]
        );
        assert!(decoded.records.iter().all(|r| r.kind.is_conditional()));
    }

    #[test]
    fn cbp_text_rejects_malformed_lines_with_line_numbers() {
        for (text, bad_line) in [
            ("1000 1\nzz T\n", 2),
            ("1000 2\n", 1),
            ("1000\n", 1),
            ("# ok\n1000 1 extra\n", 2),
        ] {
            let err = CbpTextDecoder.decode(text.as_bytes(), "t").unwrap_err();
            assert!(
                matches!(err, FormatError::MalformedLine { line, .. } if line == bad_line),
                "{text:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn cbp_binary_round_trips_and_reports_corruption_offsets() {
        let mut bytes = Vec::new();
        for (pc, taken) in [(0x4000u64, 1u8), (0x4010, 0), (0x4000, 1)] {
            bytes.extend_from_slice(&pc.to_le_bytes());
            bytes.push(taken);
        }
        let decoded = CbpBinaryDecoder.decode(&bytes, "bin").unwrap();
        assert_eq!(decoded.records.len(), 3);
        assert_eq!(decoded.records[0].pc, 0x4000);
        assert!(decoded.records[0].taken);
        assert!(!decoded.records[1].taken);

        // Bad outcome byte in the second record.
        let mut bad = bytes.clone();
        bad[CBP_RECORD_BYTES + 8] = 7;
        let err = CbpBinaryDecoder.decode(&bad, "bin").unwrap_err();
        assert!(
            matches!(
                err,
                FormatError::InvalidOutcome { byte: 7, offset } if offset == CBP_RECORD_BYTES as u64
            ),
            "unexpected error {err:?}"
        );

        // Truncated tail.
        let truncated = &bytes[..bytes.len() - 4];
        let err = CbpBinaryDecoder.decode(truncated, "bin").unwrap_err();
        assert!(
            matches!(
                err,
                FormatError::TruncatedRecord { offset } if offset == (2 * CBP_RECORD_BYTES) as u64
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn detection_matches_longest_suffix() {
        let gz = detect(Path::new("dir/foo.trace.gz")).expect("gz detected");
        assert_eq!(gz.0.format_name(), "gzip-native");
        assert_eq!(gz.1, "trace.gz");
        let tz = detect(Path::new("foo.tracez")).expect("tracez detected");
        assert_eq!(tz.0.format_name(), "gzip-native");
        let cbp = detect(Path::new("foo.cbp")).expect("cbp detected");
        assert_eq!(cbp.0.format_name(), "cbp-text");
        let cbpb = detect(Path::new("foo.cbpb")).expect("cbpb detected");
        assert_eq!(cbpb.0.format_name(), "cbp-binary");
        assert!(
            detect(Path::new("foo.trace")).is_none(),
            "native stays streamed"
        );
        assert!(detect(Path::new("foo.txt")).is_none());
        assert!(
            detect(Path::new(".cbp")).is_none(),
            "bare suffix is not a trace"
        );
    }

    #[test]
    fn default_names_strip_the_format_suffix() {
        assert_eq!(
            default_trace_name(Path::new("a/b/run-1.trace.gz"), "trace.gz"),
            "run-1"
        );
        assert_eq!(default_trace_name(Path::new("x.cbp"), "cbp"), "x");
    }

    #[test]
    fn decode_file_streams_through_decoded_source() {
        let trace = suites::cbp1_mini().traces()[1].generate(500);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("tage-decoder-test-{}.trace.gz", std::process::id()));
        std::fs::write(&path, gzip_compress(&TraceWriter::to_binary_bytes(&trace))).unwrap();
        let mut source = decode_file(&path).unwrap();
        assert_eq!(source.name(), trace.name());
        assert_eq!(source.len_hint(), Some(trace.len() as u64));
        assert_eq!(source.skip_records(10).unwrap(), 10);
        let mut buf = vec![BranchRecord::default(); 64];
        let mut rest = Vec::new();
        loop {
            let n = source.next_batch(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            rest.extend_from_slice(&buf[..n]);
        }
        assert_eq!(rest, &trace.records()[10..]);
        source.reset().unwrap();
        assert_eq!(source.skip_records(u64::MAX).unwrap(), trace.len() as u64);
        std::fs::remove_file(&path).unwrap();

        let orphan = PathBuf::from("/no/decoder/for/this.txt");
        assert!(decode_file(&orphan).is_err());
    }

    #[test]
    fn garbage_never_panics_in_any_decoder() {
        let mut rng = SplitMix64::new(0xDEC0DE);
        for _ in 0..500 {
            let len = (rng.next_u64() % 128) as usize;
            let data: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            for decoder in REGISTRY.iter() {
                let _ = decoder.decode(&data, "fuzz"); // must return, never panic
            }
        }
    }
}
