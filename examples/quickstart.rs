//! Quickstart: build a TAGE predictor, run it over a synthetic workload and
//! read out the storage-free confidence of each prediction.
//!
//! Run with: `cargo run --release --example quickstart`

use tage_confidence_suite::confidence::{ConfidenceLevel, TageConfidenceClassifier};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence_suite::traces::suites;

fn main() {
    // 1. A 64 Kbit TAGE predictor with the paper's modified counter
    //    automaton (probabilistic saturation, p = 1/128).
    let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
    let mut predictor = TagePredictor::new(config.clone());

    // 2. The storage-free confidence classifier: its only state is the tiny
    //    medium-conf-bim recency window.
    let mut classifier = TageConfidenceClassifier::new(&config);

    // 3. A workload: one trace of the CBP-1-like suite.
    let trace = suites::cbp1_like()
        .trace("INT-1")
        .expect("suite trace exists")
        .generate(200_000);

    let mut per_level = [[0u64; 2]; 3]; // [level][correct, mispredicted]
    for record in trace.iter().filter(|r| r.kind.is_conditional()) {
        let prediction = predictor.predict(record.pc);
        let class = classifier.classify_and_observe(&prediction, record.taken);
        let level = class.level();
        let mispredicted = prediction.taken != record.taken;
        let slot = match level {
            ConfidenceLevel::Low => 0,
            ConfidenceLevel::Medium => 1,
            ConfidenceLevel::High => 2,
        };
        per_level[slot][usize::from(mispredicted)] += 1;
        predictor.update(record.pc, record.taken, &prediction);
    }

    println!("predictor: {}", config);
    println!("trace:     {}", trace);
    println!();
    println!("confidence level | predictions | mispredicted | misprediction rate");
    for (name, counts) in ["low", "medium", "high"].iter().zip(per_level.iter()) {
        let total = counts[0] + counts[1];
        let rate = if total == 0 {
            0.0
        } else {
            counts[1] as f64 * 100.0 / total as f64
        };
        println!(
            "{name:>16} | {total:>11} | {:>12} | {rate:>6.2} %",
            counts[1]
        );
    }
    println!();
    println!(
        "high-confidence predictions should be an order of magnitude more reliable than low-confidence ones."
    );
}
