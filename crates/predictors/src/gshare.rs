//! McFarling's gshare predictor.

use tage_traces::snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::counter::SignedCounter;
use crate::history::HistoryRegister;
use crate::predictor::{BranchPredictor, Prediction};
use crate::snapshot_util::{read_history, write_history};

/// A gshare predictor: a table of 2-bit counters indexed by the XOR of the
/// branch PC and the global branch history.
///
/// The JRS confidence estimator (Jacobsen, Rotenberg and Smith) was defined
/// for exactly this kind of two-level predictor; gshare is therefore both a
/// baseline predictor and the natural host for the storage-based confidence
/// estimators implemented in the `tage-confidence` crate.
///
/// # Example
///
/// ```
/// use tage_predictors::{BranchPredictor, GsharePredictor};
///
/// let mut p = GsharePredictor::new(12, 12);
/// let pred = p.predict(0x7700);
/// p.update(0x7700, true, &pred);
/// ```
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    table: Vec<SignedCounter>,
    index_bits: u32,
    history: HistoryRegister,
    history_bits: usize,
}

impl GsharePredictor {
    /// Creates a gshare predictor with `2^index_bits` counters and the given
    /// number of global history bits.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is not in `1..=28` or `history_bits` is zero or
    /// greater than 64.
    pub fn new(index_bits: u32, history_bits: usize) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits must be in 1..=28"
        );
        assert!(
            (1..=64).contains(&history_bits),
            "history_bits must be in 1..=64"
        );
        GsharePredictor {
            table: vec![SignedCounter::new(2); 1 << index_bits],
            index_bits,
            history: HistoryRegister::new(history_bits),
            history_bits,
        }
    }

    /// Creates a gshare predictor from its declarative spec.
    ///
    /// # Panics
    ///
    /// Panics when the spec violates the constructor's parameter ranges.
    pub fn from_spec(spec: &crate::spec::GshareSpec) -> Self {
        Self::new(spec.index_bits, spec.history_bits)
    }

    /// The index the predictor would use for `pc` with the current history
    /// (exposed so that storage-based confidence estimators can share it).
    pub fn index(&self, pc: u64) -> usize {
        let hist = self
            .history
            .low_bits(self.history_bits.min(self.index_bits as usize));
        (((pc >> 2) ^ hist) & ((1 << self.index_bits) - 1)) as usize
    }

    /// Number of global history bits used.
    pub fn history_bits(&self) -> usize {
        self.history_bits
    }

    /// A copy of the current global history register.
    pub fn history(&self) -> &HistoryRegister {
        &self.history
    }

    fn spec_string(&self) -> String {
        format!(
            "gshare|index_bits={}|history_bits={}",
            self.index_bits, self.history_bits
        )
    }
}

impl BranchPredictor for GsharePredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        let ctr = self.table[self.index(pc)];
        Prediction::new(ctr.predict_taken(), i64::from(ctr.centered_magnitude()))
    }

    fn update(&mut self, pc: u64, taken: bool, _prediction: &Prediction) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
        self.history.push(taken);
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2 + self.history_bits as u64
    }

    fn name(&self) -> String {
        format!("gshare-{}k-h{}", self.table.len() / 1024, self.history_bits)
    }

    fn reset(&mut self) {
        *self = GsharePredictor::new(self.index_bits, self.history_bits);
    }

    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send> {
        let mut fresh = self.clone();
        fresh.reset();
        Box::new(fresh)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(self.spec_digest());
        w.begin_section();
        for ctr in &self.table {
            w.write_i8(ctr.value());
        }
        w.end_section();
        w.begin_section();
        write_history(&mut w, &self.history);
        w.end_section();
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, self.spec_digest())?;
        r.begin_section()?;
        let mut values = Vec::with_capacity(self.table.len());
        for _ in 0..self.table.len() {
            values.push(r.read_i8()?);
        }
        r.end_section()?;
        r.begin_section()?;
        let words = read_history(&mut r, self.history.words().len())?;
        r.end_section()?;
        r.finish()?;
        for (ctr, value) in self.table.iter_mut().zip(values) {
            ctr.set(value);
        }
        self.history.load_words(&words);
        Ok(())
    }

    fn spec_digest(&self) -> u64 {
        fnv1a64(self.spec_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut GsharePredictor, pc: u64, outcomes: &[bool], reps: usize) {
        for _ in 0..reps {
            for &taken in outcomes {
                let pred = p.predict(pc);
                p.update(pc, taken, &pred);
            }
        }
    }

    #[test]
    fn learns_history_correlated_pattern() {
        // A strict alternation is unpredictable for bimodal but trivial for
        // gshare once the history disambiguates the two contexts.
        let mut gshare = GsharePredictor::new(12, 8);
        let mut bimodal = crate::BimodalPredictor::new(12);
        let pattern = [true, false];
        let mut gshare_wrong = 0;
        let mut bimodal_wrong = 0;
        for i in 0..2000 {
            let taken = pattern[i % 2];
            let gp = gshare.predict(0x9000);
            let bp = bimodal.predict(0x9000);
            if gp.taken != taken {
                gshare_wrong += 1;
            }
            if bp.taken != taken {
                bimodal_wrong += 1;
            }
            gshare.update(0x9000, taken, &gp);
            bimodal.update(0x9000, taken, &bp);
        }
        assert!(
            gshare_wrong * 4 < bimodal_wrong,
            "gshare {gshare_wrong} vs bimodal {bimodal_wrong}"
        );
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = GsharePredictor::new(10, 10);
        train(&mut p, 0x100, &[true], 20);
        assert!(p.predict(0x100).taken);
    }

    #[test]
    fn index_depends_on_history() {
        let mut p = GsharePredictor::new(12, 12);
        let before = p.index(0x5555);
        let pred = p.predict(0x5555);
        p.update(0x5555, true, &pred);
        let after = p.index(0x5555);
        assert_ne!(before, after, "pushing history must change the index");
    }

    #[test]
    fn storage_accounts_table_and_history() {
        let p = GsharePredictor::new(10, 16);
        assert_eq!(p.storage_bits(), 1024 * 2 + 16);
    }

    #[test]
    #[should_panic(expected = "history_bits must be in 1..=64")]
    fn rejects_zero_history() {
        GsharePredictor::new(10, 0);
    }

    #[test]
    fn name_and_history_accessors() {
        let p = GsharePredictor::new(10, 12);
        assert_eq!(p.history_bits(), 12);
        assert_eq!(p.history().capacity(), 12);
        assert!(p.name().contains("gshare"));
    }
}
