//! The unified confidence-scheme interface consumed by the simulation
//! engine.
//!
//! The workspace has two families of confidence estimation:
//!
//! * the paper's **storage-free TAGE classification**
//!   ([`TageConfidenceClassifier`]), which grades a prediction by observing
//!   the rich [`TagePrediction`] output (provider component, counter value)
//!   and yields one of the 7 [`PredictionClass`]es;
//! * the **storage-based baselines** ([`crate::estimators`]), which grade
//!   the flat margin-carrying [`Prediction`] of any [`BranchPredictor`] and
//!   yield only a [`ConfidenceLevel`].
//!
//! [`ConfidenceScheme`] puts both behind one interface, generic over the
//! predictor's lookup type, so the generic `tage_sim::engine::SimEngine`
//! drives either through the identical code path. The scheme's verdict is an
//! [`Assessment`]: always a level, plus the fine-grained class when the
//! scheme can provide one.
//!
//! [`BranchPredictor`]: tage_predictors::BranchPredictor

use tage::TagePrediction;
use tage_predictors::Prediction;

use crate::class::{ConfidenceLevel, PredictionClass};
use crate::classifier::TageConfidenceClassifier;
use crate::estimators::ConfidenceEstimator;

/// The verdict a confidence scheme renders on one prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assessment {
    /// The three-way confidence level (always available).
    pub level: ConfidenceLevel,
    /// The fine-grained prediction class, when the scheme distinguishes one
    /// (the storage-free TAGE classification does; binary/ternary baseline
    /// estimators do not).
    pub class: Option<PredictionClass>,
}

impl Assessment {
    /// An assessment carrying a full prediction class; the level is the
    /// class's paper grouping.
    pub fn from_class(class: PredictionClass) -> Self {
        Assessment {
            level: class.level(),
            class: Some(class),
        }
    }

    /// An assessment carrying only a confidence level.
    pub fn level_only(level: ConfidenceLevel) -> Self {
        Assessment { level, class: None }
    }

    /// Returns `true` for a high-confidence assessment.
    pub fn is_high(&self) -> bool {
        self.level == ConfidenceLevel::High
    }
}

/// A confidence scheme attached to a predictor whose lookups have type `L`.
///
/// The protocol mirrors the predictor protocol and is what the simulation
/// engine drives for every conditional branch:
///
/// 1. [`ConfidenceScheme::assess`] with the lookup, *before* resolution
///    (this is what a real front-end would consume);
/// 2. [`ConfidenceScheme::observe`] with the resolved outcome, so stateful
///    schemes (the `medium-conf-bim` recency window, the JRS counters) can
///    learn.
pub trait ConfidenceScheme<L> {
    /// Grades one prediction before the branch resolves. Must not depend on
    /// the outcome.
    fn assess(&mut self, pc: u64, lookup: &L) -> Assessment;

    /// Feeds the resolved outcome back to the scheme.
    fn observe(&mut self, pc: u64, lookup: &L, taken: bool);

    /// Clears all dynamic state (e.g. between traces).
    fn reset(&mut self);

    /// Extra storage the scheme requires, in bits (zero for storage-free
    /// schemes).
    fn storage_bits(&self) -> u64 {
        0
    }

    /// A short human-readable name for reports.
    fn name(&self) -> String;
}

impl<L, S: ConfidenceScheme<L> + ?Sized> ConfidenceScheme<L> for &mut S {
    fn assess(&mut self, pc: u64, lookup: &L) -> Assessment {
        (**self).assess(pc, lookup)
    }

    fn observe(&mut self, pc: u64, lookup: &L, taken: bool) {
        (**self).observe(pc, lookup, taken)
    }

    fn reset(&mut self) {
        (**self).reset()
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

/// The storage-free TAGE classification as a [`ConfidenceScheme`]: grades
/// the rich [`TagePrediction`] lookup into one of the paper's 7 classes.
impl ConfidenceScheme<TagePrediction> for TageConfidenceClassifier {
    fn assess(&mut self, _pc: u64, lookup: &TagePrediction) -> Assessment {
        Assessment::from_class(self.classify(lookup))
    }

    fn observe(&mut self, _pc: u64, lookup: &TagePrediction, taken: bool) {
        TageConfidenceClassifier::observe(self, lookup, taken)
    }

    fn reset(&mut self) {
        TageConfidenceClassifier::reset(self)
    }

    fn name(&self) -> String {
        "storage-free-tage".to_string()
    }
}

/// Adapts any [`ConfidenceEstimator`] — concrete, `&mut` reference or trait
/// object — to the [`ConfidenceScheme`] interface over flat margin-carrying
/// [`Prediction`] lookups.
///
/// # Example
///
/// ```
/// use tage_confidence::estimators::JrsEstimator;
/// use tage_confidence::scheme::{ConfidenceScheme, EstimatorScheme};
/// use tage_predictors::Prediction;
///
/// let mut scheme = EstimatorScheme(JrsEstimator::classic(10));
/// let assessment = scheme.assess(0x44, &Prediction::new(true, 0));
/// assert!(assessment.class.is_none(), "baselines carry no class");
/// ```
#[derive(Debug)]
pub struct EstimatorScheme<E>(pub E);

impl<E: ConfidenceEstimator> ConfidenceScheme<Prediction> for EstimatorScheme<E> {
    fn assess(&mut self, pc: u64, lookup: &Prediction) -> Assessment {
        Assessment::level_only(self.0.estimate(pc, lookup))
    }

    fn observe(&mut self, pc: u64, lookup: &Prediction, taken: bool) {
        self.0.update(pc, lookup, taken)
    }

    fn reset(&mut self) {
        self.0.reset()
    }

    fn storage_bits(&self) -> u64 {
        self.0.storage_bits()
    }

    fn name(&self) -> String {
        self.0.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::SelfConfidenceEstimator;
    use tage::{TageConfig, TagePredictor};

    #[test]
    fn assessment_constructors() {
        let classed = Assessment::from_class(PredictionClass::Stag);
        assert_eq!(classed.level, ConfidenceLevel::High);
        assert_eq!(classed.class, Some(PredictionClass::Stag));
        assert!(classed.is_high());

        let bare = Assessment::level_only(ConfidenceLevel::Low);
        assert_eq!(bare.class, None);
        assert!(!bare.is_high());
    }

    #[test]
    fn classifier_scheme_matches_direct_classification() {
        let config = TageConfig::small();
        let mut predictor = TagePredictor::new(config.clone());
        let mut direct = TageConfidenceClassifier::new(&config);
        let mut scheme = TageConfidenceClassifier::new(&config);
        for i in 0..500u64 {
            let pc = 0x4000 + (i % 13) * 8;
            let taken = i % 3 != 0;
            let lookup = predictor.predict(pc);
            let class = direct.classify_and_observe(&lookup, taken);
            let assessment = scheme.assess(pc, &lookup);
            ConfidenceScheme::observe(&mut scheme, pc, &lookup, taken);
            assert_eq!(assessment, Assessment::from_class(class));
            predictor.update(pc, taken, &lookup);
        }
        assert_eq!(ConfidenceScheme::storage_bits(&scheme), 0);
        assert!(ConfidenceScheme::name(&scheme).contains("storage-free"));
    }

    #[test]
    fn estimator_scheme_forwards_and_resets() {
        let mut scheme = EstimatorScheme(SelfConfidenceEstimator::new(10));
        let strong = Prediction::new(true, 50);
        let weak = Prediction::new(true, 1);
        assert!(scheme.assess(0x10, &strong).is_high());
        assert_eq!(scheme.assess(0x10, &weak).level, ConfidenceLevel::Low);
        scheme.observe(0x10, &strong, true);
        scheme.reset();
        assert_eq!(ConfidenceScheme::storage_bits(&scheme), 0);
        assert!(ConfidenceScheme::name(&scheme).contains("self-confidence"));
    }

    #[test]
    fn schemes_work_through_mutable_references_and_trait_objects() {
        let config = TageConfig::small();
        let mut classifier = TageConfidenceClassifier::new(&config);
        // &mut forwarding.
        let via_ref: &mut TageConfidenceClassifier = &mut classifier;
        let _ = ConfidenceScheme::name(&via_ref);
        via_ref.reset();

        // Estimator trait objects adapt through the same wrapper.
        let mut concrete = SelfConfidenceEstimator::new(10);
        let dyn_estimator: &mut dyn ConfidenceEstimator = &mut concrete;
        let mut scheme = EstimatorScheme(dyn_estimator);
        assert!(scheme.assess(0, &Prediction::new(true, 99)).is_high());
    }
}
