//! Plain-text table rendering for the experiment binaries.

use core::fmt::Write as _;

/// A simple fixed-width text table builder used by the `tage-bench`
/// binaries to print paper-style tables.
///
/// # Example
///
/// ```
/// use tage_sim::report::TextTable;
///
/// let mut table = TextTable::new(vec!["trace", "MPKI"]);
/// table.row(vec!["FP-1".to_string(), "0.42".to_string()]);
/// let rendered = table.render();
/// assert!(rendered.contains("FP-1"));
/// assert!(rendered.contains("MPKI"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        TextTable {
            headers: headers.into_iter().map(str::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:<width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&self.headers, &mut out);
        for (i, width) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<w$}", "", w = width + 2);
            if i == widths.len() - 1 {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Formats a fraction as the paper does in Tables 2/3 (three decimals).
pub fn fraction(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a misprediction rate in MKP with no decimals (paper style).
pub fn mkp(x: f64) -> String {
    format!("{x:.0}")
}

/// Formats an MPKI value with two decimals.
pub fn mpki(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a probability as `1/n` when it is (close to) a power of two, or
/// as a decimal otherwise.
pub fn probability(p: f64) -> String {
    if p <= 0.0 {
        return "0".to_string();
    }
    let inverse = 1.0 / p;
    let rounded = inverse.round();
    if (inverse - rounded).abs() < 1e-9 && rounded >= 1.0 {
        format!("1/{}", rounded as u64)
    } else {
        format!("{p:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a-very-long-name".to_string(), "1".to_string()]);
        t.row(vec!["b".to_string(), "2".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines have the same width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()), "{s}");
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_and_long_rows_are_normalised() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["1".to_string()]);
        t.row(vec![
            "1".to_string(),
            "2".to_string(),
            "3".to_string(),
            "4".to_string(),
        ]);
        let s = t.render();
        assert!(s.contains("| 1 "));
        assert!(!s.contains('4'), "overflow cell should be dropped: {s}");
    }

    #[test]
    fn formatters() {
        assert_eq!(fraction(0.69), "0.690");
        assert_eq!(mkp(306.4), "306");
        assert_eq!(mpki(4.214), "4.21");
        assert_eq!(probability(1.0 / 128.0), "1/128");
        assert_eq!(probability(1.0), "1/1");
        assert_eq!(probability(0.0), "0");
        assert_eq!(probability(0.3), "0.3000");
    }
}
