//! Misprediction-recovery **energy model**, driven by confidence classes.
//!
//! Pipeline flush-and-refill is one of the dominant dynamic-energy costs a
//! branch misprediction incurs, and confidence estimation is the classic
//! lever on it (Manne et al.): a core that knows which predictions are
//! shaky can spend a small amount of energy up front (taking a rename/RAT
//! checkpoint at the shaky branch) to make the eventual recovery far
//! cheaper than a full front-end refill.
//!
//! [`RecoveryEnergyObserver`] charges that model per branch, simultaneously
//! for two machines over the *same* prediction stream:
//!
//! * the **baseline** machine has no confidence information: every
//!   misprediction pays the full refill energy;
//! * the **confidence-driven** machine checkpoints every branch the scheme
//!   grades below high confidence (paying the checkpoint energy whether or
//!   not the branch mispredicts) and recovers through the checkpoint when
//!   such a branch mispredicts; high-confidence mispredictions — rare by
//!   construction — still pay the full refill.
//!
//! Energy is reported per kilo-instruction (EPKI) off the measured
//! instruction stream, which the observer accounts itself from both
//! delivery paths ([`BranchEvent::instructions`] for conditional records,
//! [`EngineObserver::on_instructions`] for the rest) — each instruction
//! exactly once, the contract `crate::engine`'s accounting tests pin.

use tage_confidence::ConfidenceLevel;
use tage_predictors::PredictorCore;

use crate::engine::{BranchEvent, EngineObserver};
use crate::per_kilo_instruction;

/// Energy cost parameters, in nanojoules. The defaults are illustrative
/// magnitudes for a 4-wide core (a full refill re-fetches ≈ 64 slots; a
/// checkpoint is a few register-file writes), not silicon measurements —
/// what the scenario studies is the *ratio* structure, which is robust to
/// the absolute scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEnergyModel {
    /// Energy of a full pipeline flush + front-end refill on a
    /// misprediction without a checkpoint.
    pub refill_nj: f64,
    /// Energy of taking a checkpoint at a non-high-confidence branch
    /// (charged per such branch, mispredicted or not).
    pub checkpoint_nj: f64,
    /// Energy of recovering through a checkpoint when a checkpointed branch
    /// mispredicts.
    pub checkpoint_recovery_nj: f64,
}

impl Default for RecoveryEnergyModel {
    fn default() -> Self {
        RecoveryEnergyModel {
            refill_nj: 8.0,
            checkpoint_nj: 0.25,
            checkpoint_recovery_nj: 2.0,
        }
    }
}

/// Per-confidence-level branch and misprediction counters (indexed in
/// [`ConfidenceLevel::ALL`] order: low, medium, high).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Predictions graded at each level.
    pub predictions: [u64; 3],
    /// Mispredictions among them.
    pub mispredictions: [u64; 3],
}

fn level_index(level: ConfidenceLevel) -> usize {
    match level {
        ConfidenceLevel::Low => 0,
        ConfidenceLevel::Medium => 1,
        ConfidenceLevel::High => 2,
    }
}

/// The recovery-energy accounting as a generic engine observer: attach it to
/// any predictor × confidence-scheme run and read the per-kilo-instruction
/// energy of the baseline vs the confidence-driven recovery machine.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEnergyObserver {
    model: RecoveryEnergyModel,
    /// Measured conditional branches.
    pub branches: u64,
    /// Measured instructions (both delivery paths, each counted once).
    pub instructions: u64,
    /// Checkpoints the confidence-driven machine took.
    pub checkpoints: u64,
    /// Recovery + checkpoint energy of the baseline machine.
    pub baseline_nj: f64,
    /// Recovery + checkpoint energy of the confidence-driven machine.
    pub confidence_nj: f64,
    /// Per-level prediction/misprediction counters.
    pub levels: LevelCounts,
}

impl RecoveryEnergyObserver {
    /// An observer charging the given cost model.
    pub fn new(model: RecoveryEnergyModel) -> Self {
        RecoveryEnergyObserver {
            model,
            branches: 0,
            instructions: 0,
            checkpoints: 0,
            baseline_nj: 0.0,
            confidence_nj: 0.0,
            levels: LevelCounts::default(),
        }
    }

    /// The cost model in effect.
    pub fn model(&self) -> &RecoveryEnergyModel {
        &self.model
    }

    /// Baseline recovery energy per kilo-instruction.
    pub fn baseline_epki(&self) -> f64 {
        per_kilo_instruction(self.baseline_nj, self.instructions)
    }

    /// Confidence-driven recovery energy per kilo-instruction.
    pub fn confidence_epki(&self) -> f64 {
        per_kilo_instruction(self.confidence_nj, self.instructions)
    }

    /// Fraction of the baseline recovery energy the confidence-driven
    /// machine saves, in percent — negative when the checkpoint overhead
    /// loses. A savings *fraction* is undefined against a zero baseline
    /// (nothing mispredicted, so nothing to save); by convention this
    /// returns 0 then, even when the confidence machine spent checkpoint
    /// energy — compare the raw [`RecoveryEnergyObserver::baseline_nj`] /
    /// [`RecoveryEnergyObserver::confidence_nj`] fields for that case.
    pub fn savings_pct(&self) -> f64 {
        if self.baseline_nj == 0.0 {
            0.0
        } else {
            (self.baseline_nj - self.confidence_nj) * 100.0 / self.baseline_nj
        }
    }
}

impl Default for RecoveryEnergyObserver {
    fn default() -> Self {
        RecoveryEnergyObserver::new(RecoveryEnergyModel::default())
    }
}

impl<P: PredictorCore> EngineObserver<P> for RecoveryEnergyObserver {
    fn on_branch(&mut self, _predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
        if !event.in_measurement {
            return;
        }
        self.branches += 1;
        self.instructions += event.instructions;
        let index = level_index(event.assessment.level);
        self.levels.predictions[index] += 1;
        if event.mispredicted {
            self.levels.mispredictions[index] += 1;
            self.baseline_nj += self.model.refill_nj;
        }
        if event.assessment.is_high() {
            if event.mispredicted {
                self.confidence_nj += self.model.refill_nj;
            }
        } else {
            self.checkpoints += 1;
            self.confidence_nj += self.model.checkpoint_nj;
            if event.mispredicted {
                self.confidence_nj += self.model.checkpoint_recovery_nj;
            }
        }
    }

    fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
        if in_measurement {
            self.instructions += instructions;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::{CounterAutomaton, TageConfig, TagePredictor};
    use tage_confidence::TageConfidenceClassifier;

    use crate::engine::SimEngine;

    fn run(branches: usize) -> (RecoveryEnergyObserver, crate::engine::EngineSummary) {
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let trace = tage_traces::suites::cbp1_like()
            .trace("MM-5")
            .unwrap()
            .generate(branches);
        let mut engine = SimEngine::new(
            TagePredictor::new(config.clone()),
            TageConfidenceClassifier::new(&config),
        );
        let mut observer = RecoveryEnergyObserver::default();
        let summary = engine.run(&trace, &mut observer);
        (observer, summary)
    }

    #[test]
    fn energy_accounting_matches_the_engine_summary() {
        let (observer, summary) = run(20_000);
        assert_eq!(observer.branches, summary.measured_branches);
        assert_eq!(observer.instructions, summary.measured_instructions);
        let mispredictions: u64 = observer.levels.mispredictions.iter().sum();
        assert_eq!(mispredictions, summary.measured_mispredictions);
        let predictions: u64 = observer.levels.predictions.iter().sum();
        assert_eq!(predictions, summary.measured_branches);
        // Baseline energy is exactly refills × mispredictions.
        let expected = mispredictions as f64 * RecoveryEnergyModel::default().refill_nj;
        assert!((observer.baseline_nj - expected).abs() < 1e-9);
    }

    #[test]
    fn confidence_driven_recovery_saves_energy_on_a_mispredicting_trace() {
        // Low-confidence classes concentrate the mispredictions (the paper's
        // core claim), so cheap checkpointed recovery on them beats paying
        // the full refill every time.
        let (observer, _) = run(30_000);
        assert!(observer.checkpoints > 0);
        assert!(
            observer.confidence_nj < observer.baseline_nj,
            "confidence {} nJ vs baseline {} nJ",
            observer.confidence_nj,
            observer.baseline_nj
        );
        assert!(observer.savings_pct() > 0.0);
        assert!(observer.baseline_epki() > observer.confidence_epki());
    }

    #[test]
    fn epki_is_per_kilo_instruction() {
        let (observer, summary) = run(5_000);
        let expected = observer.baseline_nj * 1000.0 / summary.measured_instructions as f64;
        assert!((observer.baseline_epki() - expected).abs() < 1e-12);
        let empty = RecoveryEnergyObserver::default();
        assert_eq!(empty.baseline_epki(), 0.0);
        assert_eq!(empty.savings_pct(), 0.0);
    }
}
