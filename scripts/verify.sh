#!/usr/bin/env bash
# Full verification: formatting, lints, build, tests and a throughput smoke.
# This is what CI runs; keep it green before every commit.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q =="
cargo build --release
cargo test -q

echo "== throughput smoke =="
cargo run --release --bin throughput 50000 BENCH_throughput.json

echo "verify: OK"
