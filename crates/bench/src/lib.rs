//! Benchmark harness: shared helpers for the table/figure regeneration
//! binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). They all accept an optional
//! first argument: the number of conditional branches to simulate per trace
//! (the traces in the paper are ~30 M instructions long; the default here is
//! chosen so a full binary completes in seconds to minutes on a laptop).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Default number of conditional branches simulated per trace by the
/// experiment binaries.
pub const DEFAULT_BRANCHES_PER_TRACE: usize = 200_000;

/// Reads the branches-per-trace count from the first CLI argument, falling
/// back to [`DEFAULT_BRANCHES_PER_TRACE`].
pub fn branches_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.replace('_', "").parse().ok())
        .unwrap_or(DEFAULT_BRANCHES_PER_TRACE)
}

/// Prints the standard experiment header used by every binary.
pub fn print_header(what: &str, branches: usize) {
    println!("== {what} ==");
    println!(
        "synthetic CBP-1-like / CBP-2-like workloads, {branches} conditional branches per trace"
    );
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_used_without_args() {
        // The test binary receives its own args; just check the helper does
        // not panic and returns a positive count.
        assert!(branches_from_args() > 0);
    }
}
