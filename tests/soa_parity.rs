//! Exact-parity suite: the structure-of-arrays [`TagePredictor`] against the
//! nested-`Vec` [`ReferenceTagePredictor`] kept as executable specification.
//!
//! The SoA refactor re-arranged the predictor's storage and replaced every
//! per-lookup heap allocation with fixed-size stack scratch. None of that is
//! allowed to change observable behaviour: these property-style tests (same
//! deterministic [`SplitMix64`] case-generation style as `properties.rs`, no
//! external deps) drive both implementations in lockstep and require
//! bit-identical [`TagePrediction`]s — including the per-table lookup
//! metadata — identical statistics, and identical `USE_ALT_ON_NA` movement.

use tage_confidence_suite::tage::{
    CounterAutomaton, ReferenceTagePredictor, TageConfig, TagePrediction, TagePredictor,
};
use tage_confidence_suite::traces::{suites, SplitMix64};

/// Number of pseudo-random cases per property.
const CASES: u64 = 25;

/// Runs `body` over `CASES` independent pseudo-random generators, reporting
/// the failing seed so a case can be replayed in isolation.
fn for_each_case(property: &str, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let seed = 0x50a_0000 + case * 0x9e37;
        let mut rng = SplitMix64::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property `{property}` failed for seed {seed:#x}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Draws a valid, deliberately varied configuration: table count, index
/// width, counter widths, automaton and reset period all move so the parity
/// sweep exercises allocation, aging, graceful reset and the probabilistic
/// automaton (which consumes the shared RNG stream).
fn arbitrary_config(rng: &mut SplitMix64) -> TageConfig {
    let num_tables = 1 + rng.next_below(8) as usize;
    let max_history = 20 + rng.next_below(120) as usize;
    let automaton = if rng.chance(0.5) {
        CounterAutomaton::Standard
    } else {
        CounterAutomaton::probabilistic(1 + rng.next_below(7) as u32)
    };
    TageConfig::small()
        .to_builder()
        .num_tagged_tables(num_tables)
        .tagged_index_bits(4 + rng.next_below(5) as u32)
        .tag_bits(6 + rng.next_below(6) as u32)
        .counter_bits(2 + rng.next_below(3) as u8)
        .min_history(2 + rng.next_below(4) as usize)
        .max_history(max_history)
        .useful_reset_period(128 + rng.next_below(512))
        .automaton(automaton)
        .rng_seed(rng.next_u64())
        .build()
        .expect("arbitrary config is valid")
}

/// Asserts full observable equality after one lockstep step and returns the
/// (shared) prediction.
fn step_both(
    fast: &mut TagePredictor,
    reference: &mut ReferenceTagePredictor,
    pc: u64,
    taken: bool,
) -> TagePrediction {
    let fast_prediction = fast.predict(pc);
    let reference_prediction = reference.predict(pc);
    assert_eq!(
        fast_prediction, reference_prediction,
        "lookup diverged at pc {pc:#x}"
    );
    fast.update(pc, taken, &fast_prediction);
    reference.update(pc, taken, &reference_prediction);
    assert_eq!(fast.stats(), reference.stats(), "stats diverged");
    assert_eq!(
        fast.use_alt_on_na(),
        reference.use_alt_on_na(),
        "USE_ALT_ON_NA diverged"
    );
    fast_prediction
}

#[test]
fn soa_predictor_matches_reference_on_random_streams() {
    for_each_case("soa_vs_reference_random_streams", |rng| {
        let config = arbitrary_config(rng);
        let mut fast = TagePredictor::new(config.clone());
        let mut reference = ReferenceTagePredictor::new(config);
        // A small PC pool with mixed biases: plenty of hits, mispredictions
        // and therefore allocations and useful-counter traffic.
        let pool = 1 + rng.next_below(48);
        let bias = 0.1 + 0.8 * rng.next_f64();
        for _ in 0..4_000 {
            let pc = 0x40_0000 + rng.next_below(pool) * 4;
            let taken = rng.chance(if pc % 8 == 0 { bias } else { 1.0 - bias });
            step_both(&mut fast, &mut reference, pc, taken);
        }
        assert!(fast.stats().updates == 4_000);
    });
}

#[test]
fn soa_predictor_matches_reference_on_seeded_trace_mixes() {
    // Lockstep over real synthetic workloads: one trace from each suite per
    // paper preset, enough branches to trigger allocation and aging.
    let presets = [
        TageConfig::small(),
        TageConfig::medium(),
        TageConfig::large().with_automaton(CounterAutomaton::paper_default()),
    ];
    for (i, config) in presets.into_iter().enumerate() {
        let suite = if i % 2 == 0 {
            suites::cbp1_like()
        } else {
            suites::cbp2_like()
        };
        let trace = suite.traces()[i % suite.traces().len()].generate(6_000);
        let mut fast = TagePredictor::new(config.clone());
        let mut reference = ReferenceTagePredictor::new(config);
        for record in trace.iter().filter(|r| r.kind.is_conditional()) {
            step_both(&mut fast, &mut reference, record.pc, record.taken);
        }
        assert_eq!(fast.stats(), reference.stats());
        assert!(
            fast.stats().allocations > 0,
            "sweep must exercise allocation"
        );
    }
}

#[test]
fn soa_parity_survives_graceful_useful_reset() {
    // A tiny reset period forces many graceful-reset sweeps, pinning the
    // flat clear_useful_bit pass against the nested per-table loops.
    let config = TageConfig::small()
        .to_builder()
        .useful_reset_period(64)
        .build()
        .unwrap();
    let mut fast = TagePredictor::new(config.clone());
    let mut reference = ReferenceTagePredictor::new(config);
    let mut rng = SplitMix64::new(0xdead_5eed);
    for i in 0..2_000u64 {
        let pc = 0x60_0000 + (i % 32) * 8;
        let taken = rng.chance(0.5);
        step_both(&mut fast, &mut reference, pc, taken);
    }
    assert!(fast.stats().useful_resets >= 10);
}

/// `predict` must keep its `&self` receiver: taking it through a shared
/// reference is a compile-time regression test that the hot path cannot
/// mutate (or allocate scratch inside) the predictor.
fn predict_through_shared_ref(predictor: &TagePredictor, pc: u64) -> TagePrediction {
    predictor.predict(pc)
}

#[test]
fn predict_takes_shared_self_and_stays_pure() {
    let mut predictor = TagePredictor::new(TageConfig::medium());
    let mut rng = SplitMix64::new(7);
    for i in 0..3_000u64 {
        let pc = 0x70_0000 + (i % 64) * 4;
        let taken = rng.chance(0.7);
        let prediction = predictor.predict(pc);
        predictor.update(pc, taken, &prediction);
    }
    // Repeated shared-reference lookups are bit-identical, and interleaved
    // lookups of other PCs do not perturb them.
    let first = predict_through_shared_ref(&predictor, 0x70_0000);
    for other in 0..64u64 {
        let _ = predict_through_shared_ref(&predictor, 0x70_0000 + other * 4);
    }
    let second = predict_through_shared_ref(&predictor, 0x70_0000);
    assert_eq!(first, second, "predict must not mutate observable state");
    let stats_before = predictor.stats();
    let _ = predictor.predict(0x70_0004);
    assert_eq!(predictor.stats(), stats_before);
}
