//! Declarative per-table predictor geometry.
//!
//! [`crate::TageConfig`] describes the paper's Table-1 presets: every tagged
//! component shares one entry count, one tag width and the geometric history
//! series. Real cores (and design-space exploration) need more freedom —
//! per-table entry counts, tag widths, explicit history vectors, and
//! hash-fold footprints that differ from the table's own index width.
//!
//! [`TageGeometry`] is that generalization: a fully data-driven description
//! of one TAGE predictor, loadable from and savable to a small JSON file
//! (via the std-only `tage_traces::jsonish` helpers — no JSON dependency),
//! with exact storage accounting. Both [`crate::TagePredictor`] and
//! [`crate::LaneGroup`] construct from *anything* implementing
//! [`TageBlueprint`]; a uniform geometry derived from a `TageConfig`
//! produces a bit-identical predictor (pinned by `tests/geometry_parity.rs`),
//! so the legacy constructor menu is now a thin preset layer over this
//! module.

use core::fmt;
use std::path::Path;

use tage_traces::jsonish;
use tage_traces::snapshot::fnv1a64;

use crate::automaton::CounterAutomaton;
use crate::config::TageConfig;
use crate::prediction::MAX_TAGGED_TABLES;

/// Geometry of one tagged component: entry count, tag width, the global
/// history length it consumes, and the widths of its three folded-history
/// registers (index XOR-fold plus the two tag folds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableGeometry {
    /// log2 of the number of entries of this component.
    pub index_bits: u32,
    /// Width of the partial tags, in bits.
    pub tag_bits: u32,
    /// Global history length consumed by this component.
    pub history_length: usize,
    /// Compressed width of the index folded-history register (the legacy
    /// uniform geometry uses `index_bits`).
    pub index_fold_bits: u32,
    /// Compressed width of the primary tag folded-history register (legacy:
    /// `tag_bits`).
    pub tag_fold_bits: u32,
    /// Compressed width of the secondary tag folded-history register,
    /// XORed in shifted left by one (legacy: `max(tag_bits - 1, 1)`).
    pub tag_fold2_bits: u32,
}

impl TableGeometry {
    /// The legacy fold footprints for an `(index_bits, tag_bits)` pair:
    /// index fold as wide as the index, tag folds of `tag_bits` and
    /// `tag_bits - 1` (never below one).
    pub fn uniform(index_bits: u32, tag_bits: u32, history_length: usize) -> Self {
        TableGeometry {
            index_bits,
            tag_bits,
            history_length,
            index_fold_bits: index_bits,
            tag_fold_bits: tag_bits,
            tag_fold2_bits: (tag_bits.saturating_sub(1)).max(1),
        }
    }

    /// Number of entries of this component.
    pub fn entries(&self) -> u64 {
        1u64 << self.index_bits
    }

    /// Storage of one entry in bits (counter + tag + useful).
    pub fn entry_bits(&self, counter_bits: u8, useful_bits: u8) -> u64 {
        u64::from(counter_bits) + u64::from(self.tag_bits) + u64::from(useful_bits)
    }
}

/// A complete, data-driven TAGE predictor geometry.
///
/// Unlike [`TageConfig`], every tagged component carries its own
/// [`TableGeometry`], the history vector is explicit (no geometric-series
/// constraint), and an optional path-history register can be folded into
/// the index hash. Report names are *derived* from the geometry
/// ([`TageGeometry::name`]) so a renamed preset can never drift from its
/// storage accounting.
///
/// # Example
///
/// ```
/// use tage::{TageConfig, TageGeometry};
///
/// let geometry = TageGeometry::from_config(&TageConfig::small());
/// assert_eq!(geometry.storage_bits(), 16 * 1024);
/// assert_eq!(geometry.name(), "TAGE-16K");
/// let json = geometry.to_json();
/// assert_eq!(TageGeometry::from_json(&json).unwrap(), geometry);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TageGeometry {
    /// Per-component geometry, ordered by strictly increasing history
    /// length (rank 0 = shortest history).
    pub tables: Vec<TableGeometry>,
    /// Width of the tagged prediction counters, in bits.
    pub counter_bits: u8,
    /// Width of the useful counters, in bits.
    pub useful_bits: u8,
    /// log2 of the number of entries of the bimodal base predictor.
    pub bimodal_index_bits: u32,
    /// Width of the bimodal counters, in bits.
    pub bimodal_counter_bits: u8,
    /// Width of the path-history register XORed into the index hash
    /// (0 disables path history — the legacy behaviour).
    pub path_history_bits: u32,
    /// Width of the `USE_ALT_ON_NA` counter, in bits.
    pub use_alt_on_na_bits: u8,
    /// Updates between two graceful useful-counter reset steps.
    pub useful_reset_period: u64,
    /// The counter-update automaton used by the tagged components.
    pub automaton: CounterAutomaton,
    /// Seed of the predictor's internal pseudo-random source.
    pub rng_seed: u64,
}

/// Schema version of the geometry JSON files.
pub const GEOMETRY_SCHEMA: u32 = 1;

/// Derives the canonical report name of a predictor from its storage
/// accounting: `TAGE-16K` for whole-Kbit budgets, `TAGE-{bits}b-{tables}T`
/// otherwise. This is the **single** place report names come from —
/// [`TageConfig`] and [`TageGeometry`] both delegate here, so a preset's
/// name can never drift from its actual storage.
pub fn derived_name(storage_bits: u64, tagged_tables: usize) -> String {
    if storage_bits > 0 && storage_bits.is_multiple_of(1024) {
        format!("TAGE-{}K", storage_bits / 1024)
    } else {
        format!("TAGE-{storage_bits}b-{tagged_tables}T")
    }
}

impl TageGeometry {
    /// Expands a uniform [`TageConfig`] into its explicit geometry: one
    /// [`TableGeometry`] per tagged component with the legacy fold
    /// footprints, the geometric history series, and no path history.
    ///
    /// A predictor built from this geometry is bit-identical to one built
    /// from `config` directly.
    pub fn from_config(config: &TageConfig) -> Self {
        let tables = config
            .history_lengths()
            .into_iter()
            .map(|length| TableGeometry::uniform(config.tagged_index_bits, config.tag_bits, length))
            .collect();
        TageGeometry {
            tables,
            counter_bits: config.counter_bits,
            useful_bits: config.useful_bits,
            bimodal_index_bits: config.bimodal_index_bits,
            bimodal_counter_bits: config.bimodal_counter_bits,
            path_history_bits: 0,
            use_alt_on_na_bits: config.use_alt_on_na_bits,
            useful_reset_period: config.useful_reset_period,
            automaton: config.automaton,
            rng_seed: config.rng_seed,
        }
    }

    /// Number of tagged components.
    pub fn num_tagged_tables(&self) -> usize {
        self.tables.len()
    }

    /// The per-component history lengths, shortest first.
    pub fn history_lengths(&self) -> Vec<usize> {
        self.tables.iter().map(|t| t.history_length).collect()
    }

    /// The longest history length consumed by any component.
    pub fn max_history(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.history_length)
            .max()
            .unwrap_or(0)
    }

    /// The shortest history length consumed by any component.
    pub fn min_history(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.history_length)
            .min()
            .unwrap_or(0)
    }

    /// Number of entries of the bimodal base predictor.
    pub fn bimodal_entries(&self) -> usize {
        1 << self.bimodal_index_bits
    }

    /// Total predictor storage in bits: every tagged component's
    /// `entries × (counter + tag + useful)` plus the bimodal table. The
    /// handful of extra state bits are reported separately by
    /// [`TageGeometry::ancillary_bits`], as is conventional.
    pub fn storage_bits(&self) -> u64 {
        let tagged: u64 = self
            .tables
            .iter()
            .map(|t| t.entries() * t.entry_bits(self.counter_bits, self.useful_bits))
            .sum();
        tagged + self.bimodal_entries() as u64 * u64::from(self.bimodal_counter_bits)
    }

    /// Ancillary state in bits: global history, path history,
    /// `USE_ALT_ON_NA`, and the useful-reset tick counter.
    pub fn ancillary_bits(&self) -> u64 {
        self.max_history() as u64
            + u64::from(self.path_history_bits)
            + u64::from(self.use_alt_on_na_bits)
            + 20
    }

    /// The derived report name of this geometry (see [`derived_name`]).
    pub fn name(&self) -> String {
        derived_name(self.storage_bits(), self.num_tagged_tables())
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.tables.is_empty() {
            return Err("at least one tagged table is required".to_string());
        }
        if self.tables.len() > MAX_TAGGED_TABLES {
            return Err(format!(
                "more than {MAX_TAGGED_TABLES} tagged tables is not supported \
                 (the prediction scratch is sized for at most that many)"
            ));
        }
        for (t, table) in self.tables.iter().enumerate() {
            if !(1..=24).contains(&table.index_bits) {
                return Err(format!("table {t}: index_bits must be in 1..=24"));
            }
            if !(4..=16).contains(&table.tag_bits) {
                return Err(format!("table {t}: tag_bits must be in 4..=16"));
            }
            if table.history_length == 0 || table.history_length > 1024 {
                return Err(format!("table {t}: history_length must be in 1..=1024"));
            }
            for (what, bits) in [
                ("index_fold_bits", table.index_fold_bits),
                ("tag_fold_bits", table.tag_fold_bits),
                ("tag_fold2_bits", table.tag_fold2_bits),
            ] {
                if !(1..=32).contains(&bits) {
                    return Err(format!("table {t}: {what} must be in 1..=32"));
                }
            }
            if t > 0 && table.history_length <= self.tables[t - 1].history_length {
                return Err(format!(
                    "table {t}: history lengths must be strictly increasing \
                     (rank order is provider priority)"
                ));
            }
        }
        if !(2..=6).contains(&self.counter_bits) {
            return Err("counter_bits must be in 2..=6".to_string());
        }
        if !(1..=4).contains(&self.useful_bits) {
            return Err("useful_bits must be in 1..=4".to_string());
        }
        if !(1..=24).contains(&self.bimodal_index_bits) {
            return Err("bimodal_index_bits must be in 1..=24".to_string());
        }
        if !(1..=3).contains(&self.bimodal_counter_bits) {
            return Err("bimodal_counter_bits must be in 1..=3".to_string());
        }
        if self.path_history_bits > 32 {
            return Err("path_history_bits must be at most 32".to_string());
        }
        if self.use_alt_on_na_bits == 0 || self.use_alt_on_na_bits > 7 {
            return Err("use_alt_on_na_bits must be in 1..=7".to_string());
        }
        if self.useful_reset_period == 0 {
            return Err("useful_reset_period must be non-zero".to_string());
        }
        self.automaton.validate()?;
        Ok(())
    }

    /// The specification string hashed into the snapshot spec digest: the
    /// implementation marker plus **every** structural field of the
    /// geometry, per table. The counter automaton is deliberately excluded —
    /// adaptive runs mutate it at run time, so it travels in the snapshot
    /// payload instead. The derived name is excluded too (it is a function
    /// of the fields already folded in).
    pub fn spec_string(&self) -> String {
        let tables: Vec<String> = self
            .tables
            .iter()
            .map(|t| {
                format!(
                    "{}:{}:{}:{}:{}:{}",
                    t.index_bits,
                    t.tag_bits,
                    t.history_length,
                    t.index_fold_bits,
                    t.tag_fold_bits,
                    t.tag_fold2_bits
                )
            })
            .collect();
        format!(
            "tage-geom|ctr={}|useful={}|bim_index={}|bim_ctr={}|path={}|alt={}|reset={}|seed={}|tables=[{}]",
            self.counter_bits,
            self.useful_bits,
            self.bimodal_index_bits,
            self.bimodal_counter_bits,
            self.path_history_bits,
            self.use_alt_on_na_bits,
            self.useful_reset_period,
            self.rng_seed,
            tables.join(";"),
        )
    }

    /// FNV-1a-64 digest of [`TageGeometry::spec_string`] — the snapshot
    /// compatibility key: two geometries share a digest iff their predictors
    /// have interchangeable state layouts.
    pub fn spec_digest(&self) -> u64 {
        fnv1a64(self.spec_string().as_bytes())
    }

    /// Renders the geometry as its canonical JSON file form.
    ///
    /// The rendering is byte-stable: `from_json(g.to_json())` re-renders to
    /// the identical bytes, so committed geometry files never churn.
    pub fn to_json(&self) -> String {
        let mut tables = String::new();
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                tables.push_str(",\n");
            }
            tables.push_str(&format!(
                "  {{\"index_bits\": {}, \"tag_bits\": {}, \"history_length\": {}, \
                 \"index_fold_bits\": {}, \"tag_fold_bits\": {}, \"tag_fold2_bits\": {}}}",
                t.index_bits,
                t.tag_bits,
                t.history_length,
                t.index_fold_bits,
                t.tag_fold_bits,
                t.tag_fold2_bits
            ));
        }
        let automaton = match self.automaton {
            CounterAutomaton::Standard => "standard".to_string(),
            CounterAutomaton::ProbabilisticSaturation {
                log2_inverse_probability,
            } => format!("probabilistic:{log2_inverse_probability}"),
        };
        format!(
            "{{\n \"kind\": \"tage-geometry\",\n \"schema\": {},\n \"name\": \"{}\",\n \
             \"storage_bits\": {},\n \"counter_bits\": {},\n \"useful_bits\": {},\n \
             \"bimodal_index_bits\": {},\n \"bimodal_counter_bits\": {},\n \
             \"path_history_bits\": {},\n \"use_alt_on_na_bits\": {},\n \
             \"useful_reset_period\": {},\n \"automaton\": \"{}\",\n \
             \"rng_seed\": \"{:#018x}\",\n \"tables\": [\n{}\n ]\n}}\n",
            GEOMETRY_SCHEMA,
            jsonish::escape(&self.name()),
            self.storage_bits(),
            self.counter_bits,
            self.useful_bits,
            self.bimodal_index_bits,
            self.bimodal_counter_bits,
            self.path_history_bits,
            self.use_alt_on_na_bits,
            self.useful_reset_period,
            automaton,
            self.rng_seed,
            tables,
        )
    }

    /// Parses a geometry from its JSON file form and validates it.
    ///
    /// The `name` and `storage_bits` fields present in rendered files are
    /// *derived* annotations: they are re-derived (and thereby checked)
    /// rather than trusted — a hand-edited file whose `storage_bits` no
    /// longer matches its tables is rejected.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural or validation problem.
    pub fn from_json(json: &str) -> Result<Self, String> {
        if let Some(kind) = jsonish::string_field(json, "kind") {
            if kind != "tage-geometry" {
                return Err(format!("not a tage-geometry file (kind = {kind:?})"));
            }
        } else {
            return Err("missing \"kind\": \"tage-geometry\" marker".to_string());
        }
        let schema = number_u64(json, "schema")?;
        if schema != u64::from(GEOMETRY_SCHEMA) {
            return Err(format!(
                "unsupported geometry schema {schema} (supported: {GEOMETRY_SCHEMA})"
            ));
        }
        let automaton_token =
            jsonish::string_field(json, "automaton").ok_or("missing field automaton")?;
        let automaton = parse_automaton(&automaton_token)?;
        let rng_seed = jsonish::string_field(json, "rng_seed")
            .ok_or("missing field rng_seed (a hex string, e.g. \"0x1234\")")?;
        let rng_seed = parse_hex_u64(&rng_seed)?;

        let table_objects = jsonish::extract_array_objects(json, "tables");
        if table_objects.is_empty() {
            return Err("missing or empty tables array".to_string());
        }
        let mut tables = Vec::with_capacity(table_objects.len());
        for (i, object) in table_objects.iter().enumerate() {
            let index_bits =
                number_u64(object, "index_bits").map_err(|e| format!("table {i}: {e}"))? as u32;
            let tag_bits =
                number_u64(object, "tag_bits").map_err(|e| format!("table {i}: {e}"))? as u32;
            let history_length = number_u64(object, "history_length")
                .map_err(|e| format!("table {i}: {e}"))? as usize;
            let defaults = TableGeometry::uniform(index_bits, tag_bits, history_length);
            tables.push(TableGeometry {
                index_bits,
                tag_bits,
                history_length,
                index_fold_bits: optional_u64(object, "index_fold_bits", i)?
                    .map_or(defaults.index_fold_bits, |v| v as u32),
                tag_fold_bits: optional_u64(object, "tag_fold_bits", i)?
                    .map_or(defaults.tag_fold_bits, |v| v as u32),
                tag_fold2_bits: optional_u64(object, "tag_fold2_bits", i)?
                    .map_or(defaults.tag_fold2_bits, |v| v as u32),
            });
        }

        let geometry = TageGeometry {
            tables,
            counter_bits: number_u64(json, "counter_bits")? as u8,
            useful_bits: number_u64(json, "useful_bits")? as u8,
            bimodal_index_bits: number_u64(json, "bimodal_index_bits")? as u32,
            bimodal_counter_bits: number_u64(json, "bimodal_counter_bits")? as u8,
            path_history_bits: number_u64(json, "path_history_bits")? as u32,
            use_alt_on_na_bits: number_u64(json, "use_alt_on_na_bits")? as u8,
            useful_reset_period: number_u64(json, "useful_reset_period")?,
            automaton,
            rng_seed,
        };
        geometry.validate()?;
        if let Ok(declared) = number_u64(json, "storage_bits") {
            let actual = geometry.storage_bits();
            if declared != actual {
                return Err(format!(
                    "declared storage_bits {declared} does not match the tables' \
                     actual storage {actual} (the field is derived; fix or drop it)"
                ));
            }
        }
        Ok(geometry)
    }

    /// Loads and validates a geometry from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path for IO and parse failures alike.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&json).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the canonical JSON form to a file.
    ///
    /// # Errors
    ///
    /// Returns a message naming the path on IO failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

impl fmt::Display for TageGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: 1+{} tables, {} bits, hist {}..{}",
            self.name(),
            self.num_tagged_tables(),
            self.storage_bits(),
            self.min_history(),
            self.max_history()
        )
    }
}

/// Anything a TAGE predictor can be constructed from: the legacy uniform
/// [`TageConfig`], an explicit [`TageGeometry`], or a reference to either.
///
/// [`crate::TagePredictor::new`] and [`crate::LaneGroup::new`] take
/// `impl TageBlueprint`, so every pre-geometry call site keeps compiling
/// while geometry-driven callers pass their [`TageGeometry`] directly.
pub trait TageBlueprint {
    /// The explicit geometry this blueprint describes.
    fn tage_geometry(&self) -> TageGeometry;
}

impl TageBlueprint for TageGeometry {
    fn tage_geometry(&self) -> TageGeometry {
        self.clone()
    }
}

impl TageBlueprint for TageConfig {
    fn tage_geometry(&self) -> TageGeometry {
        // Validate before expanding: `from_config` computes the geometric
        // history series, which asserts on degenerate table counts with a
        // less helpful message than the config's own validation.
        if let Err(reason) = self.validate() {
            panic!("invalid TAGE configuration: {reason}");
        }
        TageGeometry::from_config(self)
    }
}

impl<B: TageBlueprint + ?Sized> TageBlueprint for &B {
    fn tage_geometry(&self) -> TageGeometry {
        (**self).tage_geometry()
    }
}

fn parse_automaton(token: &str) -> Result<CounterAutomaton, String> {
    if token == "standard" {
        return Ok(CounterAutomaton::Standard);
    }
    if let Some(exponent) = token.strip_prefix("probabilistic:") {
        let log2_inverse_probability: u32 = exponent
            .parse()
            .map_err(|_| format!("automaton: bad probability exponent {exponent:?}"))?;
        return Ok(CounterAutomaton::ProbabilisticSaturation {
            log2_inverse_probability,
        });
    }
    Err(format!(
        "unknown automaton {token:?} (expected \"standard\" or \"probabilistic:N\")"
    ))
}

fn parse_hex_u64(text: &str) -> Result<u64, String> {
    let digits = text
        .strip_prefix("0x")
        .or_else(|| text.strip_prefix("0X"))
        .unwrap_or(text);
    u64::from_str_radix(digits, 16).map_err(|_| format!("rng_seed: not a hex number: {text:?}"))
}

/// Pulls a required non-negative integer field out of a JSON object,
/// rejecting fractional values (every geometry field is integral).
fn number_u64(object: &str, key: &str) -> Result<u64, String> {
    let value = jsonish::number_field(object, key).ok_or_else(|| format!("missing field {key}"))?;
    if value < 0.0 || value.fract() != 0.0 || value > (1u64 << 53) as f64 {
        return Err(format!("field {key}: not a non-negative integer: {value}"));
    }
    Ok(value as u64)
}

fn optional_u64(object: &str, key: &str, table: usize) -> Result<Option<u64>, String> {
    match jsonish::number_field(object, key) {
        None => Ok(None),
        Some(value) => {
            if value < 0.0 || value.fract() != 0.0 {
                return Err(format!(
                    "table {table}: field {key}: not a non-negative integer: {value}"
                ));
            }
            Ok(Some(value as u64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presets() -> [TageConfig; 3] {
        [
            TageConfig::small(),
            TageConfig::medium(),
            TageConfig::large(),
        ]
    }

    #[test]
    fn from_config_preserves_accounting_and_names() {
        for config in presets() {
            let geometry = TageGeometry::from_config(&config);
            assert!(geometry.validate().is_ok());
            assert_eq!(geometry.storage_bits(), config.storage_bits());
            assert_eq!(geometry.ancillary_bits(), config.ancillary_bits());
            assert_eq!(geometry.name(), config.name());
            assert_eq!(geometry.history_lengths(), config.history_lengths());
            assert_eq!(geometry.max_history(), config.max_history);
            assert_eq!(geometry.min_history(), config.min_history);
        }
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        for config in presets() {
            let geometry = TageGeometry::from_config(&config);
            let json = geometry.to_json();
            let parsed = TageGeometry::from_json(&json).expect("parses");
            assert_eq!(parsed, geometry);
            assert_eq!(parsed.to_json(), json, "re-render must be byte-identical");
        }
    }

    #[test]
    fn json_round_trip_covers_probabilistic_automaton_and_path_history() {
        let mut geometry = TageGeometry::from_config(&TageConfig::small());
        geometry.automaton = CounterAutomaton::probabilistic(7);
        geometry.path_history_bits = 16;
        geometry.tables[2].index_fold_bits = 11;
        geometry.rng_seed = u64::MAX;
        let json = geometry.to_json();
        let parsed = TageGeometry::from_json(&json).expect("parses");
        assert_eq!(parsed, geometry);
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn fold_footprints_default_to_the_legacy_widths() {
        let json = r#"{
 "kind": "tage-geometry",
 "schema": 1,
 "counter_bits": 3,
 "useful_bits": 2,
 "bimodal_index_bits": 10,
 "bimodal_counter_bits": 2,
 "path_history_bits": 0,
 "use_alt_on_na_bits": 4,
 "useful_reset_period": 262144,
 "automaton": "standard",
 "rng_seed": "0x7a6e5eed0badf00d",
 "tables": [
  {"index_bits": 8, "tag_bits": 9, "history_length": 3},
  {"index_bits": 7, "tag_bits": 8, "history_length": 12}
 ]
}"#;
        let geometry = TageGeometry::from_json(json).expect("parses");
        assert_eq!(geometry.tables[0].index_fold_bits, 8);
        assert_eq!(geometry.tables[0].tag_fold_bits, 9);
        assert_eq!(geometry.tables[0].tag_fold2_bits, 8);
        assert_eq!(geometry.tables[1].index_fold_bits, 7);
        assert_eq!(geometry.tables[1].tag_fold2_bits, 7);
        assert_eq!(geometry.rng_seed, 0x7A6E_5EED_0BAD_F00D);
    }

    #[test]
    fn malformed_json_is_rejected_with_reasons() {
        let base = TageGeometry::from_config(&TageConfig::small()).to_json();
        for (mangle, expected) in [
            (
                base.replace("tage-geometry", "something-else"),
                "not a tage-geometry",
            ),
            (base.replace("\"schema\": 1", "\"schema\": 99"), "schema 99"),
            (
                base.replace("\"counter_bits\": 3", "\"counter_bits\": 9"),
                "counter_bits",
            ),
            (
                base.replace("\"automaton\": \"standard\"", "\"automaton\": \"magic\""),
                "unknown automaton",
            ),
            (
                base.replace("\"rng_seed\": \"0x", "\"rng_seed\": \"zz"),
                "rng_seed",
            ),
            (
                base.replace("\"storage_bits\": 16384", "\"storage_bits\": 999"),
                "storage_bits 999",
            ),
            (String::from("{}"), "missing"),
        ] {
            let err = TageGeometry::from_json(&mangle).expect_err(expected);
            assert!(err.contains(expected), "{expected:?} not in {err:?}");
        }
    }

    #[test]
    fn validation_rejects_bad_geometries() {
        let good = TageGeometry::from_config(&TageConfig::small());

        let mut g = good.clone();
        g.tables.clear();
        assert!(g.validate().is_err());

        let mut g = good.clone();
        g.tables[1].history_length = g.tables[0].history_length;
        assert!(g.validate().unwrap_err().contains("strictly increasing"));

        let mut g = good.clone();
        g.tables[0].index_fold_bits = 0;
        assert!(g.validate().is_err());

        let mut g = good.clone();
        g.tables[0].tag_bits = 2;
        assert!(g.validate().is_err());

        let mut g = good.clone();
        g.path_history_bits = 40;
        assert!(g.validate().is_err());

        let mut g = good;
        g.useful_reset_period = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn derived_names_encode_budget_and_tables() {
        assert_eq!(derived_name(16 * 1024, 4), "TAGE-16K");
        assert_eq!(derived_name(256 * 1024, 8), "TAGE-256K");
        assert_eq!(derived_name(16 * 1024 + 7, 4), "TAGE-16391b-4T");
        assert_eq!(derived_name(0, 1), "TAGE-0b-1T");
    }

    #[test]
    fn spec_string_folds_every_table() {
        let geometry = TageGeometry::from_config(&TageConfig::small());
        let spec = geometry.spec_string();
        assert!(spec.starts_with("tage-geom|"));
        for table in &geometry.tables {
            assert!(
                spec.contains(&format!(":{}:", table.history_length)),
                "{spec}"
            );
        }
        // A per-table tweak that changes no aggregate statistic still moves
        // the digest.
        let mut tweaked = geometry.clone();
        tweaked.tables[1].index_fold_bits += 1;
        assert_ne!(tweaked.spec_digest(), geometry.spec_digest());
    }

    #[test]
    fn blueprint_is_implemented_for_configs_geometries_and_refs() {
        let config = TageConfig::small();
        let geometry = TageGeometry::from_config(&config);
        assert_eq!(config.tage_geometry(), geometry);
        assert_eq!(geometry.tage_geometry(), geometry);
        // The blanket &B impl, exercised through explicit references.
        let config_ref: &TageConfig = &config;
        assert_eq!(config_ref.tage_geometry(), geometry);
        let geometry_ref_ref: &&TageGeometry = &&geometry;
        assert_eq!(geometry_ref_ref.tage_geometry(), geometry);
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let geometry = TageGeometry::from_config(&TageConfig::medium());
        let path = std::env::temp_dir().join("tage_geometry_roundtrip_test.json");
        geometry.save(&path).expect("save");
        let loaded = TageGeometry::load(&path).expect("load");
        assert_eq!(loaded, geometry);
        std::fs::remove_file(&path).ok();
        let missing = TageGeometry::load(&path).unwrap_err();
        assert!(missing.contains("tage_geometry_roundtrip_test"));
    }

    #[test]
    fn display_mentions_name_and_tables() {
        let geometry = TageGeometry::from_config(&TageConfig::small());
        let text = format!("{geometry}");
        assert!(text.contains("TAGE-16K"));
        assert!(text.contains("1+4"));
    }
}
