//! The JRS resetting-counter confidence estimator and its Grunwald
//! enhancement.

use core::fmt;

use tage_predictors::counter::UnsignedCounter;
use tage_predictors::history::HistoryRegister;
use tage_predictors::Prediction;

use crate::class::ConfidenceLevel;
use crate::estimators::ConfidenceEstimator;

/// How the JRS table is indexed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JrsIndexing {
    /// The original JRS scheme: hash of the branch PC and the global
    /// history.
    PcHistory,
    /// The Grunwald et al. enhancement: the predicted direction is also
    /// hashed into the index, so taken and not-taken predictions of the same
    /// (PC, history) pair get separate confidence counters.
    PcHistoryPrediction,
}

impl fmt::Display for JrsIndexing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JrsIndexing::PcHistory => write!(f, "pc+history"),
            JrsIndexing::PcHistoryPrediction => write!(f, "pc+history+prediction"),
        }
    }
}

/// The JRS confidence estimator: a gshare-like indexed table of resetting
/// counters.
///
/// On a correct prediction the indexed counter is incremented (saturating);
/// on a misprediction it is reset to zero. A prediction is classified high
/// confidence when its counter is at or above the threshold — with 4-bit
/// counters and a threshold of 15 (the paper's cited trade-off), a branch is
/// high confidence only after 15 consecutive correct predictions for that
/// (PC, history) pair.
///
/// # Example
///
/// ```
/// use tage_confidence::estimators::{ConfidenceEstimator, JrsEstimator, JrsIndexing};
/// use tage_confidence::ConfidenceLevel;
/// use tage_predictors::Prediction;
///
/// let mut jrs = JrsEstimator::new(10, 4, 15, JrsIndexing::PcHistory);
/// let prediction = Prediction::new(true, 0);
/// assert_eq!(jrs.estimate(0x44, &prediction), ConfidenceLevel::Low);
/// ```
#[derive(Debug, Clone)]
pub struct JrsEstimator {
    table: Vec<UnsignedCounter>,
    index_bits: u32,
    counter_bits: u8,
    threshold: u8,
    indexing: JrsIndexing,
    history: HistoryRegister,
}

impl JrsEstimator {
    /// Creates a JRS estimator with `2^index_bits` counters of
    /// `counter_bits` bits, classifying as high confidence at or above
    /// `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is not in `1..=28`, `counter_bits` is not in
    /// `1..=8`, or the threshold is not representable.
    pub fn new(index_bits: u32, counter_bits: u8, threshold: u8, indexing: JrsIndexing) -> Self {
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits must be in 1..=28"
        );
        assert!(
            (1..=8).contains(&counter_bits),
            "counter_bits must be in 1..=8"
        );
        let max = if counter_bits == 8 {
            u8::MAX
        } else {
            (1u8 << counter_bits) - 1
        };
        assert!(threshold <= max, "threshold must fit in the counter");
        JrsEstimator {
            table: vec![UnsignedCounter::new(counter_bits); 1 << index_bits],
            index_bits,
            counter_bits,
            threshold,
            indexing,
            history: HistoryRegister::new(32),
        }
    }

    /// The paper-cited configuration: 4-bit counters, threshold 15.
    pub fn classic(index_bits: u32) -> Self {
        JrsEstimator::new(index_bits, 4, 15, JrsIndexing::PcHistory)
    }

    /// The Grunwald-enhanced configuration (prediction folded into the
    /// index).
    pub fn enhanced(index_bits: u32) -> Self {
        JrsEstimator::new(index_bits, 4, 15, JrsIndexing::PcHistoryPrediction)
    }

    fn index(&self, pc: u64, prediction: &Prediction) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        let hist = self.history.low_bits((self.index_bits as usize).min(32));
        let mut hash = (pc >> 2) ^ hist ^ ((pc >> 2) >> self.index_bits);
        if self.indexing == JrsIndexing::PcHistoryPrediction {
            hash = hash.rotate_left(1) ^ u64::from(prediction.taken);
        }
        (hash & mask) as usize
    }

    /// The value of the confidence counter the estimator would consult for
    /// this prediction (useful for multi-level grading experiments).
    pub fn counter_value(&self, pc: u64, prediction: &Prediction) -> u8 {
        self.table[self.index(pc, prediction)].value()
    }
}

impl ConfidenceEstimator for JrsEstimator {
    fn estimate(&mut self, pc: u64, prediction: &Prediction) -> ConfidenceLevel {
        if self.counter_value(pc, prediction) >= self.threshold {
            ConfidenceLevel::High
        } else {
            ConfidenceLevel::Low
        }
    }

    fn update(&mut self, pc: u64, prediction: &Prediction, taken: bool) {
        let idx = self.index(pc, prediction);
        if prediction.taken == taken {
            self.table[idx].increment();
        } else {
            self.table[idx].reset();
        }
        self.history.push(taken);
    }

    fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * u64::from(self.counter_bits) + self.history.capacity() as u64
    }

    fn name(&self) -> String {
        format!(
            "jrs-{}k-{} (t={})",
            self.table.len() / 1024,
            self.indexing,
            self.threshold
        )
    }

    fn reset(&mut self) {
        *self = JrsEstimator::new(
            self.index_bits,
            self.counter_bits,
            self.threshold,
            self.indexing,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(estimator: &mut JrsEstimator, pc: u64, correct_streak: usize) -> ConfidenceLevel {
        let prediction = Prediction::new(true, 0);
        for _ in 0..correct_streak {
            estimator.update(pc, &prediction, true);
        }
        estimator.estimate(pc, &prediction)
    }

    #[test]
    fn cold_estimator_reports_low_confidence() {
        let mut jrs = JrsEstimator::classic(10);
        assert_eq!(
            jrs.estimate(0x100, &Prediction::new(true, 0)),
            ConfidenceLevel::Low
        );
    }

    #[test]
    fn fifteen_consecutive_correct_predictions_reach_high_confidence() {
        // The history register changes the index on every update, so pin the
        // history by always predicting/resolving taken: the index follows a
        // fixed trajectory and the final lookup shares the last index only
        // if history bits match. To keep the test deterministic, use a
        // single-entry table.
        let mut jrs = JrsEstimator::new(1, 4, 15, JrsIndexing::PcHistory);
        // Both table entries must be saturated; run enough updates.
        assert_eq!(run(&mut jrs, 0x100, 40), ConfidenceLevel::High);
    }

    #[test]
    fn a_single_misprediction_resets_confidence() {
        let mut jrs = JrsEstimator::new(1, 4, 15, JrsIndexing::PcHistory);
        let prediction = Prediction::new(true, 0);
        for _ in 0..40 {
            jrs.update(0x100, &prediction, true);
        }
        assert_eq!(jrs.estimate(0x100, &prediction), ConfidenceLevel::High);
        // One misprediction on the consulted entry resets it.
        jrs.update(0x100, &prediction, false);
        // Drain the other entry too (index alternates with history).
        jrs.update(0x100, &prediction, false);
        assert_eq!(jrs.estimate(0x100, &prediction), ConfidenceLevel::Low);
    }

    #[test]
    fn enhanced_indexing_separates_taken_and_not_taken_predictions() {
        let mut jrs = JrsEstimator::enhanced(10);
        let taken_pred = Prediction::new(true, 0);
        let not_taken_pred = Prediction::new(false, 0);
        let idx_taken = jrs.index(0x500, &taken_pred);
        let idx_not_taken = jrs.index(0x500, &not_taken_pred);
        assert_ne!(idx_taken, idx_not_taken);
        // The classic indexing does not separate them.
        let classic = JrsEstimator::classic(10);
        assert_eq!(
            classic.index(0x500, &taken_pred),
            classic.index(0x500, &not_taken_pred)
        );
        let _ = &mut jrs;
    }

    #[test]
    fn counter_value_is_observable() {
        let mut jrs = JrsEstimator::new(1, 4, 15, JrsIndexing::PcHistory);
        let prediction = Prediction::new(true, 0);
        assert_eq!(jrs.counter_value(0x10, &prediction), 0);
        for _ in 0..40 {
            jrs.update(0x10, &prediction, true);
        }
        assert_eq!(jrs.counter_value(0x10, &prediction), 15);
    }

    #[test]
    fn storage_accounts_for_table_and_history() {
        let jrs = JrsEstimator::classic(10);
        assert_eq!(jrs.storage_bits(), 1024 * 4 + 32);
        assert!(jrs.name().contains("jrs"));
    }

    #[test]
    #[should_panic(expected = "threshold must fit in the counter")]
    fn oversized_threshold_rejected() {
        JrsEstimator::new(8, 3, 9, JrsIndexing::PcHistory);
    }

    #[test]
    fn indexing_display() {
        assert_eq!(JrsIndexing::PcHistory.to_string(), "pc+history");
        assert_eq!(
            JrsIndexing::PcHistoryPrediction.to_string(),
            "pc+history+prediction"
        );
    }
}
