//! Confidence metrics: per-class coverage and misprediction rates, and the
//! classical binary confusion metrics.
//!
//! The paper reports, per prediction class (and per confidence level):
//!
//! * `Pcov` — prediction coverage, the fraction of predictions in the class;
//! * `MPcov` — misprediction coverage, the fraction of all mispredictions
//!   that fall in the class;
//! * `MPrate` — the misprediction rate *of the class*, expressed in
//!   mispredictions per kilo-prediction (MKP).
//!
//! It also relates these to the binary metrics of Grunwald et al. (SENS,
//! SPEC, PVP, PVN), which only make sense for a two-way high/low split;
//! [`BinaryConfusion`] implements those for any chosen "high" subset.

use std::fmt;

use crate::class::{ConfidenceLevel, PredictionClass};

/// Prediction / misprediction counts for one class (or any bucket).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Number of predictions that fell in the bucket.
    pub predictions: u64,
    /// Number of those predictions that were mispredicted.
    pub mispredictions: u64,
}

impl ClassStats {
    /// Records one prediction with the given correctness.
    pub fn record(&mut self, mispredicted: bool) {
        self.predictions += 1;
        if mispredicted {
            self.mispredictions += 1;
        }
    }

    /// Merges another bucket into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.predictions += other.predictions;
        self.mispredictions += other.mispredictions;
    }

    /// Merges `weight` copies of another bucket into this one — the
    /// building block of weighted metric reconstruction from sampled
    /// representative slices (`tage_sim::phase`).
    pub fn merge_scaled(&mut self, other: &ClassStats, weight: u64) {
        self.predictions += other.predictions * weight;
        self.mispredictions += other.mispredictions * weight;
    }

    /// Misprediction rate in mispredictions per kilo-prediction (MKP).
    pub fn mprate_mkp(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.predictions as f64
        }
    }
}

/// Accumulates per-class and per-level confidence statistics over a
/// simulation, plus the instruction count needed for MPKI reporting.
///
/// # Example
///
/// ```
/// use tage_confidence::{ConfidenceReport, PredictionClass};
///
/// let mut report = ConfidenceReport::new();
/// report.record(PredictionClass::Stag, false);
/// report.record(PredictionClass::Wtag, true);
/// report.add_instructions(100);
/// assert_eq!(report.total().predictions, 2);
/// assert_eq!(report.class(PredictionClass::Wtag).mispredictions, 1);
/// assert!((report.mpki() - 10.0).abs() < 1e-9);
/// ```
/// The report is part of the engine's per-branch path
/// ([`crate::ConfidenceReport::record`] runs once per measured branch), so
/// the buckets are fixed arrays indexed by enum discriminant — recording is
/// two array writes and never touches the heap.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfidenceReport {
    classes: [ClassStats; PredictionClass::ALL.len()],
    /// Predictions graded with a confidence level but no prediction class
    /// (the binary/ternary baseline estimators, which have no notion of the
    /// paper's 7 classes).
    unclassed_levels: [ClassStats; ConfidenceLevel::ALL.len()],
    total: ClassStats,
    instructions: u64,
}

impl Default for ConfidenceReport {
    fn default() -> Self {
        ConfidenceReport {
            classes: [ClassStats::default(); PredictionClass::ALL.len()],
            unclassed_levels: [ClassStats::default(); ConfidenceLevel::ALL.len()],
            total: ClassStats::default(),
            instructions: 0,
        }
    }
}

impl ConfidenceReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        ConfidenceReport::default()
    }

    /// Records one classified prediction.
    pub fn record(&mut self, class: PredictionClass, mispredicted: bool) {
        self.classes[class as usize].record(mispredicted);
        self.total.record(mispredicted);
    }

    /// Records one prediction graded only with a confidence level (no
    /// prediction class) — the verdict the storage-based baseline
    /// estimators produce. Level and total accounting behave exactly as for
    /// classed predictions; per-class queries are unaffected.
    pub fn record_level(&mut self, level: ConfidenceLevel, mispredicted: bool) {
        self.unclassed_levels[level as usize].record(mispredicted);
        self.total.record(mispredicted);
    }

    /// Adds non-branch instructions (for MPKI reporting).
    pub fn add_instructions(&mut self, instructions: u64) {
        self.instructions += instructions;
    }

    /// Total instruction count attributed to the report.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Aggregate statistics over all classes.
    pub fn total(&self) -> ClassStats {
        self.total
    }

    /// Statistics of one class (zero counts if the class never occurred).
    pub fn class(&self, class: PredictionClass) -> ClassStats {
        self.classes[class as usize]
    }

    /// Statistics of one confidence level (the union of its classes, plus
    /// any level-only records).
    pub fn level(&self, level: ConfidenceLevel) -> ClassStats {
        let mut stats = ClassStats::default();
        for class in level.classes() {
            stats.merge(&self.class(*class));
        }
        stats.merge(&self.unclassed_levels[level as usize]);
        stats
    }

    /// Prediction coverage of a class: fraction of all predictions.
    pub fn pcov(&self, class: PredictionClass) -> f64 {
        fraction(self.class(class).predictions, self.total.predictions)
    }

    /// Misprediction coverage of a class: fraction of all mispredictions.
    pub fn mpcov(&self, class: PredictionClass) -> f64 {
        fraction(self.class(class).mispredictions, self.total.mispredictions)
    }

    /// Misprediction rate of a class in MKP.
    pub fn mprate_mkp(&self, class: PredictionClass) -> f64 {
        self.class(class).mprate_mkp()
    }

    /// Prediction coverage of a confidence level.
    pub fn level_pcov(&self, level: ConfidenceLevel) -> f64 {
        fraction(self.level(level).predictions, self.total.predictions)
    }

    /// Misprediction coverage of a confidence level.
    pub fn level_mpcov(&self, level: ConfidenceLevel) -> f64 {
        fraction(self.level(level).mispredictions, self.total.mispredictions)
    }

    /// Misprediction rate of a confidence level in MKP.
    pub fn level_mprate_mkp(&self, level: ConfidenceLevel) -> f64 {
        self.level(level).mprate_mkp()
    }

    /// Overall misprediction rate in MKP (per kilo-prediction).
    pub fn mkp(&self) -> f64 {
        self.total.mprate_mkp()
    }

    /// Overall misprediction rate in MPKI (per kilo-instruction); zero if no
    /// instruction count was recorded.
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.total.mispredictions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Contribution of one class to the overall MPKI.
    pub fn class_mpki(&self, class: PredictionClass) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.class(class).mispredictions as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Merges another report into this one (e.g. to aggregate a suite).
    pub fn merge(&mut self, other: &ConfidenceReport) {
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self
            .unclassed_levels
            .iter_mut()
            .zip(&other.unclassed_levels)
        {
            mine.merge(theirs);
        }
        self.total.merge(&other.total);
        self.instructions += other.instructions;
    }

    /// Merges `weight` copies of another report into this one: every
    /// bucket and the instruction count scale by the integer weight.
    ///
    /// This is how phase sampling (`tage_sim::phase`) reconstructs
    /// whole-trace metrics: each simulated representative slice stands for
    /// `weight` slices of its cluster, so its report is folded in `weight`
    /// times. Integer scaling keeps the reconstruction exact and
    /// platform-independent (no float accumulation order to worry about).
    pub fn merge_scaled(&mut self, other: &ConfidenceReport, weight: u64) {
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.merge_scaled(theirs, weight);
        }
        for (mine, theirs) in self
            .unclassed_levels
            .iter_mut()
            .zip(&other.unclassed_levels)
        {
            mine.merge_scaled(theirs, weight);
        }
        self.total.merge_scaled(&other.total, weight);
        self.instructions += other.instructions * weight;
    }

    /// Builds the binary confusion treating the given levels as "high
    /// confidence" and everything else as "low confidence".
    pub fn binary_confusion(&self, high_levels: &[ConfidenceLevel]) -> BinaryConfusion {
        let mut confusion = BinaryConfusion::default();
        let mut add = |stats: &ClassStats, level: ConfidenceLevel| {
            let correct = stats.predictions - stats.mispredictions;
            if high_levels.contains(&level) {
                confusion.high_correct += correct;
                confusion.high_incorrect += stats.mispredictions;
            } else {
                confusion.low_correct += correct;
                confusion.low_incorrect += stats.mispredictions;
            }
        };
        for class in PredictionClass::ALL {
            add(&self.class(class), class.level());
        }
        for level in ConfidenceLevel::ALL {
            add(&self.unclassed_levels[level as usize], level);
        }
        confusion
    }
}

impl fmt::Display for ConfidenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} predictions, {} mispredictions ({:.1} MKP, {:.2} MPKI)",
            self.total.predictions,
            self.total.mispredictions,
            self.mkp(),
            self.mpki()
        )?;
        for class in PredictionClass::ALL {
            let stats = self.class(class);
            if stats.predictions == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<16} Pcov {:>6.3}  MPcov {:>6.3}  MPrate {:>7.1} MKP",
                class.label(),
                self.pcov(class),
                self.mpcov(class),
                self.mprate_mkp(class)
            )?;
        }
        for level in ConfidenceLevel::ALL {
            let stats = &self.unclassed_levels[level as usize];
            if stats.predictions == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<16} Pcov {:>6.3}  MPrate {:>7.1} MKP",
                format!("level:{level}"),
                fraction(stats.predictions, self.total.predictions),
                stats.mprate_mkp()
            )?;
        }
        Ok(())
    }
}

/// The classical binary confidence confusion matrix and the four metrics of
/// Grunwald et al.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BinaryConfusion {
    /// Correct predictions classified high confidence.
    pub high_correct: u64,
    /// Mispredictions classified high confidence.
    pub high_incorrect: u64,
    /// Correct predictions classified low confidence.
    pub low_correct: u64,
    /// Mispredictions classified low confidence.
    pub low_incorrect: u64,
}

impl BinaryConfusion {
    /// Records one prediction.
    pub fn record(&mut self, high_confidence: bool, mispredicted: bool) {
        match (high_confidence, mispredicted) {
            (true, false) => self.high_correct += 1,
            (true, true) => self.high_incorrect += 1,
            (false, false) => self.low_correct += 1,
            (false, true) => self.low_incorrect += 1,
        }
    }

    /// Sensitivity: fraction of correct predictions classified high
    /// confidence.
    pub fn sensitivity(&self) -> f64 {
        fraction(self.high_correct, self.high_correct + self.low_correct)
    }

    /// Specificity: fraction of mispredictions classified low confidence.
    pub fn specificity(&self) -> f64 {
        fraction(self.low_incorrect, self.low_incorrect + self.high_incorrect)
    }

    /// Predictive value of a positive test: probability that a
    /// high-confidence prediction is correct.
    pub fn pvp(&self) -> f64 {
        fraction(self.high_correct, self.high_correct + self.high_incorrect)
    }

    /// Predictive value of a negative test: probability that a
    /// low-confidence prediction is mispredicted.
    pub fn pvn(&self) -> f64 {
        fraction(self.low_incorrect, self.low_incorrect + self.low_correct)
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.high_correct + self.high_incorrect + self.low_correct + self.low_incorrect
    }
}

impl fmt::Display for BinaryConfusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SENS {:.3} SPEC {:.3} PVP {:.3} PVN {:.3}",
            self.sensitivity(),
            self.specificity(),
            self.pvp(),
            self.pvn()
        )
    }
}

fn fraction(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ConfidenceReport {
        let mut r = ConfidenceReport::new();
        // 70 Stag predictions, 1 miss.
        for i in 0..70 {
            r.record(PredictionClass::Stag, i == 0);
        }
        // 20 NStag predictions, 4 misses.
        for i in 0..20 {
            r.record(PredictionClass::NStag, i < 4);
        }
        // 10 Wtag predictions, 4 misses.
        for i in 0..10 {
            r.record(PredictionClass::Wtag, i < 4);
        }
        r.add_instructions(1000);
        r
    }

    #[test]
    fn class_stats_record_and_rate() {
        let mut s = ClassStats::default();
        s.record(false);
        s.record(true);
        assert_eq!(s.predictions, 2);
        assert_eq!(s.mispredictions, 1);
        assert!((s.mprate_mkp() - 500.0).abs() < 1e-9);
        assert_eq!(ClassStats::default().mprate_mkp(), 0.0);
    }

    #[test]
    fn coverage_fractions_sum_to_one() {
        let r = sample_report();
        let pcov_sum: f64 = PredictionClass::ALL.iter().map(|&c| r.pcov(c)).sum();
        let mpcov_sum: f64 = PredictionClass::ALL.iter().map(|&c| r.mpcov(c)).sum();
        assert!((pcov_sum - 1.0).abs() < 1e-9);
        assert!((mpcov_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_class_numbers_are_correct() {
        let r = sample_report();
        assert!((r.pcov(PredictionClass::Stag) - 0.7).abs() < 1e-9);
        assert!((r.mpcov(PredictionClass::Wtag) - 4.0 / 9.0).abs() < 1e-9);
        assert!((r.mprate_mkp(PredictionClass::NStag) - 200.0).abs() < 1e-9);
        assert_eq!(r.class(PredictionClass::HighConfBim).predictions, 0);
        assert_eq!(r.pcov(PredictionClass::HighConfBim), 0.0);
    }

    #[test]
    fn level_aggregation_unions_classes() {
        let r = sample_report();
        let high = r.level(ConfidenceLevel::High);
        assert_eq!(high.predictions, 70);
        assert_eq!(high.mispredictions, 1);
        let medium = r.level(ConfidenceLevel::Medium);
        assert_eq!(medium.predictions, 20);
        let low = r.level(ConfidenceLevel::Low);
        assert_eq!(low.predictions, 10);
        assert!((r.level_pcov(ConfidenceLevel::High) - 0.7).abs() < 1e-9);
        assert!((r.level_mpcov(ConfidenceLevel::Low) - 4.0 / 9.0).abs() < 1e-9);
        assert!(
            r.level_mprate_mkp(ConfidenceLevel::Low) > r.level_mprate_mkp(ConfidenceLevel::High)
        );
    }

    #[test]
    fn mpki_and_mkp() {
        let r = sample_report();
        assert!((r.mkp() - 90.0).abs() < 1e-9);
        assert!((r.mpki() - 9.0).abs() < 1e-9);
        assert!((r.class_mpki(PredictionClass::Wtag) - 4.0).abs() < 1e-9);
        assert_eq!(ConfidenceReport::new().mpki(), 0.0);
        assert_eq!(ConfidenceReport::new().mkp(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = sample_report();
        let b = sample_report();
        a.merge(&b);
        assert_eq!(a.total().predictions, 200);
        assert_eq!(a.instructions(), 2000);
        assert_eq!(a.class(PredictionClass::Stag).predictions, 140);
    }

    #[test]
    fn merge_scaled_is_repeated_merge() {
        let mut scaled = ConfidenceReport::new();
        scaled.merge_scaled(&sample_report(), 3);
        let mut repeated = ConfidenceReport::new();
        for _ in 0..3 {
            repeated.merge(&sample_report());
        }
        assert_eq!(scaled, repeated);
        assert_eq!(scaled.total().predictions, 300);
        assert_eq!(scaled.instructions(), 3000);

        let mut stats = ClassStats {
            predictions: 10,
            mispredictions: 2,
        };
        stats.merge_scaled(
            &ClassStats {
                predictions: 5,
                mispredictions: 1,
            },
            4,
        );
        assert_eq!(stats.predictions, 30);
        assert_eq!(stats.mispredictions, 6);
    }

    #[test]
    fn binary_confusion_from_report() {
        let r = sample_report();
        let confusion = r.binary_confusion(&[ConfidenceLevel::High]);
        assert_eq!(confusion.high_correct, 69);
        assert_eq!(confusion.high_incorrect, 1);
        assert_eq!(confusion.low_correct, 22);
        assert_eq!(confusion.low_incorrect, 8);
        assert_eq!(confusion.total(), 100);
        // Treating medium as high too shifts the counts.
        let wide = r.binary_confusion(&[ConfidenceLevel::High, ConfidenceLevel::Medium]);
        assert_eq!(wide.high_correct, 85);
    }

    #[test]
    fn binary_metrics_formulas() {
        let mut c = BinaryConfusion::default();
        // 90 correct high, 10 incorrect high, 30 correct low, 20 incorrect low.
        for _ in 0..90 {
            c.record(true, false);
        }
        for _ in 0..10 {
            c.record(true, true);
        }
        for _ in 0..30 {
            c.record(false, false);
        }
        for _ in 0..20 {
            c.record(false, true);
        }
        assert!((c.sensitivity() - 90.0 / 120.0).abs() < 1e-9);
        assert!((c.specificity() - 20.0 / 30.0).abs() < 1e-9);
        assert!((c.pvp() - 0.9).abs() < 1e-9);
        assert!((c.pvn() - 0.4).abs() < 1e-9);
        assert_eq!(c.total(), 150);
    }

    #[test]
    fn empty_confusion_is_all_zero() {
        let c = BinaryConfusion::default();
        assert_eq!(c.sensitivity(), 0.0);
        assert_eq!(c.specificity(), 0.0);
        assert_eq!(c.pvp(), 0.0);
        assert_eq!(c.pvn(), 0.0);
    }

    #[test]
    fn display_formats() {
        let r = sample_report();
        let s = format!("{r}");
        assert!(s.contains("Stag"));
        assert!(s.contains("MKP"));
        assert!(format!("{}", r.binary_confusion(&[ConfidenceLevel::High])).contains("SENS"));
    }
}
