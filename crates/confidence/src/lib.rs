//! Storage-free confidence estimation for the TAGE branch predictor.
//!
//! This crate implements the paper's contribution:
//!
//! * [`PredictionClass`] — the **7 prediction classes** obtained by simply
//!   observing which TAGE component provides a prediction and the value of
//!   its counter: `high-conf-bim`, `medium-conf-bim`, `low-conf-bim` for the
//!   bimodal base predictor and `Wtag`, `NWtag`, `NStag`, `Stag` for the
//!   tagged components (Section 5);
//! * [`ConfidenceLevel`] — the **three confidence levels** the classes are
//!   grouped into once the tagged counters use the modified
//!   probabilistic-saturation automaton (Section 6.1): low (≈ 30 %+
//!   misprediction rate), medium (≈ 8–12 %) and high (< 1 %);
//! * [`TageConfidenceClassifier`] — the storage-free classifier itself. Its
//!   only state is a tiny recency window used to detect the
//!   `medium-conf-bim` situation (a bimodal-provided prediction shortly
//!   after a bimodal-provided misprediction), which the paper attributes to
//!   predictor warming and capacity bursts;
//! * [`metrics`] — the per-class metrics the paper reports: prediction
//!   coverage `Pcov`, misprediction coverage `MPcov`, misprediction rate
//!   `MPrate` in mispredictions per kilo-prediction (MKP), plus the
//!   classical binary metrics (SENS, SPEC, PVP, PVN) of Grunwald et al.;
//! * [`AdaptiveSaturationController`] — the run-time adaptation of the
//!   saturation probability (Section 6.2) that maximises high-confidence
//!   coverage under a misprediction-rate target;
//! * [`estimators`] — the storage-based baseline confidence estimators the
//!   paper discusses (JRS, enhanced JRS, self-confidence), for comparison.
//!
//! # Example
//!
//! ```
//! use tage::{TageConfig, TagePredictor};
//! use tage_confidence::{ConfidenceLevel, TageConfidenceClassifier};
//!
//! let mut predictor = TagePredictor::new(TageConfig::small());
//! let mut classifier = TageConfidenceClassifier::new(predictor.geometry());
//!
//! let pc = 0x40_2000;
//! let prediction = predictor.predict(pc);
//! let class = classifier.classify(&prediction);
//! let level: ConfidenceLevel = class.level();
//! // A cold predictor answers from the bimodal table with a weak counter:
//! assert_eq!(level, ConfidenceLevel::Low);
//! predictor.update(pc, true, &prediction);
//! classifier.observe(&prediction, true);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adaptive;
pub mod class;
pub mod classifier;
pub mod estimators;
pub mod metrics;
pub mod scheme;

pub use adaptive::AdaptiveSaturationController;
pub use class::{ConfidenceLevel, PredictionClass};
pub use classifier::TageConfidenceClassifier;
pub use estimators::ConfidenceEstimator;
pub use metrics::{BinaryConfusion, ClassStats, ConfidenceReport};
pub use scheme::{Assessment, ConfidenceScheme, EstimatorScheme};
