//! Figure 5: class distributions with the modified 3-bit counter automaton
//! (probabilistic saturation, p = 1/128) for the three panels the paper
//! shows: 16 Kbit on CBP-1, 64 Kbit on CBP-2 and 256 Kbit on CBP-1.

use tage::{CounterAutomaton, TageConfig};
use tage_bench::{branches_from_args, print_header};
use tage_confidence::PredictionClass;
use tage_sim::experiment::class_distribution;
use tage_sim::report::TextTable;
use tage_traces::{suites, Suite};

fn panel(config: TageConfig, suite: &Suite, branches: usize) {
    let config = config.with_automaton(CounterAutomaton::paper_default());
    println!("--- {} on {} ---", config.name(), suite.name());
    let rows = class_distribution(&config, suite, branches);
    let mut headers = vec!["trace"];
    headers.extend(PredictionClass::ALL.iter().map(|c| c.label()));
    headers.push("MPKI");
    let mut pcov_table = TextTable::new(headers.clone());
    let mut mpki_table = TextTable::new(headers);
    for row in &rows {
        let mut cells = vec![row.trace_name.clone()];
        cells.extend(row.pcov.iter().map(|p| format!("{:.3}", p)));
        cells.push(format!("{:.2}", row.total_mpki));
        pcov_table.row(cells);
        let mut cells = vec![row.trace_name.clone()];
        cells.extend(row.mpki_contribution.iter().map(|p| format!("{:.3}", p)));
        cells.push(format!("{:.2}", row.total_mpki));
        mpki_table.row(cells);
    }
    println!("prediction coverage (left plot):");
    print!("{}", pcov_table.render());
    println!("misprediction contribution in MPKI (right plot):");
    print!("{}", mpki_table.render());
    println!();
}

fn main() {
    let branches = branches_from_args();
    print_header(
        "Figure 5 — class distributions, modified 3-bit counter automaton (p = 1/128)",
        branches,
    );
    panel(TageConfig::small(), &suites::cbp1_like(), branches);
    panel(TageConfig::medium(), &suites::cbp2_like(), branches);
    panel(TageConfig::large(), &suites::cbp1_like(), branches);
}
