//! Hand-rolled HTTP/1.1 request/response framing over std TCP streams.
//!
//! The workspace carries no HTTP dependency, and the `tage-serve` daemon
//! needs only the smallest honest subset of HTTP/1.1: one request per
//! connection, `Content-Length`-framed bodies, `Connection: close`
//! responses. This module implements exactly that — for both sides, since
//! `tage-bench --submit` is the matching client.
//!
//! Untrusted-input hardening happens at this layer (header and body size
//! caps, read timeouts) and in `tage_traces::jsonish::validate_document`,
//! which the router runs on every request body before any field extractor
//! touches it.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request head (request line + headers). Generously above any
/// legitimate `tage-serve` request, small enough to shrug off junk floods.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Default cap on request bodies (grid specs are a few hundred bytes).
pub const DEFAULT_MAX_BODY_BYTES: usize = 1024 * 1024;

/// Per-connection socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed HTTP request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased request method (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are not split off — no endpoint
    /// takes one).
    pub path: String,
    /// The request body, exactly `Content-Length` bytes.
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The socket failed or timed out mid-request.
    Io(String),
    /// The request line / headers are not parseable HTTP/1.1.
    Malformed(&'static str),
    /// The head or body exceeds its size cap.
    TooLarge {
        /// What overflowed (`"head"` or `"body"`).
        what: &'static str,
        /// The cap that was exceeded, in bytes.
        limit: usize,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Io(error) => write!(f, "socket error: {error}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::TooLarge { what, limit } => {
                write!(f, "request {what} exceeds {limit} bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one HTTP/1.1 request from `stream`: head until the blank line
/// (capped at [`MAX_HEAD_BYTES`]), then exactly `Content-Length` body bytes
/// (capped at `max_body`).
///
/// # Errors
///
/// [`HttpError`] on socket failure, unparseable head, or a cap violation.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge {
                what: "head",
                limit: MAX_HEAD_BYTES,
            });
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("request line has no path"))?
        .to_string();
    if !parts
        .next()
        .is_some_and(|version| version.starts_with("HTTP/1."))
    {
        return Err(HttpError::Malformed("not an HTTP/1.x request"));
    }
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| HttpError::Malformed("unparseable Content-Length"))?;
        }
    }
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            what: "body",
            limit: max_body,
        });
    }
    let body_start = head_end + 4;
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        if n == 0 {
            return Err(HttpError::Malformed("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(Request { method, path, body })
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes one `Connection: close` HTTP/1.1 response.
pub fn write_response(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// One client-side HTTP exchange: connects to `host_port`, sends `method
/// path` with an optional JSON body, and reads the full response (the
/// server closes the connection after one response).
///
/// Returns `(status, body)`.
///
/// # Errors
///
/// A human-readable string on connection failure, socket errors, or an
/// unparseable response head.
pub fn client_request(
    host_port: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream =
        TcpStream::connect(host_port).map_err(|e| format!("cannot connect to {host_port}: {e}"))?;
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {host_port}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("{host_port}: send failed: {e}"))?;
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .map_err(|e| format!("{host_port}: read failed: {e}"))?;
    let head_end = find_head_end(&response)
        .ok_or_else(|| format!("{host_port}: response has no header terminator"))?;
    let head = std::str::from_utf8(&response[..head_end])
        .map_err(|_| format!("{host_port}: response head is not UTF-8"))?;
    let status_line = head.split("\r\n").next().unwrap_or("");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{host_port}: unparseable status line \"{status_line}\""))?;
    let body = String::from_utf8_lossy(&response[head_end + 4..]).into_owned();
    Ok((status, body))
}

/// Splits an `http://host:port[/]` base URL into its `host:port` part.
///
/// # Errors
///
/// A human-readable string when the URL is not plain `http://` or carries a
/// non-empty path.
pub fn host_port_of(base_url: &str) -> Result<String, String> {
    let rest = base_url
        .strip_prefix("http://")
        .ok_or_else(|| format!("unsupported URL \"{base_url}\" (only http:// is supported)"))?;
    let host_port = rest.strip_suffix('/').unwrap_or(rest);
    if host_port.is_empty() || host_port.contains('/') {
        return Err(format!(
            "unsupported URL \"{base_url}\" (expected http://host:port)"
        ));
    }
    Ok(host_port.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let request = read_request(&mut stream, max_body);
        writer.join().unwrap();
        request
    }

    #[test]
    fn requests_parse_with_and_without_bodies() {
        let request = roundtrip(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", 64).unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/metrics");
        assert!(request.body.is_empty());

        let request = roundtrip(
            b"POST /campaigns HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            64,
        )
        .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.body, b"{\"a\":1}");
    }

    #[test]
    fn malformed_and_oversized_requests_are_rejected() {
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / FTP/1.0\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 999\r\n\r\n", 64),
            Err(HttpError::TooLarge { what: "body", .. })
        ));
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
        // A closed connection before the blank line is malformed, not a hang.
        assert!(matches!(
            roundtrip(b"GET / HTTP/1.1\r\n", 64),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn base_urls_resolve_to_host_port() {
        assert_eq!(
            host_port_of("http://127.0.0.1:7421").as_deref(),
            Ok("127.0.0.1:7421")
        );
        assert_eq!(
            host_port_of("http://localhost:80/").as_deref(),
            Ok("localhost:80")
        );
        assert!(host_port_of("https://x").is_err());
        assert!(host_port_of("http://h:1/path").is_err());
        assert!(host_port_of("127.0.0.1:7421").is_err());
    }
}
