//! Cross-crate integration tests: the full pipeline from synthetic workload
//! generation through the TAGE predictor, the storage-free confidence
//! classifier and the simulation harness.

use tage_confidence_suite::confidence::{ConfidenceLevel, PredictionClass};
use tage_confidence_suite::sim::runner::{run_trace, RunOptions};
use tage_confidence_suite::sim::suite::run_suite;
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence_suite::traces::reader::TraceReader;
use tage_confidence_suite::traces::writer::TraceWriter;
use tage_confidence_suite::traces::{suites, Suite};

const N: usize = 40_000;

fn modified(config: TageConfig) -> TageConfig {
    config.with_automaton(CounterAutomaton::paper_default())
}

#[test]
fn every_class_count_adds_up_across_the_pipeline() {
    let trace = suites::cbp1_like().trace("INT-2").unwrap().generate(N);
    let result = run_trace(
        &modified(TageConfig::small()),
        &trace,
        &RunOptions::default(),
    );
    let by_class: u64 = PredictionClass::ALL
        .iter()
        .map(|&c| result.report.class(c).predictions)
        .sum();
    let by_level: u64 = ConfidenceLevel::ALL
        .iter()
        .map(|&l| result.report.level(l).predictions)
        .sum();
    assert_eq!(by_class, N as u64);
    assert_eq!(by_level, N as u64);
    assert_eq!(result.report.total().predictions, N as u64);
}

#[test]
fn trace_serialisation_does_not_change_simulation_results() {
    let trace = suites::cbp2_like()
        .trace("181.mcf")
        .unwrap()
        .generate(20_000);
    let bytes = TraceWriter::to_binary_bytes(&trace);
    let reloaded = TraceReader::read_binary(&bytes[..]).expect("valid trace bytes");
    let config = modified(TageConfig::medium());
    let direct = run_trace(&config, &trace, &RunOptions::default());
    let via_disk = run_trace(&config, &reloaded, &RunOptions::default());
    assert_eq!(direct.report, via_disk.report);
}

#[test]
fn predictor_state_is_shareable_across_crates() {
    // The same TagePredictor instance serves the trait-based baseline path
    // and the inherent TAGE path without drift.
    let config = TageConfig::small();
    let mut a = TagePredictor::new(config.clone());
    let mut b = TagePredictor::new(config);
    let trace = suites::cbp1_like().trace("FP-3").unwrap().generate(10_000);
    for record in trace.iter().filter(|r| r.kind.is_conditional()) {
        let pa = a.predict(record.pc);
        a.update(record.pc, record.taken, &pa);
        let pb = b.predict(record.pc);
        b.update(record.pc, record.taken, &pb);
        assert_eq!(pa, pb);
    }
    assert_eq!(a.stats(), b.stats());
}

#[test]
fn suite_aggregation_matches_sum_of_trace_runs() {
    let full = suites::cbp1_like();
    let mini = Suite::new(
        "mini",
        vec![
            full.trace("FP-1").unwrap().clone(),
            full.trace("MM-3").unwrap().clone(),
        ],
    );
    let config = modified(TageConfig::small());
    let suite_result = run_suite(&config, &mini, 10_000, &RunOptions::default());
    let separate: u64 = mini
        .traces()
        .iter()
        .map(|spec| {
            let trace = spec.generate(10_000);
            run_trace(&config, &trace, &RunOptions::default())
                .report
                .total()
                .mispredictions
        })
        .sum();
    assert_eq!(suite_result.aggregate.total().mispredictions, separate);
}

#[test]
fn three_levels_are_ordered_on_every_cbp1_trace() {
    let config = modified(TageConfig::medium());
    let suite = suites::cbp1_like();
    for spec in suite.traces().iter().step_by(4) {
        let trace = spec.generate(N);
        let result = run_trace(&config, &trace, &RunOptions::default());
        let high = result.report.level_mprate_mkp(ConfidenceLevel::High);
        let low = result.report.level_mprate_mkp(ConfidenceLevel::Low);
        assert!(
            low > high,
            "{}: low-confidence rate {low} must exceed high-confidence rate {high}",
            spec.name()
        );
    }
}

#[test]
fn modified_automaton_purifies_the_saturated_class() {
    let trace = suites::cbp1_like().trace("MM-1").unwrap().generate(60_000);
    let standard = run_trace(&TageConfig::small(), &trace, &RunOptions::default());
    let probabilistic = run_trace(
        &modified(TageConfig::small()),
        &trace,
        &RunOptions::default(),
    );
    let std_stag = standard.report.mprate_mkp(PredictionClass::Stag);
    let mod_stag = probabilistic.report.mprate_mkp(PredictionClass::Stag);
    assert!(
        mod_stag < std_stag,
        "modified automaton should reduce the Stag misprediction rate ({mod_stag} vs {std_stag})"
    );
    // ... at a small accuracy cost.
    assert!((probabilistic.mpki() - standard.mpki()).abs() < 1.0);
}

#[test]
fn adaptive_controller_keeps_high_confidence_near_its_target_on_a_hard_trace() {
    let trace = suites::cbp1_like()
        .trace("SERV-1")
        .unwrap()
        .generate(120_000);
    let config = modified(TageConfig::small());
    let fixed = run_trace(&config, &trace, &RunOptions::default());
    let adaptive = run_trace(&config, &trace, &RunOptions::adaptive());
    let fixed_high = fixed.report.level_mprate_mkp(ConfidenceLevel::High);
    let adaptive_high = adaptive.report.level_mprate_mkp(ConfidenceLevel::High);
    // On a hard trace the controller should tighten the probability and
    // reduce the high-confidence misprediction rate relative to fixed 1/128.
    assert!(
        adaptive_high <= fixed_high,
        "adaptive {adaptive_high} MKP should not exceed fixed {fixed_high} MKP"
    );
    assert!(adaptive.final_saturation_probability <= 1.0 / 128.0 + 1e-12);
}

#[test]
fn warmup_option_only_removes_the_prefix() {
    let trace = suites::cbp2_like()
        .trace("254.gap")
        .unwrap()
        .generate(30_000);
    let config = modified(TageConfig::medium());
    let full = run_trace(&config, &trace, &RunOptions::default());
    let skipped = run_trace(
        &config,
        &trace,
        &RunOptions {
            warmup_branches: 10_000,
            ..RunOptions::default()
        },
    );
    assert_eq!(skipped.report.total().predictions, 20_000);
    // The steady-state region must not be less accurate than the full run
    // (warming mispredictions are concentrated in the prefix).
    assert!(skipped.mkp() <= full.mkp() + 5.0);
}
