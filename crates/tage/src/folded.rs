//! Incrementally folded global-history registers.
//!
//! Each tagged component hashes a different (geometrically increasing)
//! amount of global history into its table index and partial tag. Hashing
//! hundreds of history bits from scratch for every prediction would be both
//! unrealistic in hardware and slow in simulation, so — exactly like the
//! hardware described in the TAGE papers — the predictor keeps *folded
//! history* registers that are updated in O(1) when one outcome enters the
//! history and one falls out of the component's window.

use core::fmt;

use tage_predictors::history::HistoryRegister;

/// A circular-shift-register fold of the most recent `original_length`
/// history bits into `compressed_length` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FoldedHistory {
    value: u64,
    original_length: usize,
    compressed_length: usize,
    outpoint: usize,
}

impl FoldedHistory {
    /// Creates a fold of `original_length` history bits into
    /// `compressed_length` bits, starting from an all-zero history.
    ///
    /// # Panics
    ///
    /// Panics if `compressed_length` is zero or greater than 32, or if
    /// `original_length` is zero.
    pub fn new(original_length: usize, compressed_length: usize) -> Self {
        assert!(original_length > 0, "original_length must be non-zero");
        assert!(
            (1..=32).contains(&compressed_length),
            "compressed_length must be in 1..=32"
        );
        FoldedHistory {
            value: 0,
            original_length,
            compressed_length,
            outpoint: original_length % compressed_length,
        }
    }

    /// The current folded value (fits in `compressed_length` bits).
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Overwrites the folded value — the writeback half of the lane-batched
    /// engine, which maintains the fold out-of-place in transposed arrays
    /// and stores it back when a lane leaves the group.
    ///
    /// `value` must be a value this fold could have produced (i.e. fit in
    /// `compressed_length` bits), which holds for anything read back from
    /// [`FoldedHistory::value`] or from the masked batched update.
    #[inline]
    pub(crate) fn set_value(&mut self, value: u64) {
        debug_assert_eq!(value >> self.compressed_length, 0);
        self.value = value;
    }

    /// The number of history bits folded.
    #[inline]
    pub fn original_length(&self) -> usize {
        self.original_length
    }

    /// The width of the folded value.
    #[inline]
    pub fn compressed_length(&self) -> usize {
        self.compressed_length
    }

    /// Updates the fold for a new outcome entering the history.
    ///
    /// `evicted` must be the outcome that falls out of this component's
    /// window, i.e. the bit that was `original_length - 1` branches ago
    /// *before* the new outcome is pushed.
    #[inline]
    pub fn update(&mut self, inserted: bool, evicted: bool) {
        let mask = if self.compressed_length == 64 {
            u64::MAX
        } else {
            (1u64 << self.compressed_length) - 1
        };
        self.value = (self.value << 1) | u64::from(inserted);
        self.value ^= u64::from(evicted) << self.outpoint;
        self.value ^= self.value >> self.compressed_length;
        self.value &= mask;
    }

    /// Recomputes the fold functionally from a history register — the
    /// reference implementation used by tests to validate the incremental
    /// update.
    pub fn recompute(&self, history: &HistoryRegister) -> u64 {
        history.fold(self.original_length, self.compressed_length)
    }

    /// Clears the fold (matches a cleared history register).
    pub fn clear(&mut self) {
        self.value = 0;
    }
}

impl fmt::Display for FoldedHistory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fold({} -> {} bits) = {:#x}",
            self.original_length, self.compressed_length, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_traces::SplitMix64;

    /// Drives an incremental fold and the functional reference together and
    /// checks they agree after every step.
    fn check_against_reference(original: usize, compressed: usize, steps: usize, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let mut history = HistoryRegister::new(original + 8);
        let mut fold = FoldedHistory::new(original, compressed);
        for step in 0..steps {
            let taken = rng.chance(0.5);
            let evicted = history.bit(original - 1);
            fold.update(taken, evicted);
            history.push(taken);
            assert_eq!(
                fold.value(),
                fold.recompute(&history),
                "divergence at step {step} (orig {original}, comp {compressed})"
            );
        }
    }

    #[test]
    fn incremental_fold_matches_functional_fold_small() {
        check_against_reference(5, 8, 500, 1);
        check_against_reference(12, 8, 500, 2);
    }

    #[test]
    fn incremental_fold_matches_functional_fold_typical_tage_sizes() {
        // Index folds for the medium configuration (9-bit indices).
        for length in [5, 11, 21, 44, 65, 130] {
            check_against_reference(length, 9, 400, length as u64);
        }
        // Tag folds (11 and 10 bits).
        check_against_reference(130, 11, 400, 77);
        check_against_reference(300, 10, 400, 78);
        check_against_reference(300, 11, 400, 79);
    }

    #[test]
    fn fold_shorter_than_output_tracks_raw_history() {
        let mut history = HistoryRegister::new(64);
        let mut fold = FoldedHistory::new(3, 8);
        for &taken in &[true, false, true, true] {
            let evicted = history.bit(2);
            fold.update(taken, evicted);
            history.push(taken);
        }
        // Last three outcomes: true, true, false (most recent first: 1,1,0).
        assert_eq!(fold.value(), history.low_bits(3));
    }

    #[test]
    fn clear_resets_to_empty_history() {
        let mut fold = FoldedHistory::new(20, 7);
        let mut history = HistoryRegister::new(32);
        for i in 0..50 {
            let evicted = history.bit(19);
            fold.update(i % 3 == 0, evicted);
            history.push(i % 3 == 0);
        }
        fold.clear();
        assert_eq!(fold.value(), 0);
    }

    #[test]
    #[should_panic(expected = "compressed_length must be in 1..=32")]
    fn rejects_zero_compressed_length() {
        FoldedHistory::new(10, 0);
    }

    #[test]
    #[should_panic(expected = "original_length must be non-zero")]
    fn rejects_zero_original_length() {
        FoldedHistory::new(0, 8);
    }

    #[test]
    fn accessors_and_display() {
        let fold = FoldedHistory::new(44, 9);
        assert_eq!(fold.original_length(), 44);
        assert_eq!(fold.compressed_length(), 9);
        assert!(format!("{fold}").contains("44"));
    }
}
