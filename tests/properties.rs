//! Property-style tests on the core data structures and invariants of the
//! workspace.
//!
//! The workspace builds without network access, so instead of `proptest`
//! these tests drive each invariant over a few hundred deterministic
//! pseudo-random cases generated with the in-tree [`SplitMix64`] generator.
//! Every case is reproducible from the printed seed.

use tage_confidence_suite::confidence::{
    ConfidenceLevel, ConfidenceReport, PredictionClass, TageConfidenceClassifier,
};
use tage_confidence_suite::predictors::counter::{SignedCounter, UnsignedCounter};
use tage_confidence_suite::predictors::history::HistoryRegister;
use tage_confidence_suite::tage::folded::FoldedHistory;
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence_suite::traces::reader::TraceReader;
use tage_confidence_suite::traces::writer::TraceWriter;
use tage_confidence_suite::traces::{BranchKind, BranchRecord, SplitMix64, Trace};

/// Number of pseudo-random cases per property.
const CASES: u64 = 60;

/// Runs `body` over `CASES` independent pseudo-random generators.
fn for_each_case(property: &str, mut body: impl FnMut(&mut SplitMix64)) {
    for case in 0..CASES {
        let seed = 0x5eed_0000 + case * 0x9e37;
        let mut rng = SplitMix64::new(seed);
        // The seed is part of the panic message via this wrapper so that a
        // failing case can be replayed in isolation.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(payload) = result {
            eprintln!("property `{property}` failed for seed {seed:#x}");
            std::panic::resume_unwind(payload);
        }
    }
}

fn arbitrary_record(rng: &mut SplitMix64) -> BranchRecord {
    BranchRecord {
        pc: rng.next_u64(),
        target: rng.next_u64(),
        taken: rng.chance(0.5),
        kind: match rng.next_below(5) {
            0 => BranchKind::Conditional,
            1 => BranchKind::Unconditional,
            2 => BranchKind::Call,
            3 => BranchKind::Return,
            _ => BranchKind::Indirect,
        },
        gap: rng.next_u32(),
    }
}

fn arbitrary_records(rng: &mut SplitMix64, max: u64) -> Vec<BranchRecord> {
    let len = rng.next_below(max) as usize;
    (0..len).map(|_| arbitrary_record(rng)).collect()
}

#[test]
fn signed_counters_stay_in_range_under_any_update_sequence() {
    for_each_case("signed_counter_range", |rng| {
        let bits = 1 + rng.next_below(7) as u8;
        let mut counter = SignedCounter::new(bits);
        for _ in 0..rng.next_below(200) {
            counter.update(rng.chance(0.5));
            assert!(counter.value() >= counter.min());
            assert!(counter.value() <= counter.max());
            // The centered magnitude is always odd and bounded.
            let magnitude = counter.centered_magnitude();
            assert_eq!(magnitude % 2, 1);
            assert!(u16::from(magnitude) < (1u16 << bits));
        }
    });
}

#[test]
fn unsigned_counters_saturate_and_never_underflow() {
    for_each_case("unsigned_counter_range", |rng| {
        let bits = 1 + rng.next_below(8) as u8;
        let mut counter = UnsignedCounter::new(bits);
        for _ in 0..rng.next_below(200) {
            if rng.chance(0.5) {
                counter.increment();
            } else {
                counter.decrement();
            }
            assert!(counter.value() <= counter.max());
        }
    });
}

#[test]
fn incremental_folded_history_always_matches_functional_fold() {
    for_each_case("folded_history", |rng| {
        let original = 1 + rng.next_below(299) as usize;
        let compressed = 1 + rng.next_below(15) as usize;
        let mut history = HistoryRegister::new(original + 4);
        let mut fold = FoldedHistory::new(original, compressed);
        for _ in 0..1 + rng.next_below(120) {
            let taken = rng.chance(0.5);
            let evicted = history.bit(original - 1);
            fold.update(taken, evicted);
            history.push(taken);
            assert_eq!(fold.value(), fold.recompute(&history));
        }
    });
}

#[test]
fn trace_binary_round_trip_is_lossless() {
    for_each_case("binary_round_trip", |rng| {
        let records = arbitrary_records(rng, 200);
        // The same alphabet the proptest generator used: [a-zA-Z0-9._-].
        const NAME_CHARS: &[u8] =
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
        let name: String = (0..rng.next_below(25))
            .map(|_| char::from(NAME_CHARS[rng.next_below(NAME_CHARS.len() as u64) as usize]))
            .collect();
        let trace = Trace::from_records(name, records);
        let bytes = TraceWriter::to_binary_bytes(&trace);
        let back = TraceReader::read_binary(&bytes[..]).expect("round trip");
        assert_eq!(back.records(), trace.records());
        assert_eq!(back.name(), trace.name());
        assert_eq!(back.instruction_count(), trace.instruction_count());
    });
}

#[test]
fn trace_text_round_trip_is_lossless() {
    for_each_case("text_round_trip", |rng| {
        let records = arbitrary_records(rng, 100);
        let trace = Trace::from_records("text-prop", records);
        let text = TraceWriter::to_text_string(&trace);
        let back = TraceReader::read_text(text.as_bytes()).expect("round trip");
        assert_eq!(back.records(), trace.records());
    });
}

#[test]
fn splitmix_chance_is_always_within_bounds() {
    for_each_case("splitmix_bounds", |rng| {
        let seed = rng.next_u64();
        let p = rng.next_f64();
        let mut inner = SplitMix64::new(seed);
        let x = inner.next_f64();
        assert!((0.0..1.0).contains(&x));
        let _ = inner.chance(p);
        let bound = 1 + (seed | 1) % 1000;
        assert!(inner.next_below(bound) < bound);
    });
}

#[test]
fn tage_prediction_magnitude_is_always_a_valid_class() {
    for_each_case("classification_total", |rng| {
        let config = TageConfig::small();
        let mut predictor = TagePredictor::new(config.clone());
        let classifier = TageConfidenceClassifier::new(&config);
        for _ in 0..1 + rng.next_below(200) {
            let pc = rng.next_u64();
            let taken = rng.chance(0.5);
            let prediction = predictor.predict(pc);
            let class = classifier.classify(&prediction);
            assert!(PredictionClass::ALL.contains(&class));
            // Level partition is total and consistent.
            assert!(class.level().classes().contains(&class));
            predictor.update(pc, taken, &prediction);
        }
    });
}

#[test]
fn tage_predict_never_mutates_state() {
    for_each_case("predict_pure", |rng| {
        let mut predictor = TagePredictor::new(TageConfig::small());
        let pcs: Vec<u64> = (0..1 + rng.next_below(50))
            .map(|_| rng.next_u64())
            .collect();
        // Train a little first.
        for (i, pc) in pcs.iter().enumerate() {
            let prediction = predictor.predict(*pc);
            predictor.update(*pc, i % 3 != 0, &prediction);
        }
        for pc in &pcs {
            let a = predictor.predict(*pc);
            let b = predictor.predict(*pc);
            assert_eq!(a, b);
        }
    });
}

#[test]
fn automaton_update_never_leaves_counter_range() {
    for_each_case("automaton_range", |rng| {
        let start = rng.next_below(8) as i8 - 4;
        let taken = rng.chance(0.5);
        let exponent = rng.next_below(11) as u32;
        for automaton in [
            CounterAutomaton::Standard,
            CounterAutomaton::probabilistic(exponent),
        ] {
            let mut counter = SignedCounter::with_value(3, start);
            automaton.update_counter(&mut counter, taken, rng);
            assert!((-4..=3).contains(&counter.value()));
            // The counter never moves by more than one step.
            assert!((i16::from(counter.value()) - i16::from(start)).abs() <= 1);
        }
    });
}

#[test]
fn confidence_report_fractions_are_consistent() {
    for_each_case("report_fractions", |rng| {
        let mut report = ConfidenceReport::new();
        let events = 1 + rng.next_below(300);
        for _ in 0..events {
            let class = PredictionClass::ALL[rng.next_below(7) as usize];
            report.record(class, rng.chance(0.3));
        }
        let pcov_sum: f64 = PredictionClass::ALL.iter().map(|&c| report.pcov(c)).sum();
        assert!((pcov_sum - 1.0).abs() < 1e-9);
        let level_preds: u64 = ConfidenceLevel::ALL
            .iter()
            .map(|&l| report.level(l).predictions)
            .sum();
        assert_eq!(level_preds, events);
        for class in PredictionClass::ALL {
            let rate = report.mprate_mkp(class);
            assert!((0.0..=1000.0).contains(&rate));
        }
        let confusion = report.binary_confusion(&[ConfidenceLevel::High]);
        assert_eq!(confusion.total(), events);
    });
}

#[test]
fn level_only_report_entries_aggregate_like_classes() {
    // The level-only buckets used by the baseline estimators obey the same
    // accounting identities as the classed buckets.
    for_each_case("report_level_only", |rng| {
        let mut report = ConfidenceReport::new();
        let events = 1 + rng.next_below(300);
        let mut mispredictions = 0;
        for _ in 0..events {
            let level = ConfidenceLevel::ALL[rng.next_below(3) as usize];
            let mispredicted = rng.chance(0.3);
            mispredictions += u64::from(mispredicted);
            report.record_level(level, mispredicted);
        }
        let level_preds: u64 = ConfidenceLevel::ALL
            .iter()
            .map(|&l| report.level(l).predictions)
            .sum();
        assert_eq!(level_preds, events);
        assert_eq!(report.total().predictions, events);
        assert_eq!(report.total().mispredictions, mispredictions);
        let confusion = report.binary_confusion(&[ConfidenceLevel::High]);
        assert_eq!(confusion.total(), events);
        assert_eq!(
            confusion.high_correct + confusion.high_incorrect,
            report.level(ConfidenceLevel::High).predictions
        );
    });
}

#[test]
fn classifier_window_never_exceeds_configuration() {
    for_each_case("classifier_window", |rng| {
        let window = rng.next_below(17) as u32;
        let config = TageConfig::small();
        let mut predictor = TagePredictor::new(config.clone());
        let mut classifier = TageConfidenceClassifier::with_window(&config, window);
        for i in 0..1 + rng.next_below(200) {
            let pc = 0x1000 + (u64::from(rng.chance(0.5)) + i % 7) * 64;
            let taken = rng.chance(0.5);
            let prediction = predictor.predict(pc);
            classifier.classify_and_observe(&prediction, taken);
            assert!(classifier.window_remaining() <= window);
            predictor.update(pc, taken, &prediction);
        }
    });
}
