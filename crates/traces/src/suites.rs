//! Named workload suites standing in for the CBP-1 and CBP-2 trace sets.
//!
//! Each suite contains 20 named traces, mirroring the composition of the
//! championship sets the paper uses:
//!
//! * [`cbp1_like`] — `FP-1..5`, `INT-1..5`, `MM-1..5`, `SERV-1..5`;
//! * [`cbp2_like`] — 20 SPEC CPU2000 / SPECjvm98-style names
//!   (`164.gzip` … `300.twolf`).
//!
//! The per-trace profiles are tuned so that the *qualitative* spread of the
//! paper is present: very predictable FP codes, server codes whose static
//! footprint overwhelms the small predictor, and "intrinsically
//! unpredictable" traces such as `300.twolf`, `164.gzip` or the `MM` pair.

use crate::synthetic::{BehaviorMix, SyntheticTraceBuilder, WorkloadProfile};
use crate::trace::Trace;

/// A named synthetic trace specification: profile plus seed.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    name: String,
    profile: WorkloadProfile,
    seed: u64,
}

impl TraceSpec {
    /// Creates a new specification.
    pub fn new(name: impl Into<String>, profile: WorkloadProfile, seed: u64) -> Self {
        TraceSpec {
            name: name.into(),
            profile,
            seed,
        }
    }

    /// The trace name (e.g. `"SERV-2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workload profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the trace with the given number of conditional branches.
    pub fn generate(&self, conditional_branches: usize) -> Trace {
        SyntheticTraceBuilder::new(self.name.clone(), self.profile.clone(), self.seed)
            .build(conditional_branches)
    }
}

/// A named collection of trace specifications.
#[derive(Debug, Clone)]
pub struct Suite {
    name: String,
    traces: Vec<TraceSpec>,
}

impl Suite {
    /// Creates a suite from parts.
    pub fn new(name: impl Into<String>, traces: Vec<TraceSpec>) -> Self {
        Suite {
            name: name.into(),
            traces,
        }
    }

    /// The suite name (`"CBP-1-like"` / `"CBP-2-like"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The trace specifications.
    pub fn traces(&self) -> &[TraceSpec] {
        &self.traces
    }

    /// Looks a specification up by trace name.
    pub fn trace(&self, name: &str) -> Option<&TraceSpec> {
        self.traces.iter().find(|t| t.name() == name)
    }

    /// Generates every trace in the suite with the given length.
    pub fn generate_all(&self, conditional_branches: usize) -> Vec<Trace> {
        self.traces
            .iter()
            .map(|spec| spec.generate(conditional_branches))
            .collect()
    }
}

/// Tweaks a base profile so sibling traces in a category differ:
///
/// * `footprint_scale` scales the static branch footprint,
/// * `extra_noise` adds outcome noise (intrinsic unpredictability),
/// * `biased_boost` enlarges the data-dependent (Bernoulli) fraction and
///   widens its bias range towards 50/50,
/// * `pattern_max` sets the longest repeating-pattern length — long patterns
///   need long global histories, which is what differentiates the 16 K /
///   64 K / 256 K predictors.
fn variant(
    base: WorkloadProfile,
    footprint_scale: f64,
    extra_noise: f64,
    biased_boost: f64,
    pattern_max: usize,
) -> WorkloadProfile {
    let mut p = base;
    p.static_branches = ((p.static_branches as f64 * footprint_scale) as usize).max(8);
    // Only a quarter of the "extra unpredictability" budget becomes uniform
    // outcome noise; the rest is modelled as a larger data-dependent branch
    // population (below), which is where real programs concentrate their
    // intrinsic unpredictability.
    p.noise = (p.noise + extra_noise * 0.15).clamp(0.0, 0.25);
    p.mix = BehaviorMix {
        biased_weight: p.mix.biased_weight + biased_boost + extra_noise * 3.0,
        ..p.mix
    };
    if biased_boost > 0.0 {
        // A larger data-dependent fraction also means weaker biases.
        p.bias_range.0 = (p.bias_range.0 - biased_boost / 2.0).max(0.78);
    }
    p.pattern_length_range.1 = pattern_max.max(p.pattern_length_range.0 + 1);
    p.history_lag_range.1 = (pattern_max / 2).clamp(p.history_lag_range.0 + 1, 24);
    p
}

/// Builds the 20-trace CBP-1-like suite (`FP`, `INT`, `MM`, `SERV` × 5).
pub fn cbp1_like() -> Suite {
    let mut traces = Vec::with_capacity(20);
    // FP: loop dominated, very predictable; FP-4/FP-5 slightly noisier.
    let fp = WorkloadProfile::fp_like();
    traces.push(TraceSpec::new(
        "FP-1",
        variant(fp.clone(), 0.8, 0.000, 0.00, 8),
        0x1001,
    ));
    traces.push(TraceSpec::new(
        "FP-2",
        variant(fp.clone(), 1.0, 0.001, 0.00, 12),
        0x1002,
    ));
    traces.push(TraceSpec::new(
        "FP-3",
        variant(fp.clone(), 1.2, 0.002, 0.02, 16),
        0x1003,
    ));
    traces.push(TraceSpec::new(
        "FP-4",
        variant(fp.clone(), 1.5, 0.003, 0.04, 20),
        0x1004,
    ));
    traces.push(TraceSpec::new(
        "FP-5",
        variant(fp, 2.0, 0.005, 0.05, 28),
        0x1005,
    ));
    // INT: correlated, moderate footprint; INT-5 is small and very hot.
    let int = WorkloadProfile::integer_like();
    traces.push(TraceSpec::new(
        "INT-1",
        variant(int.clone(), 1.0, 0.003, 0.00, 16),
        0x2001,
    ));
    traces.push(TraceSpec::new(
        "INT-2",
        variant(int.clone(), 1.4, 0.012, 0.08, 32),
        0x2002,
    ));
    traces.push(TraceSpec::new(
        "INT-3",
        variant(int.clone(), 1.8, 0.018, 0.12, 24),
        0x2003,
    ));
    traces.push(TraceSpec::new(
        "INT-4",
        variant(int.clone(), 1.2, 0.006, 0.04, 40),
        0x2004,
    ));
    traces.push(TraceSpec::new(
        "INT-5",
        variant(int, 0.15, 0.001, 0.00, 12),
        0x2005,
    ));
    // MM: large data-dependent component, partly unpredictable.
    let mm = WorkloadProfile::multimedia_like();
    traces.push(TraceSpec::new(
        "MM-1",
        variant(mm.clone(), 1.0, 0.015, 0.12, 24),
        0x3001,
    ));
    traces.push(TraceSpec::new(
        "MM-2",
        variant(mm.clone(), 1.3, 0.020, 0.15, 32),
        0x3002,
    ));
    traces.push(TraceSpec::new(
        "MM-3",
        variant(mm.clone(), 0.8, 0.006, 0.04, 16),
        0x3003,
    ));
    traces.push(TraceSpec::new(
        "MM-4",
        variant(mm.clone(), 1.0, 0.008, 0.06, 40),
        0x3004,
    ));
    traces.push(TraceSpec::new(
        "MM-5",
        variant(mm, 1.6, 0.030, 0.20, 36),
        0x3005,
    ));
    // SERV: huge footprint, low locality — capacity stressed.
    let srv = WorkloadProfile::server_like();
    traces.push(TraceSpec::new(
        "SERV-1",
        variant(srv.clone(), 1.0, 0.004, 0.03, 12),
        0x4001,
    ));
    traces.push(TraceSpec::new(
        "SERV-2",
        variant(srv.clone(), 1.6, 0.008, 0.06, 16),
        0x4002,
    ));
    traces.push(TraceSpec::new(
        "SERV-3",
        variant(srv.clone(), 1.3, 0.006, 0.05, 14),
        0x4003,
    ));
    traces.push(TraceSpec::new(
        "SERV-4",
        variant(srv.clone(), 0.8, 0.003, 0.02, 10),
        0x4004,
    ));
    traces.push(TraceSpec::new(
        "SERV-5",
        variant(srv, 2.0, 0.010, 0.08, 20),
        0x4005,
    ));
    Suite::new("CBP-1-like", traces)
}

/// Builds the 20-trace CBP-2-like suite (SPEC CPU2000 / SPECjvm98-style
/// names as in the paper's Figure 3).
pub fn cbp2_like() -> Suite {
    let fp = WorkloadProfile::fp_like();
    let int = WorkloadProfile::integer_like();
    let mm = WorkloadProfile::multimedia_like();
    let srv = WorkloadProfile::server_like();

    let traces = vec![
        // Compression codes: sizeable intrinsically-unpredictable component.
        TraceSpec::new(
            "164.gzip",
            variant(mm.clone(), 0.7, 0.030, 0.22, 20),
            0x5001,
        ),
        TraceSpec::new(
            "175.vpr",
            variant(int.clone(), 1.0, 0.018, 0.12, 28),
            0x5002,
        ),
        // gcc: large footprint, correlated.
        TraceSpec::new(
            "176.gcc",
            variant(srv.clone(), 0.6, 0.004, 0.02, 32),
            0x5003,
        ),
        TraceSpec::new(
            "181.mcf",
            variant(int.clone(), 0.8, 0.015, 0.12, 20),
            0x5004,
        ),
        TraceSpec::new(
            "186.crafty",
            variant(int.clone(), 1.3, 0.010, 0.08, 40),
            0x5005,
        ),
        TraceSpec::new(
            "197.parser",
            variant(int.clone(), 1.2, 0.012, 0.10, 32),
            0x5006,
        ),
        TraceSpec::new(
            "201.compress",
            variant(mm.clone(), 0.5, 0.025, 0.18, 16),
            0x5007,
        ),
        TraceSpec::new(
            "202.jess",
            variant(srv.clone(), 0.5, 0.003, 0.02, 20),
            0x5008,
        ),
        TraceSpec::new(
            "205.raytrace",
            variant(fp.clone(), 1.2, 0.002, 0.03, 14),
            0x5009,
        ),
        TraceSpec::new("209.db", variant(srv.clone(), 0.7, 0.005, 0.04, 24), 0x500A),
        TraceSpec::new(
            "213.javac",
            variant(srv.clone(), 0.9, 0.006, 0.04, 28),
            0x500B,
        ),
        TraceSpec::new(
            "222.mpegaudio",
            variant(fp.clone(), 0.9, 0.000, 0.00, 10),
            0x500C,
        ),
        TraceSpec::new(
            "227.mtrt",
            variant(fp.clone(), 1.1, 0.002, 0.02, 16),
            0x500D,
        ),
        TraceSpec::new(
            "228.jack",
            variant(srv.clone(), 0.6, 0.005, 0.03, 22),
            0x500E,
        ),
        TraceSpec::new("252.eon", variant(fp.clone(), 0.8, 0.000, 0.00, 8), 0x500F),
        TraceSpec::new(
            "253.perlbmk",
            variant(srv.clone(), 0.8, 0.003, 0.02, 26),
            0x5010,
        ),
        TraceSpec::new(
            "254.gap",
            variant(int.clone(), 0.9, 0.005, 0.04, 22),
            0x5011,
        ),
        TraceSpec::new("255.vortex", variant(srv, 0.9, 0.002, 0.01, 24), 0x5012),
        TraceSpec::new("256.bzip2", variant(mm, 0.6, 0.020, 0.15, 18), 0x5013),
        // twolf: the paper's canonical "intrinsically unpredictable" trace.
        TraceSpec::new("300.twolf", variant(int, 1.0, 0.035, 0.25, 26), 0x5014),
    ];
    Suite::new("CBP-2-like", traces)
}

/// Builds a 4-trace subset of the CBP-1-like suite (one trace per workload
/// category), sized for smoke tests and CI campaign grids.
pub fn cbp1_mini() -> Suite {
    let full = cbp1_like();
    Suite::new(
        "CBP-1-mini",
        ["FP-1", "INT-2", "MM-5", "SERV-2"]
            .iter()
            .map(|name| {
                full.trace(name)
                    .expect("mini suite names exist in CBP-1-like")
                    .clone()
            })
            .collect(),
    )
}

/// Returns both full suites.
pub fn all_suites() -> Vec<Suite> {
    vec![cbp1_like(), cbp2_like()]
}

/// The registry tokens accepted by [`by_name`], in listing order.
pub const REGISTRY: [&str; 3] = ["cbp1", "cbp2", "cbp1-mini"];

/// Looks a suite up by registry token or display name.
///
/// Accepted spellings (case-insensitive): `cbp1` / `CBP-1-like`, `cbp2` /
/// `CBP-2-like`, and `cbp1-mini` / `CBP-1-mini` for the 4-trace smoke
/// subset.
pub fn by_name(name: &str) -> Option<Suite> {
    match name.to_ascii_lowercase().as_str() {
        "cbp1" | "cbp-1" | "cbp-1-like" => Some(cbp1_like()),
        "cbp2" | "cbp-2" | "cbp-2-like" => Some(cbp2_like()),
        "cbp1-mini" | "cbp-1-mini" => Some(cbp1_mini()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_suites_have_twenty_uniquely_named_traces() {
        for suite in all_suites() {
            assert_eq!(suite.traces().len(), 20, "{}", suite.name());
            let mut names: Vec<&str> = suite.traces().iter().map(|t| t.name()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), 20, "duplicate names in {}", suite.name());
        }
    }

    #[test]
    fn all_specs_have_valid_profiles() {
        for suite in all_suites() {
            for spec in suite.traces() {
                assert!(
                    spec.profile().validate().is_ok(),
                    "{}/{} invalid",
                    suite.name(),
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn lookup_by_name_works() {
        let suite = cbp1_like();
        assert!(suite.trace("SERV-2").is_some());
        assert!(suite.trace("nonexistent").is_none());
        let suite = cbp2_like();
        assert!(suite.trace("300.twolf").is_some());
    }

    #[test]
    fn registry_resolves_every_token() {
        for token in REGISTRY {
            assert!(by_name(token).is_some(), "{token}");
        }
        assert_eq!(by_name("cbp1").unwrap().name(), "CBP-1-like");
        assert_eq!(by_name("CBP-2-like").unwrap().name(), "CBP-2-like");
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn mini_suite_has_one_trace_per_category() {
        let mini = cbp1_mini();
        assert_eq!(mini.traces().len(), 4);
        assert_eq!(mini.name(), "CBP-1-mini");
        for name in ["FP-1", "INT-2", "MM-5", "SERV-2"] {
            assert!(mini.trace(name).is_some(), "{name}");
        }
    }

    #[test]
    fn generation_is_deterministic_and_named() {
        let suite = cbp1_like();
        let spec = suite.trace("INT-1").unwrap();
        let a = spec.generate(2_000);
        let b = spec.generate(2_000);
        assert_eq!(a.records(), b.records());
        assert_eq!(a.name(), "INT-1");
    }

    #[test]
    fn generate_all_produces_all_traces() {
        let suite = cbp1_like();
        let traces = suite.generate_all(500);
        assert_eq!(traces.len(), 20);
        assert!(traces
            .iter()
            .all(|t| { t.iter().filter(|r| r.kind.is_conditional()).count() == 500 }));
    }

    #[test]
    fn server_traces_have_much_larger_footprints_than_fp_traces() {
        let suite = cbp1_like();
        let fp = suite.trace("FP-1").unwrap().generate(20_000);
        let srv = suite.trace("SERV-5").unwrap().generate(20_000);
        assert!(srv.stats().static_conditional > 5 * fp.stats().static_conditional);
    }

    #[test]
    fn seeds_differ_across_traces_in_a_suite() {
        for suite in all_suites() {
            let mut seeds: Vec<u64> = suite.traces().iter().map(|t| t.seed()).collect();
            seeds.sort_unstable();
            seeds.dedup();
            assert_eq!(seeds.len(), 20);
        }
    }
}
