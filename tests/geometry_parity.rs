//! Geometry parity suite — the pin for the committed preset geometry files.
//!
//! `geometries/{tage-16k,tage-64k,tage-256k}.json` are the declarative
//! twins of `TageConfig::{small,medium,large}`. Three contracts:
//!
//! 1. **Structural parity**: each committed file loads to exactly the
//!    geometry `TageGeometry::from_config` derives from its preset —
//!    same value, same spec digest.
//! 2. **Byte stability**: the committed bytes equal the canonical
//!    `to_json()` rendering, so the files cannot drift from the renderer
//!    (regenerate with `cargo run --example export_geometries`).
//! 3. **Behavioral parity**: a predictor built from a loaded geometry file
//!    is bit-identical to one built from the legacy preset constructor —
//!    predictions, internal RNG evolution, and snapshot bytes all match
//!    over a trained run.

use tage_confidence_suite::tage::{TageConfig, TageGeometry, TagePredictor};
use tage_confidence_suite::traces::SplitMix64;

/// The committed files and the presets they mirror.
fn presets() -> [(&'static str, TageConfig); 3] {
    [
        ("geometries/tage-16k.json", TageConfig::small()),
        ("geometries/tage-64k.json", TageConfig::medium()),
        ("geometries/tage-256k.json", TageConfig::large()),
    ]
}

#[test]
fn committed_files_load_to_the_preset_geometries() {
    for (path, config) in presets() {
        let loaded = TageGeometry::load(path).expect("committed geometry loads");
        let derived = TageGeometry::from_config(&config);
        assert_eq!(loaded, derived, "{path} drifted from its preset");
        assert_eq!(loaded.spec_digest(), derived.spec_digest(), "{path}");
        assert_eq!(loaded.storage_bits(), config.storage_bits(), "{path}");
        assert_eq!(loaded.name(), config.name(), "{path}");
    }
}

#[test]
fn committed_bytes_are_the_canonical_rendering() {
    for (path, _) in presets() {
        let bytes = std::fs::read_to_string(path).expect("committed geometry readable");
        let canonical = TageGeometry::from_json(&bytes)
            .expect("committed geometry parses")
            .to_json();
        assert_eq!(
            bytes, canonical,
            "{path} is not byte-stable; regenerate with `cargo run --example export_geometries`"
        );
    }
}

#[test]
fn geometry_built_predictors_are_bit_identical_to_preset_constructors() {
    for (path, config) in presets() {
        let geometry = TageGeometry::load(path).expect("committed geometry loads");
        let mut from_file = TagePredictor::new(geometry);
        let mut from_preset = TagePredictor::new(config);
        assert_eq!(from_file.spec_digest(), from_preset.spec_digest(), "{path}");

        // A biased-with-noise stream long enough to train the tagged
        // tables and fire the probabilistic automaton's RNG.
        let mut rng = SplitMix64::new(0x9e07_e706_e0a3_a1c5);
        for _ in 0..20_000 {
            let pc = 0x4000 + (rng.next_u64() % 64) * 4;
            let taken = pc.is_multiple_of(3) ^ rng.next_u64().is_multiple_of(8);
            let a = from_file.predict(pc);
            let b = from_preset.predict(pc);
            assert_eq!(a.taken, b.taken, "{path} diverged");
            from_file.update(pc, taken, &a);
            from_preset.update(pc, taken, &b);
        }
        // Snapshot bytes capture every table, history, and the RNG word:
        // byte equality is full-state equality.
        assert_eq!(from_file.snapshot(), from_preset.snapshot(), "{path}");
    }
}
