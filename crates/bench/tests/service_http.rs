//! End-to-end contract of the `tage-serve` campaign daemon: byte-stable
//! reports, content-addressed memoization across campaigns, kill/restart
//! resumability through the journal + cell store, and hardened request
//! parsing.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use tage_bench::campaign::run_campaign_with_engine;
use tage_bench::jsonish;
use tage_bench::service::client::submit_grid;
use tage_bench::service::grid::GridRequest;
use tage_bench::service::http::client_request;
use tage_bench::service::{start, ServeOptions, ServerHandle};
use tage_sim::EngineKind;

/// The test grid: 2 predictors × 2 schemes × 1 suite × 1 scenario = 3
/// executable cells + 1 skipped (gshare × storage-free).
fn grid(label: &str) -> GridRequest {
    GridRequest {
        label: label.to_string(),
        predictors: vec!["tage-16k".to_string(), "gshare".to_string()],
        schemes: vec!["storage-free".to_string(), "jrs-classic".to_string()],
        suites: vec!["cbp1-mini".to_string()],
        trace_dirs: Vec::new(),
        scenarios: vec!["baseline".to_string()],
        branches_per_trace: 1_000,
    }
}

/// The byte-stable report a one-shot CLI run of the same grid produces.
fn one_shot_report(request: &GridRequest) -> String {
    let spec = request.to_spec().expect("test grid resolves");
    run_campaign_with_engine(&spec, 2, EngineKind::Multilane)
        .expect("test grid runs")
        .render_json(false)
}

fn temp_dirs(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("tage-serve-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    (base.join("cells"), base.join("journal"))
}

fn serve(store: &PathBuf, journal: &PathBuf) -> ServerHandle {
    start(ServeOptions::ephemeral(store, journal)).expect("daemon starts")
}

fn get(handle: &ServerHandle, path: &str) -> (u16, String) {
    client_request(&handle.addr().to_string(), "GET", path, None).expect("request succeeds")
}

fn post(handle: &ServerHandle, path: &str, body: &str) -> (u16, String) {
    client_request(&handle.addr().to_string(), "POST", path, Some(body)).expect("request succeeds")
}

fn metric(handle: &ServerHandle, field: &str) -> f64 {
    let (status, body) = get(handle, "/metrics");
    assert_eq!(status, 200, "{body}");
    jsonish::number_field(&body, field).unwrap_or_else(|| panic!("no metric {field} in {body}"))
}

fn wait_finished(handle: &ServerHandle, id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = get(handle, &format!("/campaigns/{id}"));
        assert_eq!(status, 200, "{body}");
        match jsonish::string_field(&body, "state").as_deref() {
            Some("finished") => break,
            Some("failed") => panic!("campaign failed: {body}"),
            _ => {
                assert!(Instant::now() < deadline, "campaign {id} never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    let (status, report) = get(handle, &format!("/campaigns/{id}/report"));
    assert_eq!(status, 200, "{report}");
    report
}

fn shutdown(handle: ServerHandle) {
    handle.request_shutdown();
    handle.join();
}

#[test]
fn served_report_byte_matches_a_one_shot_cli_run() {
    let (store, journal) = temp_dirs("byte-match");
    let handle = serve(&store, &journal);
    let request = grid("served");
    let expected = one_shot_report(&request);

    let (status, ack) = post(&handle, "/campaigns", &request.to_json());
    assert_eq!(status, 202, "{ack}");
    assert_eq!(
        jsonish::string_field(&ack, "id").as_deref(),
        Some(request.id().as_str())
    );
    let report = wait_finished(&handle, &request.id());
    assert_eq!(report, expected, "served report must byte-match the CLI");

    // The incremental status of a finished campaign embeds the full report
    // and lists nothing pending.
    let (status, body) = get(&handle, &format!("/campaigns/{}", request.id()));
    assert_eq!(status, 200);
    assert_eq!(jsonish::number_field(&body, "pending_cells"), Some(0.0));

    shutdown(handle);
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn resubmitted_and_relabelled_grids_are_answered_from_cache() {
    let (store, journal) = temp_dirs("cache");
    let handle = serve(&store, &journal);
    let request = grid("original");
    let (status, _) = post(&handle, "/campaigns", &request.to_json());
    assert_eq!(status, 202);
    let first = wait_finished(&handle, &request.id());
    assert_eq!(metric(&handle, "cells_computed"), 3.0);

    // Identical resubmission: same id, acknowledged as known, no new work.
    let (status, ack) = post(&handle, "/campaigns", &request.to_json());
    assert_eq!(status, 202);
    assert_eq!(
        jsonish::string_field(&ack, "state").as_deref(),
        Some("finished")
    );
    assert!(ack.contains("\"known\": true"), "{ack}");

    // A differently-labelled grid over the same content is a new campaign,
    // but every cell restores from the store: zero recompute.
    let relabelled = grid("relabelled");
    assert_ne!(relabelled.id(), request.id());
    let (status, ack) = post(&handle, "/campaigns", &relabelled.to_json());
    assert_eq!(status, 202, "{ack}");
    assert_eq!(
        jsonish::number_field(&ack, "pending_cells"),
        Some(0.0),
        "relabelled grid must be fully restored: {ack}"
    );
    let second = wait_finished(&handle, &relabelled.id());
    assert_eq!(metric(&handle, "cells_computed"), 3.0, "no recompute");
    assert_eq!(metric(&handle, "cells_restored"), 3.0);

    // Only the label line may differ between the two reports.
    let diff: Vec<(&str, &str)> = first
        .lines()
        .zip(second.lines())
        .filter(|(a, b)| a != b)
        .collect();
    assert_eq!(
        diff,
        vec![(" \"label\": \"original\",", " \"label\": \"relabelled\",")]
    );

    shutdown(handle);
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn concurrent_overlapping_campaigns_compute_each_cell_once() {
    let (store, journal) = temp_dirs("concurrent");
    let handle = serve(&store, &journal);
    // Submit two campaigns over the same cells back to back, before the
    // first can finish: the second either attaches to the in-flight cells
    // or restores stored ones — never recomputes.
    let a = grid("concurrent-a");
    let b = grid("concurrent-b");
    let (status, _) = post(&handle, "/campaigns", &a.to_json());
    assert_eq!(status, 202);
    let (status, _) = post(&handle, "/campaigns", &b.to_json());
    assert_eq!(status, 202);
    let report_a = wait_finished(&handle, &a.id());
    let report_b = wait_finished(&handle, &b.id());
    assert_eq!(
        metric(&handle, "cells_computed"),
        3.0,
        "each unique cell computes exactly once across campaigns"
    );
    assert_eq!(
        report_a
            .lines()
            .filter(|l| !l.contains("\"label\""))
            .count(),
        report_b
            .lines()
            .filter(|l| !l.contains("\"label\""))
            .count()
    );
    shutdown(handle);
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn killed_daemon_rehydrates_and_finishes_to_identical_bytes() {
    let (store, journal) = temp_dirs("restart");
    let request = grid("restartable");
    let expected = one_shot_report(&request);

    // First daemon: accept the grid, then die almost immediately — whatever
    // cells the first batch finished are in the store, the rest are only in
    // the journal.
    let first = serve(&store, &journal);
    let (status, _) = post(&first, "/campaigns", &request.to_json());
    assert_eq!(status, 202);
    std::thread::sleep(Duration::from_millis(30));
    shutdown(first);

    // Second daemon over the same directories: the journal re-opens the
    // campaign, stored cells restore, missing cells execute.
    let second = serve(&store, &journal);
    assert_eq!(second.rehydrated(), 1, "journaled campaign re-opens");
    let report = wait_finished(&second, &request.id());
    assert_eq!(report, expected, "resumed report must byte-match the CLI");
    shutdown(second);
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn hostile_requests_are_rejected_with_useful_errors() {
    let (store, journal) = temp_dirs("hostile");
    let handle = serve(&store, &journal);

    // Trailing garbage, with its byte offset.
    let (status, body) = post(&handle, "/campaigns", "{\"predictors\": [\"x\"]} extra");
    assert_eq!(status, 400);
    let error = jsonish::string_field(&body, "error").unwrap();
    assert!(
        error.contains("trailing garbage") && error.contains("byte 22"),
        "{error}"
    );

    // Nesting past the depth cap.
    let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
    let (status, body) = post(&handle, "/campaigns", &deep);
    assert_eq!(status, 400);
    assert!(body.contains("nesting"), "{body}");

    // Structurally fine, semantically empty.
    let (status, body) = post(&handle, "/campaigns", "{}");
    assert_eq!(status, 400);
    assert!(body.contains("predictors"), "{body}");

    // Unknown axis tokens are named.
    let mut bad = grid("bad");
    bad.predictors = vec!["perceptron-9000".to_string()];
    let (status, body) = post(&handle, "/campaigns", &bad.to_json());
    assert_eq!(status, 400);
    assert!(body.contains("perceptron-9000"), "{body}");

    // Unknown campaign / endpoint.
    let (status, _) = get(&handle, "/campaigns/ffffffffffffffff");
    assert_eq!(status, 404);
    let (status, _) = get(&handle, "/nope");
    assert_eq!(status, 404);

    // Health and metrics answer even with nothing submitted.
    let (status, body) = get(&handle, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("true"));
    assert_eq!(metric(&handle, "campaigns_submitted"), 0.0);

    shutdown(handle);
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn shutdown_endpoint_drains_and_exits() {
    let (store, journal) = temp_dirs("shutdown");
    let handle = serve(&store, &journal);
    let (status, body) = post(&handle, "/shutdown", "");
    assert_eq!(status, 200);
    assert!(body.contains("shutting_down"), "{body}");
    assert!(handle.shutdown_requested());
    handle.join();
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}

#[test]
fn submit_client_round_trips_the_report() {
    let (store, journal) = temp_dirs("client");
    let handle = serve(&store, &journal);
    let request = grid("via-client");
    let expected = one_shot_report(&request);

    // Fire-and-forget first: the ack carries the id, no report.
    let no_wait = submit_grid(&handle.base_url(), &request, false).expect("submit succeeds");
    assert_eq!(no_wait.id, request.id());
    assert!(no_wait.report.is_none());

    // Waiting resubmission of the same grid converges on the same campaign
    // and returns the byte-stable report.
    let waited = submit_grid(&handle.base_url(), &request, true).expect("submit succeeds");
    assert_eq!(waited.id, request.id());
    assert_eq!(waited.state, "finished");
    assert_eq!(waited.report.as_deref(), Some(expected.as_str()));

    shutdown(handle);
    let _ = std::fs::remove_dir_all(store.parent().unwrap());
}
