//! Quick diagnostic: per-trace MPKI and per-class rates for tuning the
//! synthetic workloads against the paper's reported ranges.

use tage::{CounterAutomaton, TageConfig};
use tage_confidence::{ConfidenceLevel, PredictionClass};
use tage_sim::runner::{run_trace, RunOptions};
use tage_traces::suites;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    for suite in [suites::cbp1_like(), suites::cbp2_like()] {
        println!("=== {} ({} branches/trace) ===", suite.name(), n);
        for config in [
            TageConfig::small().with_automaton(CounterAutomaton::paper_default()),
            TageConfig::large().with_automaton(CounterAutomaton::paper_default()),
        ] {
            let mut sum_mpki = 0.0;
            println!("--- {} ---", config.name());
            for spec in suite.traces() {
                let trace = spec.generate(n);
                let r = run_trace(&config, &trace, &RunOptions::default());
                sum_mpki += r.mpki();
                let rep = &r.report;
                println!(
                    "{:<14} MPKI {:6.2}  MKP {:6.1} | bim pcov {:.2} | hi {:6.1}({:.2}) med {:6.1}({:.2}) low {:6.1}({:.2}) | Stag {:6.1}({:.2}) Wtag {:6.1}",
                    r.trace_name,
                    r.mpki(),
                    r.mkp(),
                    rep.pcov(PredictionClass::HighConfBim)
                        + rep.pcov(PredictionClass::MediumConfBim)
                        + rep.pcov(PredictionClass::LowConfBim),
                    rep.level_mprate_mkp(ConfidenceLevel::High),
                    rep.level_pcov(ConfidenceLevel::High),
                    rep.level_mprate_mkp(ConfidenceLevel::Medium),
                    rep.level_pcov(ConfidenceLevel::Medium),
                    rep.level_mprate_mkp(ConfidenceLevel::Low),
                    rep.level_pcov(ConfidenceLevel::Low),
                    rep.mprate_mkp(PredictionClass::Stag),
                    rep.pcov(PredictionClass::Stag),
                    rep.mprate_mkp(PredictionClass::Wtag),
                );
            }
            println!("mean MPKI {:.2}", sum_mpki / suite.traces().len() as f64);
        }
    }
}
