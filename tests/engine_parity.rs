//! Parity tests for the generic simulation engine.
//!
//! The engine refactor replaced three bespoke trace loops (TAGE runner,
//! baseline-estimator runner, gating/SMT models) with one generic execution
//! path. These tests pin the refactor down:
//!
//! * a hand-rolled reference loop — written exactly like the pre-engine
//!   runner — must produce the *identical* `ConfidenceReport` as
//!   `run_trace`;
//! * the baseline path through the engine must agree with a hand-rolled
//!   predictor + estimator loop on every count;
//! * parallel `run_suite` must be bit-identical to a serial run for any
//!   worker count;
//! * TAGE driven as a `dyn BranchPredictor` trait object through the
//!   engine's margin path must mispredict exactly like the rich native
//!   path.

use tage_confidence_suite::confidence::estimators::JrsEstimator;
use tage_confidence_suite::confidence::{
    BinaryConfusion, ConfidenceEstimator, ConfidenceLevel, ConfidenceReport,
    TageConfidenceClassifier,
};
use tage_confidence_suite::predictors::{BranchPredictor, GsharePredictor};
use tage_confidence_suite::sim::baseline::run_baseline;
use tage_confidence_suite::sim::engine::{ReportObserver, SimEngine};
use tage_confidence_suite::sim::runner::{run_trace, RunOptions};
use tage_confidence_suite::sim::suite::{run_suite, run_suite_with_parallelism};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence_suite::traces::{suites, Suite, Trace};

const N: usize = 20_000;

fn trace(name: &str, n: usize) -> Trace {
    suites::cbp1_like().trace(name).unwrap().generate(n)
}

/// The pre-engine TAGE trace loop, reproduced verbatim as a reference
/// implementation.
fn reference_tage_run(config: &TageConfig, trace: &Trace, warmup: u64) -> ConfidenceReport {
    let mut predictor = TagePredictor::new(config.clone());
    let mut classifier = TageConfidenceClassifier::new(config);
    let mut report = ConfidenceReport::new();
    let mut conditional_seen: u64 = 0;
    for record in trace.iter() {
        let in_measurement = conditional_seen >= warmup;
        if !record.kind.is_conditional() {
            if in_measurement {
                report.add_instructions(record.instructions());
            }
            continue;
        }
        conditional_seen += 1;
        let prediction = predictor.predict(record.pc);
        let class = classifier.classify_and_observe(&prediction, record.taken);
        let mispredicted = prediction.taken != record.taken;
        if in_measurement {
            report.record(class, mispredicted);
            report.add_instructions(record.instructions());
        }
        predictor.update(record.pc, record.taken, &prediction);
    }
    report
}

#[test]
fn engine_reproduces_the_reference_tage_loop_exactly() {
    for config in [
        TageConfig::small(),
        TageConfig::medium().with_automaton(CounterAutomaton::paper_default()),
    ] {
        let trace = trace("MM-3", N);
        let reference = reference_tage_run(&config, &trace, 0);
        let engine = run_trace(&config, &trace, &RunOptions::default());
        assert_eq!(
            engine.report,
            reference,
            "{}: the generic engine must be bit-identical to the bespoke loop",
            config.name()
        );
    }
}

#[test]
fn engine_reproduces_the_reference_loop_with_warmup() {
    let config = TageConfig::small();
    let trace = trace("SERV-2", N);
    let reference = reference_tage_run(&config, &trace, 5_000);
    let options = RunOptions {
        warmup_branches: 5_000,
        ..RunOptions::default()
    };
    let engine = run_trace(&config, &trace, &options);
    assert_eq!(engine.report, reference);
    assert_eq!(engine.conditional_branches, N as u64 - 5_000);
}

#[test]
fn baseline_path_matches_a_hand_rolled_predictor_estimator_loop() {
    let trace = trace("INT-1", N);

    // Hand-rolled reference: the pre-engine baseline loop.
    let mut predictor = GsharePredictor::new(12, 12);
    let mut estimator = JrsEstimator::classic(12);
    let mut confusion = BinaryConfusion::default();
    let mut mispredictions = 0u64;
    let mut level_predictions = [0u64; 3];
    for record in trace.iter().filter(|r| r.kind.is_conditional()) {
        let prediction = predictor.predict(record.pc);
        let level = estimator.estimate(record.pc, &prediction);
        let mispredicted = prediction.taken != record.taken;
        mispredictions += u64::from(mispredicted);
        confusion.record(level == ConfidenceLevel::High, mispredicted);
        let slot = match level {
            ConfidenceLevel::Low => 0,
            ConfidenceLevel::Medium => 1,
            ConfidenceLevel::High => 2,
        };
        level_predictions[slot] += 1;
        estimator.update(record.pc, &prediction, record.taken);
        predictor.update(record.pc, record.taken, &prediction);
    }

    // The same pair through the generic engine.
    let mut engine_predictor = GsharePredictor::new(12, 12);
    let mut engine_estimator = JrsEstimator::classic(12);
    let result = run_baseline(&mut engine_predictor, &mut engine_estimator, &trace);

    assert_eq!(result.conditional_branches, N as u64);
    assert_eq!(result.mispredictions, mispredictions);
    assert_eq!(result.confusion, confusion);
    assert_eq!(result.level_predictions, level_predictions);
}

#[test]
fn parallel_run_suite_is_bit_identical_to_serial() {
    let full = suites::cbp1_like();
    let suite = Suite::new(
        "parity",
        ["FP-1", "INT-2", "MM-5", "SERV-2"]
            .iter()
            .map(|name| full.trace(name).unwrap().clone())
            .collect(),
    );
    let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
    let serial = run_suite_with_parallelism(&config, &suite, 8_000, &RunOptions::default(), 1);
    for workers in [2, 3, 8] {
        let parallel =
            run_suite_with_parallelism(&config, &suite, 8_000, &RunOptions::default(), workers);
        assert_eq!(serial, parallel, "workers = {workers}");
    }
    // The default entry point (hardware parallelism) agrees too.
    assert_eq!(
        serial,
        run_suite(&config, &suite, 8_000, &RunOptions::default())
    );
    // And aggregation really covered every trace.
    assert_eq!(serial.aggregate.total().predictions, 4 * 8_000);
}

#[test]
fn adaptive_runs_are_deterministic_through_the_engine() {
    let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
    let trace = trace("SERV-1", 40_000);
    let a = run_trace(&config, &trace, &RunOptions::adaptive());
    let b = run_trace(&config, &trace, &RunOptions::adaptive());
    assert_eq!(a, b);
}

#[test]
fn tage_as_trait_object_through_the_margin_path_mispredicts_identically() {
    // TAGE flows through the engine natively (rich TagePrediction lookups);
    // it can also be driven as a plain `dyn BranchPredictor` through the
    // margin path. The confidence grading differs (no provider observables)
    // but the predictions themselves must be identical.
    use tage_confidence_suite::confidence::estimators::SelfConfidenceEstimator;

    let trace = trace("INT-3", N);
    let config = TageConfig::small();

    let native = run_trace(&config, &trace, &RunOptions::default());

    let mut boxed: Box<dyn BranchPredictor + Send> =
        TagePredictor::new(config.clone()).clone_fresh();
    let mut estimator = SelfConfidenceEstimator::new(5);
    let margin = run_baseline(&mut *boxed, &mut estimator, &trace);

    assert_eq!(margin.conditional_branches, native.conditional_branches);
    assert_eq!(
        margin.mispredictions,
        native.report.total().mispredictions,
        "the margin path must make exactly the native predictions"
    );
}

#[test]
fn engine_composition_matches_run_trace_assembly() {
    // Assembling the engine by hand gives the same report as the runner's
    // canonical assembly.
    let config = TageConfig::small();
    let trace = trace("FP-2", N);

    let canonical = run_trace(&config, &trace, &RunOptions::default());

    let mut engine = SimEngine::new(
        TagePredictor::new(config.clone()),
        TageConfidenceClassifier::new(&config),
    );
    let mut observer = ReportObserver::default();
    let summary = engine.run(&trace, &mut observer);

    assert_eq!(observer.report, canonical.report);
    assert_eq!(summary.measured_branches, canonical.conditional_branches);
    assert_eq!(summary.measured_instructions, canonical.instructions);
}
