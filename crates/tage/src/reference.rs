//! The nested-`Vec` reference TAGE implementation.
//!
//! [`ReferenceTagePredictor`] preserves the predictor exactly as it was
//! before the storage layer moved to the flat structure-of-arrays layout of
//! [`crate::tables::TageTables`]: tagged components stored as
//! `Vec<Vec<TaggedEntry>>`, per-lookup scratch collected in freshly
//! allocated `Vec`s, and the allocation policy scanning a collected
//! candidate list. It is deliberately *not* fast — it is the executable
//! specification the optimised [`crate::TagePredictor`] is pinned against.
//!
//! `tests/soa_parity.rs` drives both implementations in lockstep over
//! randomized configurations and seeded trace mixes and asserts bit-identical
//! [`TagePrediction`]s (including the per-table lookup metadata), statistics
//! and `USE_ALT_ON_NA` movement. If you change predictor behaviour on
//! purpose, change it **here and in [`crate::TagePredictor`]**, or the
//! parity suite will fail.

use tage_predictors::counter::SignedCounter;
use tage_predictors::history::HistoryRegister;
use tage_traces::snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};
use tage_traces::SplitMix64;

use crate::config::TageConfig;
use crate::entry::TaggedEntry;
use crate::folded::FoldedHistory;
use crate::prediction::{Provider, TableLookup, TableLookups, TagePrediction};
use crate::predictor::TageStats;

/// The pre-SoA TAGE predictor: identical observable behaviour to
/// [`crate::TagePredictor`], nested-`Vec` storage and per-call heap scratch.
///
/// See the [module documentation](self) for why this type exists.
#[derive(Debug, Clone)]
pub struct ReferenceTagePredictor {
    config: TageConfig,
    history_lengths: Vec<usize>,
    bimodal: Vec<SignedCounter>,
    tables: Vec<Vec<TaggedEntry>>,
    history: HistoryRegister,
    index_folds: Vec<FoldedHistory>,
    tag_folds_a: Vec<FoldedHistory>,
    tag_folds_b: Vec<FoldedHistory>,
    use_alt_on_na: SignedCounter,
    rng: SplitMix64,
    tick: u64,
    reset_phase: u8,
    stats: TageStats,
}

impl ReferenceTagePredictor {
    /// Creates a reference predictor for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not pass [`TageConfig::validate`].
    pub fn new(config: TageConfig) -> Self {
        if let Err(reason) = config.validate() {
            panic!("invalid TAGE configuration: {reason}");
        }
        let history_lengths = config.history_lengths();
        let tagged_entries = config.tagged_entries();
        let tables =
            vec![
                vec![TaggedEntry::new(config.counter_bits, config.useful_bits); tagged_entries];
                config.num_tagged_tables
            ];
        let bimodal =
            vec![SignedCounter::new(config.bimodal_counter_bits); config.bimodal_entries()];
        let history = HistoryRegister::new(config.max_history + 8);
        let index_folds = history_lengths
            .iter()
            .map(|&l| FoldedHistory::new(l, config.tagged_index_bits as usize))
            .collect();
        let tag_folds_a = history_lengths
            .iter()
            .map(|&l| FoldedHistory::new(l, config.tag_bits as usize))
            .collect();
        let tag_folds_b = history_lengths
            .iter()
            .map(|&l| FoldedHistory::new(l, (config.tag_bits - 1).max(1) as usize))
            .collect();
        let use_alt_on_na = SignedCounter::new(config.use_alt_on_na_bits);
        let rng = SplitMix64::new(config.rng_seed);
        ReferenceTagePredictor {
            history_lengths,
            bimodal,
            tables,
            history,
            index_folds,
            tag_folds_a,
            tag_folds_b,
            use_alt_on_na,
            rng,
            tick: 0,
            reset_phase: 0,
            stats: TageStats::default(),
            config,
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    /// Internal event counters.
    pub fn stats(&self) -> TageStats {
        self.stats
    }

    /// The current value of the `USE_ALT_ON_NA` counter.
    pub fn use_alt_on_na(&self) -> i8 {
        self.use_alt_on_na.value()
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) & (self.bimodal.len() as u64 - 1)) as usize
    }

    fn table_index(&self, t: usize, pc: u64) -> usize {
        let bits = self.config.tagged_index_bits as u64;
        let mask = (1u64 << bits) - 1;
        let hashed_pc = (pc >> 2) ^ (pc >> (bits + t as u64 + 1));
        ((hashed_pc ^ self.index_folds[t].value()) & mask) as usize
    }

    fn table_tag(&self, t: usize, pc: u64) -> u16 {
        let mask = (1u64 << self.config.tag_bits) - 1;
        (((pc >> 2) ^ self.tag_folds_a[t].value() ^ (self.tag_folds_b[t].value() << 1)) & mask)
            as u16
    }

    /// Looks the predictor up for the conditional branch at `pc`, building
    /// the per-table scratch in per-call `Vec`s as the pre-SoA code did.
    pub fn predict(&self, pc: u64) -> TagePrediction {
        let num_tables = self.config.num_tagged_tables;
        let mut table_indices = Vec::with_capacity(num_tables);
        let mut table_tags = Vec::with_capacity(num_tables);
        let mut table_hits = Vec::with_capacity(num_tables);
        for t in 0..num_tables {
            let idx = self.table_index(t, pc);
            let tag = self.table_tag(t, pc);
            let hit = self.tables[t][idx].tag == tag;
            table_indices.push(idx);
            table_tags.push(tag);
            table_hits.push(hit);
        }

        let bimodal_index = self.bimodal_index(pc);
        let bimodal_counter = self.bimodal[bimodal_index];
        let bimodal_taken = bimodal_counter.predict_taken();

        let provider_table = (0..num_tables).rev().find(|&t| table_hits[t]);
        let alternate_table = provider_table.and_then(|p| (0..p).rev().find(|&t| table_hits[t]));

        let (alternate_taken, alternate_provider) = match alternate_table {
            Some(t) => {
                let entry = &self.tables[t][table_indices[t]];
                (entry.ctr.predict_taken(), Provider::Tagged { table: t })
            }
            None => (bimodal_taken, Provider::Bimodal),
        };

        let mut lookups = TableLookups::new();
        for t in 0..num_tables {
            lookups.push(TableLookup {
                index: table_indices[t] as u32,
                tag: table_tags[t],
                hit: table_hits[t],
            });
        }

        match provider_table {
            Some(t) => {
                let entry = &self.tables[t][table_indices[t]];
                let provider_taken = entry.ctr.predict_taken();
                let weak = entry.ctr.is_weak();
                let use_alt = weak && self.use_alt_on_na.value() >= 0;
                let taken = if use_alt {
                    alternate_taken
                } else {
                    provider_taken
                };
                TagePrediction {
                    taken,
                    provider: Provider::Tagged { table: t },
                    provider_counter: entry.ctr.value(),
                    provider_magnitude: entry.ctr.centered_magnitude(),
                    provider_weak: weak,
                    alternate_taken,
                    alternate_provider,
                    used_alternate: use_alt,
                    tables: lookups,
                    bimodal_index,
                    bimodal_counter: bimodal_counter.value(),
                }
            }
            None => TagePrediction {
                taken: bimodal_taken,
                provider: Provider::Bimodal,
                provider_counter: bimodal_counter.value(),
                provider_magnitude: bimodal_counter.centered_magnitude(),
                provider_weak: bimodal_counter.is_weak(),
                alternate_taken: bimodal_taken,
                alternate_provider: Provider::Bimodal,
                used_alternate: false,
                tables: lookups,
                bimodal_index,
                bimodal_counter: bimodal_counter.value(),
            },
        }
    }

    /// Updates the predictor with the resolved outcome of the branch at
    /// `pc`, using the pre-SoA update sequence.
    pub fn update(&mut self, pc: u64, taken: bool, prediction: &TagePrediction) {
        debug_assert_eq!(self.bimodal_index(pc), prediction.bimodal_index);
        self.stats.updates += 1;
        if prediction.taken != taken {
            self.stats.mispredictions += 1;
        }

        self.tick += 1;
        if self.tick.is_multiple_of(self.config.useful_reset_period) {
            let phase = self.reset_phase;
            for table in self.tables.iter_mut() {
                for entry in table.iter_mut() {
                    entry.useful.clear_bit(phase);
                }
            }
            self.reset_phase = (self.reset_phase + 1) % self.config.useful_bits;
            self.stats.useful_resets += 1;
        }

        match prediction.provider {
            Provider::Tagged { table } => {
                let idx = prediction.tables.index(table);
                let entry = &mut self.tables[table][idx];
                let provider_taken = entry.ctr.predict_taken();

                if prediction.provider_weak && prediction.alternate_taken != provider_taken {
                    if prediction.alternate_taken == taken {
                        self.use_alt_on_na.increment();
                    } else {
                        self.use_alt_on_na.decrement();
                    }
                }

                if prediction.alternate_taken != provider_taken {
                    if provider_taken == taken {
                        entry.useful.increment();
                    } else {
                        entry.useful.decrement();
                    }
                }

                self.config
                    .automaton
                    .update_counter(&mut entry.ctr, taken, &mut self.rng);
            }
            Provider::Bimodal => {
                let idx = prediction.bimodal_index;
                self.bimodal[idx].update(taken);
            }
        }

        if prediction.taken != taken {
            let first_candidate = match prediction.provider {
                Provider::Bimodal => 0,
                Provider::Tagged { table } => table + 1,
            };
            if first_candidate < self.config.num_tagged_tables {
                self.allocate(first_candidate, taken, prediction);
            }
        }

        self.push_history(taken);
    }

    /// The pre-SoA allocation policy: collect the allocatable candidates
    /// into a per-call `Vec`, then scan with pseudo-random skip-forward.
    fn allocate(&mut self, first_candidate: usize, taken: bool, prediction: &TagePrediction) {
        let num_tables = self.config.num_tagged_tables;
        let candidates: Vec<usize> = (first_candidate..num_tables)
            .filter(|&t| self.tables[t][prediction.tables.index(t)].is_allocatable())
            .collect();
        if candidates.is_empty() {
            for t in first_candidate..num_tables {
                let idx = prediction.tables.index(t);
                self.tables[t][idx].useful.decrement();
            }
            self.stats.allocation_failures += 1;
            return;
        }
        let mut chosen = candidates[0];
        for &candidate in &candidates[1..] {
            if self.rng.chance(0.5) {
                break;
            }
            chosen = candidate;
        }
        let idx = prediction.tables.index(chosen);
        let tag = prediction.tables.tag(chosen);
        self.tables[chosen][idx].allocate(tag, taken);
        self.stats.allocations += 1;
    }

    fn push_history(&mut self, taken: bool) {
        for t in 0..self.config.num_tagged_tables {
            let evicted = self.history.bit(self.history_lengths[t] - 1);
            self.index_folds[t].update(taken, evicted);
            self.tag_folds_a[t].update(taken, evicted);
            self.tag_folds_b[t].update(taken, evicted);
        }
        self.history.push(taken);
    }

    /// Resets all dynamic state while keeping the configuration.
    pub fn reset(&mut self) {
        let config = self.config.clone();
        *self = ReferenceTagePredictor::new(config);
    }

    /// The specification string hashed into the snapshot spec digest. The
    /// `tage-reference` marker makes the digest distinct from the SoA
    /// implementation's: the two lay out useful-reset state differently
    /// (`tick` counts up here, a countdown there), so snapshots are not
    /// interchangeable across implementations.
    fn spec_string(&self) -> String {
        let c = &self.config;
        format!(
            "tage-reference|name={}|tables={}|index_bits={}|tag_bits={}|ctr_bits={}\
             |useful_bits={}|bim_index_bits={}|bim_ctr_bits={}|min_hist={}|max_hist={}\
             |alt_bits={}|reset_period={}|seed={}",
            c.name(),
            c.num_tagged_tables,
            c.tagged_index_bits,
            c.tag_bits,
            c.counter_bits,
            c.useful_bits,
            c.bimodal_index_bits,
            c.bimodal_counter_bits,
            c.min_history,
            c.max_history,
            c.use_alt_on_na_bits,
            c.useful_reset_period,
            c.rng_seed,
        )
    }

    /// A digest of the predictor's specification (see
    /// [`tage_predictors::PredictorCore::spec_digest`]).
    pub fn spec_digest(&self) -> u64 {
        fnv1a64(self.spec_string().as_bytes())
    }

    /// Serializes the predictor's full dynamic state into the framed format
    /// of [`tage_traces::snapshot`].
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(self.spec_digest());

        w.begin_section();
        crate::snapshot::write_automaton(&mut w, self.config.automaton);
        w.end_section();

        w.begin_section();
        for ctr in &self.bimodal {
            w.write_i8(ctr.value());
        }
        w.end_section();

        w.begin_section();
        for table in &self.tables {
            for entry in table {
                w.write_u16(entry.tag);
                w.write_i8(entry.ctr.value());
                w.write_u8(entry.useful.value());
            }
        }
        w.end_section();

        w.begin_section();
        crate::snapshot::write_history(&mut w, &self.history);
        crate::snapshot::write_folds(&mut w, &self.index_folds);
        crate::snapshot::write_folds(&mut w, &self.tag_folds_a);
        crate::snapshot::write_folds(&mut w, &self.tag_folds_b);
        w.end_section();

        w.begin_section();
        w.write_i8(self.use_alt_on_na.value());
        w.write_u64(self.rng.state());
        w.write_u64(self.tick);
        w.write_u8(self.reset_phase);
        crate::snapshot::write_stats(&mut w, &self.stats);
        w.end_section();

        w.finish()
    }

    /// Restores state captured by [`ReferenceTagePredictor::snapshot`],
    /// all-or-nothing: on error the predictor is untouched.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] carrying the byte offset of the problem
    /// when the bytes are truncated, corrupt, from a different format
    /// version, or from a different predictor specification.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, ReferenceTagePredictor::spec_digest(self))?;

        r.begin_section()?;
        let automaton = crate::snapshot::read_automaton(&mut r)?;
        r.end_section()?;

        r.begin_section()?;
        let mut bimodal = Vec::with_capacity(self.bimodal.len());
        for _ in 0..self.bimodal.len() {
            bimodal.push(r.read_i8()?);
        }
        r.end_section()?;

        r.begin_section()?;
        let per_table = self.tables.first().map_or(0, Vec::len);
        let mut entries = Vec::with_capacity(self.tables.len() * per_table);
        for _ in 0..self.tables.len() * per_table {
            let tag = r.read_u16()?;
            let ctr = r.read_i8()?;
            let useful = r.read_u8()?;
            entries.push((tag, ctr, useful));
        }
        r.end_section()?;

        r.begin_section()?;
        let history = crate::snapshot::read_history(&mut r, self.history.words().len())?;
        let index_folds = crate::snapshot::read_folds(&mut r, &self.index_folds)?;
        let tag_folds_a = crate::snapshot::read_folds(&mut r, &self.tag_folds_a)?;
        let tag_folds_b = crate::snapshot::read_folds(&mut r, &self.tag_folds_b)?;
        r.end_section()?;

        r.begin_section()?;
        let use_alt_on_na = r.read_i8()?;
        let rng_state = r.read_u64()?;
        let tick = r.read_u64()?;
        let reset_phase = r.read_u8()?;
        let stats = crate::snapshot::read_stats(&mut r)?;
        r.end_section()?;

        r.finish()?;

        // Everything decoded and validated: commit.
        self.config.automaton = automaton;
        for (ctr, value) in self.bimodal.iter_mut().zip(bimodal) {
            ctr.set(value);
        }
        let mut flat = entries.into_iter();
        for table in &mut self.tables {
            for entry in table.iter_mut() {
                let (tag, ctr, useful) = flat.next().expect("sized above");
                entry.tag = tag;
                entry.ctr.set(ctr);
                entry.useful.set(useful);
            }
        }
        self.history.load_words(&history);
        for (fold, value) in self.index_folds.iter_mut().zip(index_folds) {
            fold.set_value(value);
        }
        for (fold, value) in self.tag_folds_a.iter_mut().zip(tag_folds_a) {
            fold.set_value(value);
        }
        for (fold, value) in self.tag_folds_b.iter_mut().zip(tag_folds_b) {
            fold.set_value(value);
        }
        self.use_alt_on_na.set(use_alt_on_na);
        self.rng = SplitMix64::from_state(rng_state);
        self.tick = tick;
        self.reset_phase = reset_phase;
        self.stats = stats;
        Ok(())
    }
}

/// Engine-facing interface, so the reference implementation can be driven
/// through `tage_sim::engine::SimEngine` for same-host before/after
/// comparisons (the `throughput` bin's `engine_reference_nested_vec`
/// measurement).
impl tage_predictors::PredictorCore for ReferenceTagePredictor {
    type Lookup = TagePrediction;

    fn lookup(&mut self, pc: u64) -> TagePrediction {
        ReferenceTagePredictor::predict(self, pc)
    }

    fn train(&mut self, pc: u64, taken: bool, lookup: &TagePrediction) {
        ReferenceTagePredictor::update(self, pc, taken, lookup)
    }

    fn reset(&mut self) {
        ReferenceTagePredictor::reset(self)
    }

    fn storage_bits(&self) -> u64 {
        self.config.storage_bits()
    }

    fn name(&self) -> String {
        format!("{} (reference)", self.config.name())
    }

    fn snapshot(&self) -> Vec<u8> {
        ReferenceTagePredictor::snapshot(self)
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        ReferenceTagePredictor::restore(self, bytes)
    }

    fn spec_digest(&self) -> u64 {
        ReferenceTagePredictor::spec_digest(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_predictor_learns_a_biased_branch() {
        let mut p = ReferenceTagePredictor::new(TageConfig::small());
        let mut misses = 0;
        for _ in 0..200 {
            let pred = p.predict(0x400100);
            if !pred.taken {
                misses += 1;
            }
            p.update(0x400100, true, &pred);
        }
        assert!(misses <= 3, "misses = {misses}");
        assert_eq!(p.stats().updates, 200);
    }

    #[test]
    fn reference_reset_restores_cold_state() {
        let mut p = ReferenceTagePredictor::new(TageConfig::small());
        for _ in 0..50 {
            let pred = p.predict(0x400200);
            p.update(0x400200, true, &pred);
        }
        p.reset();
        assert_eq!(p.stats().updates, 0);
        assert!(p.predict(0x400200).provider.is_bimodal());
        assert_eq!(p.use_alt_on_na(), -1);
    }
}
