//! Cross-product campaign runner behind the `tage-bench` binary.
//!
//! A campaign is a declarative grid — predictor × confidence-scheme × suite
//! × scenario — expanded into [`SweepPoint`]s and executed through the
//! generic engine
//! with a **work-stealing queue over whole points**: each worker owns a
//! deque of point indices, drains its own front, and steals from the back of
//! the most-loaded sibling when it runs dry. This is the scheduling layer
//! the per-trace `par_map` sharding cannot provide: a grid mixes 256 Kbit
//! TAGE points with tiny bimodal points, so static round-robin placement
//! alone would leave workers idle behind the heavy tail.
//!
//! Results land in per-point slots and are reported in grid-expansion order,
//! so the campaign report is **deterministic**: the same grid produces a
//! byte-identical report at any worker count, except for the explicitly
//! timing-carrying fields (per-point `wall_seconds` / `branches_per_sec` and
//! the trailing `timing` object), which [`CampaignReport::render_json`] can
//! omit. The JSON schema is versioned ([`SCHEMA_VERSION`]) and
//! [`validate_report`] structurally checks a rendered report, which is what
//! `tage-bench --check` and the CI campaign-smoke job run.
//!
//! Campaigns can also run **checkpointed**
//! ([`run_campaign_checkpointed`], `tage-bench --checkpoint/--resume`):
//! every finished cell's rendered timing-free bytes are persisted to a
//! shared content-addressed [`CellStore`] as it completes, and a later run
//! over the same grid restores finished cells verbatim instead of
//! re-executing them — so a killed mid-grid campaign resumes from where it
//! died and the resumed timing-free report byte-matches an uninterrupted
//! one. The same store backs the `tage-serve` campaign daemon
//! ([`crate::service`]), so CLI runs and daemon campaigns memoize into one
//! cache.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tage_confidence::ConfidenceLevel;
use tage_sim::point::{
    run_point_with_engine, run_point_with_engine_cached, PointError, PointResult, PredictorSpec,
    SchemeSpec, SweepPoint,
};
use tage_sim::scenarios::{ScenarioSpec, BASELINE_TOKEN};
use tage_sim::warmcache::WarmCache;
use tage_sim::EngineKind;
use tage_traces::source::SourceSuite;

use crate::cellstore::{cell_key, CellStore};
use crate::jsonish;

/// Current schema version of the campaign report. Schema 2 added the
/// scenario axis: every point carries a `"scenario"` label, non-baseline
/// points carry a `"scenario_metrics"` object, and the grid lists its
/// `"scenarios"` tokens. Schema 3 adds exact storage accounting: every
/// point carries its predictor's `"storage_bits"`, and `--explore` runs
/// append a top-level `"explore"` section with the budget and the Pareto
/// front (see [`ExploreSection`]). Schema 4 adds phase sampling: cells
/// over a `sample:<suite>:<interval>:<k>:<seed>` suite carry a
/// `"sampling"` object with the plan and its deterministic accounting
/// (representative count, measured branches, total records), and their
/// counters are weighted reconstructions rather than raw measurements.
pub const SCHEMA_VERSION: u32 = 4;

/// The `campaign` discriminator field every report carries.
pub const CAMPAIGN_NAME: &str = "tage-bench";

/// A declarative campaign grid: the axis values plus the per-trace length.
///
/// The suite axis holds streaming [`SourceSuite`]s — synthetic registry
/// suites (convert a [`tage_traces::Suite`] with `.into()`) or file-backed
/// suites over on-disk binary traces (`SourceSuite::from_dir`) — so a
/// campaign never materializes its workloads.
#[derive(Debug)]
pub struct CampaignSpec {
    /// Label recorded in the report (e.g. a PR or experiment name).
    pub label: String,
    /// Predictor axis.
    pub predictors: Vec<PredictorSpec>,
    /// Confidence-scheme axis.
    pub schemes: Vec<SchemeSpec>,
    /// Suite axis.
    pub suites: Vec<SourceSuite>,
    /// Scenario axis ([`ScenarioSpec::Baseline`] is the plain measurement).
    pub scenarios: Vec<ScenarioSpec>,
    /// Conditional branches generated per trace of every synthetic suite
    /// (file-backed sources yield whatever their files hold).
    pub branches_per_trace: usize,
}

/// A grid cell that cannot execute (e.g. storage-free × gshare), recorded in
/// the report instead of silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SkippedPoint {
    /// Predictor label.
    pub predictor: String,
    /// Scheme label.
    pub scheme: String,
    /// Suite name.
    pub suite: String,
    /// Scenario label.
    pub scenario: String,
    /// Why the cell cannot run.
    pub reason: String,
}

impl CampaignSpec {
    /// Expands the cross product into executable sweep points (in
    /// deterministic predictor-major order, scenario innermost) plus the
    /// skipped cells.
    pub fn expand(&self) -> (Vec<SweepPoint>, Vec<SkippedPoint>) {
        let mut points = Vec::new();
        let mut skipped = Vec::new();
        for predictor in &self.predictors {
            for scheme in &self.schemes {
                for suite in &self.suites {
                    for scenario in &self.scenarios {
                        let point = SweepPoint {
                            predictor: predictor.clone(),
                            scheme: *scheme,
                            suite: suite.clone(),
                            scenario: *scenario,
                        };
                        match point.validate() {
                            Ok(()) => points.push(point),
                            Err(reason) => skipped.push(SkippedPoint {
                                predictor: predictor.label(),
                                scheme: scheme.label(),
                                suite: suite.name().to_string(),
                                scenario: scenario.label().to_string(),
                                reason: reason.to_string(),
                            }),
                        }
                    }
                }
            }
        }
        (points, skipped)
    }
}

/// Scheduling statistics of one [`steal_map`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealStats {
    /// Worker threads used.
    pub workers: usize,
    /// Tasks executed by a worker other than the one they were placed on.
    pub steals: u64,
}

/// Applies `f` to every item across `workers` scoped threads with **work
/// stealing**, returning results in input order.
///
/// Items are dealt round-robin onto per-worker deques; a worker pops its own
/// queue from the front and, when empty, steals from the *back* of the
/// most-loaded sibling. Because every result is written to its own slot, the
/// output is identical for any worker count — only the schedule (reported in
/// [`StealStats`]) varies. With `workers <= 1` the closure runs inline.
pub fn steal_map<T, R, F>(items: &[T], workers: usize, f: F) -> (Vec<R>, StealStats)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        let results = items.iter().map(&f).collect();
        return (
            results,
            StealStats {
                workers: 1,
                steals: 0,
            },
        );
    }
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..items.len()).step_by(workers).collect()))
        .collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let steals = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for me in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let steals = &steals;
            let f = &f;
            scope.spawn(move || {
                while let Some(index) = next_task(queues, me, steals) {
                    let result = f(&items[index]);
                    *slots[index].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task executed")
        })
        .collect();
    (
        results,
        StealStats {
            workers,
            steals: steals.load(Ordering::Relaxed),
        },
    )
}

/// Pops the worker's own queue, or steals from the back of the most-loaded
/// sibling. Returns `None` only when every queue is empty (tasks never
/// re-enter a queue, so that means the tail of the campaign is already
/// running elsewhere).
fn next_task(queues: &[Mutex<VecDeque<usize>>], me: usize, steals: &AtomicU64) -> Option<usize> {
    if let Some(index) = queues[me].lock().expect("queue poisoned").pop_front() {
        return Some(index);
    }
    loop {
        let mut victim: Option<(usize, usize)> = None;
        for (q, queue) in queues.iter().enumerate() {
            if q == me {
                continue;
            }
            let len = queue.lock().expect("queue poisoned").len();
            if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                victim = Some((q, len));
            }
        }
        let (q, _) = victim?;
        // The victim may have been drained between the scan and this lock;
        // rescan in that case.
        if let Some(index) = queues[q].lock().expect("queue poisoned").pop_back() {
            steals.fetch_add(1, Ordering::Relaxed);
            return Some(index);
        }
    }
}

/// One executed point plus its (non-deterministic) wall time.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPointReport {
    /// The point's deterministic result.
    pub result: PointResult,
    /// Wall-clock seconds the point took on its worker.
    pub wall_seconds: f64,
}

/// One grid cell of a campaign report: either executed in this run, or
/// restored from a [`CellStore`] as the exact rendered timing-free bytes a
/// previous run stored. Restored cells are pasted verbatim by
/// [`CampaignReport::render_json`], which is what makes a resumed report
/// byte-identical to an uninterrupted one.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignCell {
    /// The cell was executed in this run (boxed: a point report is an order
    /// of magnitude larger than a restored cell's string header).
    Computed(Box<CampaignPointReport>),
    /// The cell was restored from the cell store; the string is the rendered
    /// timing-free report element (restored cells carry no wall time, so
    /// they render timing-free even in a timing report).
    Restored(String),
}

impl CampaignCell {
    /// The executed point behind this cell, when it ran in this run.
    pub fn computed(&self) -> Option<&CampaignPointReport> {
        match self {
            CampaignCell::Computed(point) => Some(point),
            CampaignCell::Restored(_) => None,
        }
    }
}

/// The full outcome of a campaign run.
#[derive(Debug)]
pub struct CampaignReport {
    /// Campaign label.
    pub label: String,
    /// Branches per trace every point used.
    pub branches_per_trace: usize,
    /// Predictor axis, as grid tokens.
    pub grid_predictors: Vec<String>,
    /// Scheme axis, as grid tokens.
    pub grid_schemes: Vec<String>,
    /// Suite axis, as suite names.
    pub grid_suites: Vec<String>,
    /// Scenario axis, as grid tokens.
    pub grid_scenarios: Vec<String>,
    /// The grid's cells — executed points and checkpoint-restored cells —
    /// in grid-expansion order.
    pub points: Vec<CampaignCell>,
    /// Grid cells that could not execute.
    pub skipped: Vec<SkippedPoint>,
    /// Worker threads used.
    pub workers: usize,
    /// Cross-worker steals the scheduler performed.
    pub steals: u64,
    /// Wall-clock seconds of the whole campaign.
    pub wall_seconds: f64,
    /// The design-space-exploration summary of a `--explore` run
    /// (`None` for ordinary campaigns).
    pub explore: Option<ExploreSection>,
}

/// The `"explore"` section of a schema-3 report: what budget the
/// design-space search ran under and which cells survived Pareto pruning.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreSection {
    /// The `--budget-bits` storage ceiling every candidate fits.
    pub budget_bits: u64,
    /// Number of candidate geometries the enumeration produced.
    pub candidates: usize,
    /// The Pareto-optimal cells (storage × accuracy × confidence quality),
    /// sorted by ascending storage.
    pub pareto: Vec<ParetoEntry>,
}

/// One Pareto-front member of an explore run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEntry {
    /// Predictor label of the cell.
    pub predictor: String,
    /// Exact storage of the candidate, in bits.
    pub storage_bits: u64,
    /// Mean per-trace MPKI of the cell (lower is better).
    pub mean_mpki: f64,
    /// Misprediction rate of high-confidence predictions, in mispredictions
    /// per kilo-prediction (lower is better — the paper's confidence-quality
    /// axis).
    pub high_mprate_mkp: f64,
}

impl ExploreSection {
    /// Renders the section as the top-level report member (no leading
    /// comma, no trailing newline).
    fn render_json(&self) -> String {
        let entries: Vec<String> = self
            .pareto
            .iter()
            .map(|e| {
                format!(
                    "   {{\"predictor\": \"{}\", \"storage_bits\": {}, \"mean_mpki\": {:.6}, \"high_mprate_mkp\": {:.6}}}",
                    jsonish::escape(&e.predictor),
                    e.storage_bits,
                    e.mean_mpki,
                    e.high_mprate_mkp
                )
            })
            .collect();
        let pareto = if entries.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n{}\n  ]", entries.join(",\n"))
        };
        format!(
            " \"explore\": {{\n  \"budget_bits\": {},\n  \"candidates\": {},\n  \"pareto\": {}\n }}",
            self.budget_bits, self.candidates, pareto
        )
    }
}

/// Expands and executes a campaign across `workers` threads, stealing work
/// across sweep points.
///
/// # Errors
///
/// Returns the first [`PointError`] in grid-expansion order when a point's
/// sources fail to open or read (e.g. a trace file of a file-backed suite
/// vanished); invalid predictor/scheme pairings are not errors — they are
/// recorded as skipped cells.
pub fn run_campaign(spec: &CampaignSpec, workers: usize) -> Result<CampaignReport, PointError> {
    run_campaign_with_engine(spec, workers, EngineKind::Scalar)
}

/// [`run_campaign`] with an explicit engine choice for every point.
///
/// [`EngineKind::Multilane`] lane-batches each lane-batchable cell's suite
/// inside its worker (unbatchable cells — estimator schemes, scenario
/// observers — silently use the scalar path), composing with the
/// cross-point work stealing: the scheduler still steals whole points; the
/// engine choice only changes how one point burns its worker. Reports are
/// bit-identical across engines — the campaign determinism contract extends
/// over this axis, and `scripts/verify.sh` byte-diffs the two.
pub fn run_campaign_with_engine(
    spec: &CampaignSpec,
    workers: usize,
    engine: EngineKind,
) -> Result<CampaignReport, PointError> {
    let (points, skipped) = spec.expand();
    let start = Instant::now();
    let (results, stats) = steal_map(&points, workers, |point| {
        let point_start = Instant::now();
        run_point_with_engine(point, spec.branches_per_trace, engine).map(|result| {
            CampaignPointReport {
                result,
                wall_seconds: point_start.elapsed().as_secs_f64(),
            }
        })
    });
    let mut cells = Vec::with_capacity(results.len());
    for result in results {
        cells.push(CampaignCell::Computed(Box::new(result?)));
    }
    Ok(assemble_report(spec, cells, skipped, stats, start))
}

/// Builds a [`CampaignReport`] from a run's cells and scheduling stats.
fn assemble_report(
    spec: &CampaignSpec,
    cells: Vec<CampaignCell>,
    skipped: Vec<SkippedPoint>,
    stats: StealStats,
    start: Instant,
) -> CampaignReport {
    CampaignReport {
        label: spec.label.clone(),
        branches_per_trace: spec.branches_per_trace,
        grid_predictors: spec.predictors.iter().map(PredictorSpec::label).collect(),
        grid_schemes: spec.schemes.iter().map(SchemeSpec::label).collect(),
        grid_suites: spec.suites.iter().map(|s| s.name().to_string()).collect(),
        grid_scenarios: spec
            .scenarios
            .iter()
            .map(|s| s.label().to_string())
            .collect(),
        points: cells,
        skipped,
        workers: stats.workers,
        steals: stats.steals,
        wall_seconds: start.elapsed().as_secs_f64(),
        explore: None,
    }
}

/// The outcome of one checkpointed campaign run: the (possibly partial)
/// report plus how the grid's executable cells were covered.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The campaign report. When `remaining > 0` it covers only the
    /// restored and executed cells (in grid-expansion order) and must not
    /// be published as a finished report.
    pub report: CampaignReport,
    /// Cells restored from the cell store instead of executed.
    pub restored: usize,
    /// Cells executed (and stored) by this run.
    pub executed: usize,
    /// Cells still unexecuted because `max_cells` capped this run; resume
    /// with the same store directory to continue.
    pub remaining: usize,
}

/// [`run_campaign_with_engine`] through a shared [`CellStore`]: cells
/// already finished in `store` are restored verbatim, the rest execute
/// and are persisted **as they complete** — a killed run keeps everything
/// it finished. `max_cells` caps how many cells this run executes (the CI
/// campaign-smoke job uses it to simulate a mid-grid kill deterministically).
///
/// Because restored cells are the exact rendered bytes an earlier run
/// stored, the timing-free report of a fully resumed campaign is
/// byte-identical to an uninterrupted run's. Cell keys are
/// content-addressed ([`cell_key`]) — they ignore the campaign label — so
/// two campaigns over overlapping grids share finished cells through one
/// store directory.
///
/// # Errors
///
/// Returns the first [`PointError`] in grid-expansion order among the cells
/// this run executed. Cell *store* failures are deliberately swallowed — a
/// read-only store directory degrades to an ordinary run.
pub fn run_campaign_checkpointed(
    spec: &CampaignSpec,
    workers: usize,
    engine: EngineKind,
    store: &CellStore,
    max_cells: Option<usize>,
) -> Result<CheckpointedRun, PointError> {
    let (points, skipped) = spec.expand();
    let start = Instant::now();
    let keys: Vec<u64> = points
        .iter()
        .map(|point| cell_key(spec.branches_per_trace, point))
        .collect();
    let mut cells: Vec<Option<CampaignCell>> = Vec::with_capacity(points.len());
    let mut pending: Vec<usize> = Vec::new();
    for (index, point) in points.iter().enumerate() {
        match store.load_cell(keys[index], point) {
            Some(rendered) => cells.push(Some(CampaignCell::Restored(rendered))),
            None => {
                cells.push(None);
                pending.push(index);
            }
        }
    }
    let restored = points.len() - pending.len();
    let cap = max_cells.unwrap_or(pending.len()).min(pending.len());
    let remaining = pending.len() - cap;
    let to_run = &pending[..cap];
    // Phase-sampled cells checkpoint predictor warm state next to the cell
    // store, so a resumed (or repeated) campaign simulates only the
    // representative slices. Cell bytes are identical either way — an
    // uncreatable warm directory just degrades to gap replays.
    let warm = WarmCache::new(store.dir().join("warm")).ok();
    let (results, stats) = steal_map(to_run, workers, |&index| {
        let point_start = Instant::now();
        run_point_with_engine_cached(
            &points[index],
            spec.branches_per_trace,
            engine,
            warm.as_ref(),
        )
        .map(|result| {
            let point = CampaignPointReport {
                result,
                wall_seconds: point_start.elapsed().as_secs_f64(),
            };
            let _ = store.store_cell(keys[index], &render_point_json(&point, false));
            point
        })
    });
    let executed = results.len();
    for (&index, result) in to_run.iter().zip(results) {
        cells[index] = Some(CampaignCell::Computed(Box::new(result?)));
    }
    Ok(CheckpointedRun {
        report: assemble_report(
            spec,
            cells.into_iter().flatten().collect(),
            skipped,
            stats,
            start,
        ),
        restored,
        executed,
        remaining,
    })
}

fn render_token_array(tokens: &[String]) -> String {
    let quoted: Vec<String> = tokens
        .iter()
        .map(|t| format!("\"{}\"", jsonish::escape(t)))
        .collect();
    format!("[{}]", quoted.join(", "))
}

impl CampaignReport {
    /// The timing-free rendered bytes of every grid cell, in grid-expansion
    /// order: computed cells render fresh, restored cells return the exact
    /// bytes the checkpoint stored. Because both forms are byte-identical
    /// for the same cell, anything derived from these strings (the explore
    /// Pareto front) is independent of worker count, engine choice, and
    /// kill/resume history.
    pub fn cell_bytes(&self) -> Vec<String> {
        self.points
            .iter()
            .map(|cell| match cell {
                CampaignCell::Computed(point) => render_point_json(point, false),
                CampaignCell::Restored(rendered) => rendered.clone(),
            })
            .collect()
    }

    /// Renders the versioned JSON report.
    ///
    /// With `include_timing == false` every wall-clock-derived field
    /// (per-point `wall_seconds` / `branches_per_sec`, the trailing `timing`
    /// object) is omitted, and the rendered bytes are identical for any
    /// worker count — the determinism contract the campaign tests pin.
    pub fn render_json(&self, include_timing: bool) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(" \"campaign\": \"{CAMPAIGN_NAME}\",\n"));
        out.push_str(&format!(" \"schema\": {SCHEMA_VERSION},\n"));
        out.push_str(&format!(
            " \"label\": \"{}\",\n",
            jsonish::escape(&self.label)
        ));
        out.push_str(&format!(
            " \"branches_per_trace\": {},\n",
            self.branches_per_trace
        ));
        out.push_str(" \"grid\": {\n");
        out.push_str(&format!(
            "  \"predictors\": {},\n",
            render_token_array(&self.grid_predictors)
        ));
        out.push_str(&format!(
            "  \"schemes\": {},\n",
            render_token_array(&self.grid_schemes)
        ));
        out.push_str(&format!(
            "  \"suites\": {},\n",
            render_token_array(&self.grid_suites)
        ));
        out.push_str(&format!(
            "  \"scenarios\": {}\n",
            render_token_array(&self.grid_scenarios)
        ));
        out.push_str(" },\n");
        let points: Vec<String> = self
            .points
            .iter()
            .map(|cell| match cell {
                CampaignCell::Computed(point) => render_point_json(point, include_timing),
                // Checkpoint-restored cells are already the rendered
                // timing-free bytes; paste them verbatim.
                CampaignCell::Restored(rendered) => rendered.clone(),
            })
            .collect();
        if points.is_empty() {
            out.push_str(" \"points\": [],\n");
        } else {
            out.push_str(&format!(" \"points\": [\n{}\n ],\n", points.join(",\n")));
        }
        let skipped: Vec<String> = self
            .skipped
            .iter()
            .map(|s| {
                format!(
                    "  {{\"predictor\": \"{}\", \"scheme\": \"{}\", \"suite\": \"{}\", \"scenario\": \"{}\", \"reason\": \"{}\"}}",
                    jsonish::escape(&s.predictor),
                    jsonish::escape(&s.scheme),
                    jsonish::escape(&s.suite),
                    jsonish::escape(&s.scenario),
                    jsonish::escape(&s.reason)
                )
            })
            .collect();
        if skipped.is_empty() {
            out.push_str(" \"skipped\": []");
        } else {
            out.push_str(&format!(" \"skipped\": [\n{}\n ]", skipped.join(",\n")));
        }
        if let Some(explore) = &self.explore {
            out.push_str(",\n");
            out.push_str(&explore.render_json());
        }
        if include_timing {
            out.push_str(",\n \"timing\": {\n");
            out.push_str(&format!("  \"workers\": {},\n", self.workers));
            out.push_str(&format!("  \"steals\": {},\n", self.steals));
            out.push_str(&format!("  \"wall_seconds\": {:.6}\n", self.wall_seconds));
            out.push_str(" }\n}\n");
        } else {
            out.push_str("\n}\n");
        }
        out
    }
}

/// Renders one executed point as a report-array element (the two-space
/// indented `{...}` line [`CampaignReport::render_json`] joins). The
/// timing-free rendering of this function is also exactly what a
/// [`CellStore`] cell stores.
pub(crate) fn render_point_json(point: &CampaignPointReport, include_timing: bool) -> String {
    let result = &point.result;
    let predictions = result.total_predictions();
    let mispredictions: u64 = result.traces.iter().map(|t| t.mispredictions).sum();
    let instructions: u64 = result.traces.iter().map(|t| t.instructions).sum();
    let mut fields = vec![
        format!("\"predictor\": \"{}\"", jsonish::escape(&result.predictor)),
        format!("\"scheme\": \"{}\"", jsonish::escape(&result.scheme)),
        format!("\"suite\": \"{}\"", jsonish::escape(&result.suite)),
        format!("\"scenario\": \"{}\"", jsonish::escape(&result.scenario)),
        format!("\"storage_bits\": {}", result.storage_bits),
        format!("\"traces\": {}", result.traces.len()),
        format!("\"predictions\": {predictions}"),
        format!("\"mispredictions\": {mispredictions}"),
        format!("\"instructions\": {instructions}"),
        format!("\"mean_mpki\": {:.6}", result.mean_mpki()),
        format!("\"aggregate_mkp\": {:.6}", result.aggregate.mkp()),
        format!(
            "\"high_pcov\": {:.6}",
            result.aggregate.level_pcov(ConfidenceLevel::High)
        ),
        format!(
            "\"high_mprate_mkp\": {:.6}",
            result.aggregate.level_mprate_mkp(ConfidenceLevel::High)
        ),
    ];
    if !result.scenario_metrics.is_empty() {
        let metrics: Vec<String> = result
            .scenario_metrics
            .iter()
            .map(|(name, value)| format!("\"{}\": {value:.6}", jsonish::escape(name)))
            .collect();
        fields.push(format!("\"scenario_metrics\": {{{}}}", metrics.join(", ")));
    }
    // Sampling accounting is deterministic by construction (see
    // `PointSamplingMetrics`), so it belongs in the timing-free cell bytes.
    if let Some(sampling) = &result.sampling {
        fields.push(format!(
            "\"sampling\": {{\"interval\": {}, \"k\": {}, \"seed\": {}, \"representatives\": {}, \"measured_branches\": {}, \"total_records\": {}}}",
            sampling.interval,
            sampling.k,
            sampling.seed,
            sampling.representatives,
            sampling.measured_branches,
            sampling.total_records
        ));
    }
    if include_timing {
        fields.push(format!("\"wall_seconds\": {:.6}", point.wall_seconds));
        let rate = if point.wall_seconds > 0.0 {
            predictions as f64 / point.wall_seconds
        } else {
            0.0
        };
        fields.push(format!("\"branches_per_sec\": {rate:.0}"));
    }
    format!("  {{{}}}", fields.join(", "))
}

/// Summary of a structurally valid campaign report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidatedReport {
    /// Schema version the report carries.
    pub schema: u32,
    /// Number of executed points.
    pub points: usize,
    /// Number of skipped grid cells.
    pub skipped: usize,
}

/// Structurally validates a rendered campaign report: discriminator, schema
/// version, and the required fields of every point. This is the check the
/// CI campaign-smoke job runs on the uploaded artifact.
pub fn validate_report(json: &str) -> Result<ValidatedReport, String> {
    if jsonish::string_field(json, "campaign").as_deref() != Some(CAMPAIGN_NAME) {
        return Err(format!(
            "missing or wrong \"campaign\" discriminator (expected \"{CAMPAIGN_NAME}\")"
        ));
    }
    let schema = jsonish::number_field(json, "schema")
        .ok_or_else(|| "missing \"schema\" version".to_string())?;
    if schema != f64::from(SCHEMA_VERSION) {
        return Err(format!(
            "unsupported schema version {schema} (this build reads {SCHEMA_VERSION})"
        ));
    }
    let points = jsonish::extract_array_objects(json, "points");
    if points.is_empty() {
        return Err("report contains no executed points".to_string());
    }
    for (i, point) in points.iter().enumerate() {
        for key in ["predictor", "scheme", "suite", "scenario"] {
            if jsonish::string_field(point, key).is_none() {
                return Err(format!("point {i} is missing string field \"{key}\""));
            }
        }
        for key in [
            "storage_bits",
            "traces",
            "predictions",
            "mispredictions",
            "instructions",
            "mean_mpki",
            "aggregate_mkp",
            "high_pcov",
            "high_mprate_mkp",
        ] {
            if jsonish::number_field(point, key).is_none() {
                return Err(format!("point {i} is missing numeric field \"{key}\""));
            }
        }
        // Non-baseline scenario cells must carry their metrics object.
        let scenario = jsonish::string_field(point, "scenario").expect("checked above");
        if scenario != BASELINE_TOKEN && !point.contains("\"scenario_metrics\":") {
            return Err(format!(
                "point {i} runs scenario \"{scenario}\" but carries no \"scenario_metrics\""
            ));
        }
        // Sampled-suite cells must carry a complete sampling object (and
        // only sampled cells may carry one).
        let suite = jsonish::string_field(point, "suite").expect("checked above");
        let sampled_suite = suite.starts_with("sample:");
        let has_sampling = point.contains("\"sampling\":");
        if sampled_suite != has_sampling {
            return Err(format!(
                "point {i} over suite \"{suite}\" {} a \"sampling\" object",
                if sampled_suite {
                    "is sampled but carries no"
                } else {
                    "is not sampled but carries"
                }
            ));
        }
        if has_sampling {
            for key in [
                "interval",
                "k",
                "seed",
                "representatives",
                "measured_branches",
                "total_records",
            ] {
                if jsonish::number_field(point, key).is_none() {
                    return Err(format!(
                        "point {i} sampling object is missing numeric field \"{key}\""
                    ));
                }
            }
        }
    }
    // An `--explore` report must carry a structurally complete section:
    // the budget, the candidate count, and fully-typed Pareto entries.
    if json.contains("\"explore\":") {
        for key in ["budget_bits", "candidates"] {
            if jsonish::number_field(json, key).is_none() {
                return Err(format!(
                    "explore section is missing numeric field \"{key}\""
                ));
            }
        }
        for (i, entry) in jsonish::extract_array_objects(json, "pareto")
            .iter()
            .enumerate()
        {
            if jsonish::string_field(entry, "predictor").is_none() {
                return Err(format!("pareto entry {i} is missing \"predictor\""));
            }
            for key in ["storage_bits", "mean_mpki", "high_mprate_mkp"] {
                if jsonish::number_field(entry, key).is_none() {
                    return Err(format!(
                        "pareto entry {i} is missing numeric field \"{key}\""
                    ));
                }
            }
        }
    }
    let skipped = jsonish::extract_array_objects(json, "skipped");
    Ok(ValidatedReport {
        schema: SCHEMA_VERSION,
        points: points.len(),
        skipped: skipped.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_traces::suites;

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            label: "test".to_string(),
            predictors: vec![
                PredictorSpec::parse("tage-16k").unwrap(),
                PredictorSpec::parse("gshare").unwrap(),
            ],
            schemes: vec![
                SchemeSpec::parse("storage-free").unwrap(),
                SchemeSpec::parse("jrs-classic").unwrap(),
            ],
            suites: vec![suites::cbp1_mini().into()],
            scenarios: vec![ScenarioSpec::Baseline],
            branches_per_trace: 1_000,
        }
    }

    fn scenario_spec() -> CampaignSpec {
        CampaignSpec {
            label: "scenario-grid".to_string(),
            predictors: vec![PredictorSpec::parse("tage-16k").unwrap()],
            schemes: vec![SchemeSpec::parse("storage-free").unwrap()],
            suites: vec![suites::cbp1_mini().into()],
            scenarios: ScenarioSpec::ALL.to_vec(),
            branches_per_trace: 1_000,
        }
    }

    #[test]
    fn expansion_crosses_axes_and_skips_invalid_cells() {
        let (points, skipped) = tiny_spec().expand();
        // 2 predictors × 2 schemes × 1 suite × 1 scenario = 4 cells, one of
        // which (gshare × storage-free) cannot run.
        assert_eq!(points.len(), 3);
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].predictor, "gshare");
        assert_eq!(skipped[0].scheme, "storage-free");
        assert_eq!(skipped[0].scenario, "baseline");
        assert!(skipped[0].reason.contains("TAGE"));
    }

    #[test]
    fn scenario_axis_expands_innermost_and_runs_every_kind() {
        let (points, skipped) = scenario_spec().expand();
        assert_eq!(points.len(), ScenarioSpec::ALL.len());
        assert!(skipped.is_empty());
        let labels: Vec<&str> = points.iter().map(|p| p.scenario.label()).collect();
        assert_eq!(
            labels,
            vec![
                "baseline",
                "recovery-energy",
                "shared-predictor",
                "prefetch-throttle"
            ]
        );

        let report = run_campaign(&scenario_spec(), 2).expect("scenario grid runs");
        assert_eq!(report.grid_scenarios.len(), 4);
        let json = report.render_json(false);
        let validated = validate_report(&json).expect("scenario report validates");
        assert_eq!(validated.points, 4);
        for point in jsonish::extract_array_objects(&json, "points") {
            let scenario = jsonish::string_field(&point, "scenario").unwrap();
            if scenario == "baseline" {
                assert!(!point.contains("scenario_metrics"));
            } else {
                assert!(
                    point.contains("\"scenario_metrics\": {"),
                    "{scenario} cell must carry metrics: {point}"
                );
            }
        }
        // Spot-check one metric key per scenario kind.
        assert!(json.contains("\"baseline_epki_nj\":"));
        assert!(json.contains("\"shared_mean_mpki\":"));
        assert!(json.contains("\"useless_avoided_pki\":"));
    }

    #[test]
    fn steal_map_is_order_preserving_and_worker_count_independent() {
        let items: Vec<u64> = (0..53).collect();
        let (serial, stats) = steal_map(&items, 1, |&x| x * 3);
        assert_eq!(stats.steals, 0);
        for workers in [2, 3, 8, 64] {
            let (parallel, stats) = steal_map(&items, workers, |&x| x * 3);
            assert_eq!(parallel, serial, "workers = {workers}");
            assert!(stats.workers <= items.len());
        }
        let empty: Vec<u64> = Vec::new();
        let (results, _) = steal_map(&empty, 4, |&x: &u64| x);
        assert!(results.is_empty());
    }

    #[test]
    fn steal_map_steals_from_loaded_workers() {
        // Worker 0's items are slow, the rest are instant: the only way the
        // fast workers stay busy is by stealing worker 0's backlog.
        let items: Vec<usize> = (0..32).collect();
        let (results, stats) = steal_map(&items, 4, |&i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            i * 2
        });
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
        assert!(
            stats.steals > 0,
            "uneven per-worker load must trigger steals (got {stats:?})"
        );
    }

    #[test]
    fn multilane_campaign_renders_byte_identical_reports() {
        // The engine axis must not show up anywhere in a timing-free
        // report: scalar and multilane runs of a mixed grid (batchable
        // storage-free cells + unbatchable estimator and scenario cells)
        // render the same bytes.
        for spec in [tiny_spec(), scenario_spec()] {
            let scalar = run_campaign_with_engine(&spec, 2, EngineKind::Scalar).unwrap();
            let multilane = run_campaign_with_engine(&spec, 2, EngineKind::Multilane).unwrap();
            assert_eq!(
                scalar.render_json(false),
                multilane.render_json(false),
                "{}",
                spec.label
            );
        }
    }

    #[test]
    fn campaign_report_renders_and_validates() {
        let report = run_campaign(&tiny_spec(), 2).expect("synthetic grids run");
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.skipped.len(), 1);
        let json = report.render_json(true);
        let validated = validate_report(&json).expect("rendered report validates");
        assert_eq!(validated.schema, SCHEMA_VERSION);
        assert_eq!(validated.points, 3);
        assert_eq!(validated.skipped, 1);
        assert!(json.contains("\"wall_seconds\""));
        // The deterministic rendering drops every timing field.
        let bare = report.render_json(false);
        assert!(!bare.contains("wall_seconds"));
        assert!(!bare.contains("branches_per_sec"));
        assert!(!bare.contains("\"timing\""));
        validate_report(&bare).expect("timing-free report still validates");
    }

    #[test]
    fn file_backed_campaign_matches_the_synthetic_grid() {
        use tage_traces::writer::TraceWriter;
        let suite = suites::cbp1_mini();
        let dir = std::env::temp_dir().join(format!("tage-campaign-files-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for spec in suite.traces() {
            std::fs::write(
                dir.join(format!("{}.trace", spec.name())),
                TraceWriter::to_binary_bytes(&spec.generate(1_000)),
            )
            .unwrap();
        }
        let files = SourceSuite::from_dir(&dir).unwrap();
        let file_spec = CampaignSpec {
            label: "file".to_string(),
            predictors: vec![PredictorSpec::parse("tage-16k").unwrap()],
            schemes: vec![SchemeSpec::parse("storage-free").unwrap()],
            suites: vec![files],
            scenarios: vec![ScenarioSpec::Baseline],
            branches_per_trace: 1_000,
        };
        let file_report = run_campaign(&file_spec, 2).expect("file grid runs");
        let synthetic_spec = CampaignSpec {
            suites: vec![suites::cbp1_mini().into()],
            label: "file".to_string(),
            predictors: vec![PredictorSpec::parse("tage-16k").unwrap()],
            schemes: vec![SchemeSpec::parse("storage-free").unwrap()],
            scenarios: vec![ScenarioSpec::Baseline],
            branches_per_trace: 1_000,
        };
        let synthetic_report = run_campaign(&synthetic_spec, 2).unwrap();
        // Same predictions/mispredictions point for point — only the suite
        // labels (directory vs registry name) differ.
        assert_eq!(file_report.points.len(), synthetic_report.points.len());
        for (file, synthetic) in file_report.points.iter().zip(&synthetic_report.points) {
            let file = file.computed().expect("executed cell");
            let synthetic = synthetic.computed().expect("executed cell");
            let mut file_traces = file.result.traces.clone();
            file_traces.sort_by(|a, b| a.trace_name.cmp(&b.trace_name));
            let mut synthetic_traces = synthetic.result.traces.clone();
            synthetic_traces.sort_by(|a, b| a.trace_name.cmp(&b.trace_name));
            assert_eq!(file_traces, synthetic_traces);
            assert_eq!(file.result.aggregate, synthetic.result.aggregate);
        }
        // A vanished trace file surfaces as a campaign error, not a panic.
        for spec in suite.traces() {
            std::fs::remove_file(dir.join(format!("{}.trace", spec.name()))).unwrap();
        }
        let error = run_campaign(&file_spec, 2).unwrap_err();
        assert!(matches!(error, PointError::Source(_)), "{error}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointed_campaign_resumes_to_a_byte_identical_report() {
        let dir =
            std::env::temp_dir().join(format!("tage-campaign-checkpoint-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let checkpoint = CellStore::new(&dir).unwrap();
        let clean = run_campaign_with_engine(&tiny_spec(), 2, EngineKind::Multilane)
            .unwrap()
            .render_json(false);

        // Simulate a kill after every cell: each run executes one cell,
        // checkpoints it, and leaves the rest for the next run.
        let first =
            run_campaign_checkpointed(&tiny_spec(), 2, EngineKind::Multilane, &checkpoint, Some(1))
                .unwrap();
        assert_eq!((first.restored, first.executed, first.remaining), (0, 1, 2));
        let second =
            run_campaign_checkpointed(&tiny_spec(), 2, EngineKind::Multilane, &checkpoint, Some(1))
                .unwrap();
        assert_eq!(
            (second.restored, second.executed, second.remaining),
            (1, 1, 1)
        );
        let last =
            run_campaign_checkpointed(&tiny_spec(), 2, EngineKind::Multilane, &checkpoint, None)
                .unwrap();
        assert_eq!((last.restored, last.executed, last.remaining), (2, 1, 0));
        assert_eq!(last.report.render_json(false), clean);
        validate_report(&last.report.render_json(false)).expect("resumed report validates");

        // A fully-restored re-run executes nothing and still byte-matches,
        // even on the scalar engine — cells carry engine-independent bytes.
        let again =
            run_campaign_checkpointed(&tiny_spec(), 2, EngineKind::Scalar, &checkpoint, None)
                .unwrap();
        assert_eq!((again.restored, again.executed, again.remaining), (3, 0, 0));
        assert_eq!(again.report.render_json(false), clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn differently_labelled_campaigns_share_stored_cells() {
        let dir =
            std::env::temp_dir().join(format!("tage-campaign-cell-share-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CellStore::new(&dir).unwrap();
        let first = run_campaign_checkpointed(&tiny_spec(), 2, EngineKind::Multilane, &store, None)
            .unwrap();
        assert_eq!((first.restored, first.executed), (0, 3));
        // A different campaign label over the same grid content restores
        // every cell — keys are content-addressed, not label-scoped.
        let mut relabelled = tiny_spec();
        relabelled.label = "other-campaign".to_string();
        let second =
            run_campaign_checkpointed(&relabelled, 2, EngineKind::Scalar, &store, None).unwrap();
        assert_eq!((second.restored, second.executed), (3, 0));
        // Only the report header differs; the cell bytes are shared.
        assert_eq!(
            first.report.cell_bytes(),
            second.report.cell_bytes(),
            "shared cells must render identical bytes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_stale_checkpoint_cells_are_recomputed() {
        let dir = std::env::temp_dir().join(format!(
            "tage-campaign-checkpoint-corrupt-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let checkpoint = CellStore::new(&dir).unwrap();
        let spec = tiny_spec();
        let clean = run_campaign_with_engine(&spec, 2, EngineKind::Multilane)
            .unwrap()
            .render_json(false);
        let full =
            run_campaign_checkpointed(&spec, 2, EngineKind::Multilane, &checkpoint, None).unwrap();
        assert_eq!(full.executed, 3);

        // Vandalize two of the three cells: one with garbage, one with a
        // well-formed cell whose identity fields disagree.
        let (points, _) = spec.expand();
        let key = |i: usize| cell_key(spec.branches_per_trace, &points[i]);
        checkpoint
            .store_cell(key(0), "garbage, not a cell")
            .unwrap();
        checkpoint
            .store_cell(
                key(1),
                "  {\"predictor\": \"someone-else\", \"scheme\": \"x\", \"suite\": \"y\", \"scenario\": \"z\"}",
            )
            .unwrap();

        let repaired =
            run_campaign_checkpointed(&spec, 2, EngineKind::Multilane, &checkpoint, None).unwrap();
        assert_eq!(
            (repaired.restored, repaired.executed, repaired.remaining),
            (1, 2, 0)
        );
        assert_eq!(repaired.report.render_json(false), clean);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn sampled_spec() -> CampaignSpec {
        use tage_traces::source::SamplingSpec;
        let sampled = SourceSuite::from(suites::cbp1_mini()).with_sampling(SamplingSpec {
            interval: 250,
            k: 2,
            seed: 1,
        });
        CampaignSpec {
            label: "sampled".to_string(),
            predictors: vec![
                PredictorSpec::parse("tage-16k").unwrap(),
                PredictorSpec::parse("gshare").unwrap(),
            ],
            schemes: vec![
                SchemeSpec::parse("storage-free").unwrap(),
                SchemeSpec::parse("jrs-classic").unwrap(),
            ],
            suites: vec![sampled],
            scenarios: vec![ScenarioSpec::Baseline],
            branches_per_trace: 2_000,
        }
    }

    #[test]
    fn sampled_campaigns_render_validate_and_skip_unsupported_cells() {
        let (points, skipped) = sampled_spec().expand();
        // Only tage-16k × storage-free survives: estimator schemes and
        // baseline predictors have no sampled path.
        assert_eq!(points.len(), 1);
        assert_eq!(skipped.len(), 3);
        assert!(skipped
            .iter()
            .all(|s| s.reason.contains("sampling") || s.reason.contains("TAGE predictor")));

        let report = run_campaign(&sampled_spec(), 2).expect("sampled grid runs");
        let json = report.render_json(false);
        let validated = validate_report(&json).expect("sampled report validates");
        assert_eq!(validated.points, 1);
        assert_eq!(validated.skipped, 3);
        assert!(json.contains("\"suite\": \"sample:CBP-1-mini:250:2:1\""));
        assert!(json.contains("\"sampling\": {\"interval\": 250, \"k\": 2, \"seed\": 1"));
        // A sampled point claiming no sampling object (or vice versa) fails
        // validation: strip the object and re-check.
        let stripped = {
            let start = json.find(", \"sampling\": {").unwrap();
            let end = start + json[start..].find('}').unwrap() + 1;
            format!("{}{}", &json[..start], &json[end..])
        };
        assert!(validate_report(&stripped).unwrap_err().contains("sampling"));
    }

    #[test]
    fn sampled_campaign_reports_are_deterministic_across_workers_engines_and_resume() {
        let reference = run_campaign_with_engine(&sampled_spec(), 1, EngineKind::Scalar)
            .unwrap()
            .render_json(false);
        for workers in [2, 4] {
            for engine in [EngineKind::Scalar, EngineKind::Multilane] {
                let report = run_campaign_with_engine(&sampled_spec(), workers, engine)
                    .unwrap()
                    .render_json(false);
                assert_eq!(report, reference, "workers={workers} engine={engine:?}");
            }
        }
        // Kill/resume through a checkpoint store — including the predictor
        // warm cache the sampled path populates under the store directory —
        // still byte-matches a clean run.
        let dir = std::env::temp_dir().join(format!(
            "tage-campaign-sampled-checkpoint-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CellStore::new(&dir).unwrap();
        let first =
            run_campaign_checkpointed(&sampled_spec(), 2, EngineKind::Scalar, &store, Some(1))
                .unwrap();
        assert_eq!((first.restored, first.executed, first.remaining), (0, 1, 0));
        let resumed =
            run_campaign_checkpointed(&sampled_spec(), 4, EngineKind::Multilane, &store, None)
                .unwrap();
        assert_eq!((resumed.restored, resumed.executed), (1, 0));
        assert_eq!(resumed.report.render_json(false), reference);
        // Drop the finished cells but keep the predictor warm cache
        // (store/warm): the re-executed cell restores checkpoints instead
        // of replaying gaps, and its bytes still match — cache state cannot
        // leak into cell bytes.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "cell") {
                std::fs::remove_file(path).unwrap();
            }
        }
        let warm_run =
            run_campaign_checkpointed(&sampled_spec(), 2, EngineKind::Scalar, &store, None)
                .unwrap();
        assert_eq!(warm_run.executed, 1);
        assert_eq!(warm_run.report.render_json(false), reference);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validation_rejects_broken_reports() {
        assert!(validate_report("{}").is_err());
        assert!(validate_report("{\"campaign\": \"other\"}").is_err());
        let wrong_schema =
            "{\"campaign\": \"tage-bench\", \"schema\": 99, \"points\": [{\"predictor\": \"x\"}]}";
        let error = validate_report(wrong_schema).unwrap_err();
        assert!(error.contains("schema"));
        // Schema-1/2/3 reports (pre-scenario / pre-storage / pre-sampling)
        // are explicitly unsupported now.
        for old in [1, 2, 3] {
            let stale = format!(
                "{{\"campaign\": \"tage-bench\", \"schema\": {old}, \"points\": [{{\"predictor\": \"x\"}}]}}"
            );
            assert!(validate_report(&stale).unwrap_err().contains("schema"));
        }
        let no_points = "{\"campaign\": \"tage-bench\", \"schema\": 4, \"points\": []}";
        assert!(validate_report(no_points).unwrap_err().contains("points"));
        let missing_field = "{\"campaign\": \"tage-bench\", \"schema\": 4, \"points\": [{\"predictor\": \"x\", \"scheme\": \"y\", \"suite\": \"z\", \"scenario\": \"baseline\", \"storage_bits\": 1, \"traces\": 1}]}";
        assert!(validate_report(missing_field)
            .unwrap_err()
            .contains("predictions"));
        // A schema-2-shaped point (no storage accounting) is rejected.
        let no_storage = "{\"campaign\": \"tage-bench\", \"schema\": 4, \"points\": [{\"predictor\": \"x\", \"scheme\": \"y\", \"suite\": \"z\", \"scenario\": \"baseline\", \"traces\": 1}]}";
        assert!(validate_report(no_storage)
            .unwrap_err()
            .contains("storage_bits"));
        // A schema-1-shaped point (no scenario label) is rejected.
        let no_scenario = "{\"campaign\": \"tage-bench\", \"schema\": 4, \"points\": [{\"predictor\": \"x\", \"scheme\": \"y\", \"suite\": \"z\", \"traces\": 1}]}";
        assert!(validate_report(no_scenario)
            .unwrap_err()
            .contains("scenario"));
        // A non-baseline scenario cell without its metrics object is
        // rejected.
        let no_metrics = "{\"campaign\": \"tage-bench\", \"schema\": 4, \"points\": [{\"predictor\": \"x\", \"scheme\": \"y\", \"suite\": \"z\", \"scenario\": \"recovery-energy\", \"storage_bits\": 1, \"traces\": 1, \"predictions\": 1, \"mispredictions\": 0, \"instructions\": 1, \"mean_mpki\": 0, \"aggregate_mkp\": 0, \"high_pcov\": 0, \"high_mprate_mkp\": 0}]}";
        assert!(validate_report(no_metrics)
            .unwrap_err()
            .contains("scenario_metrics"));
        // An explore section missing its budget or carrying untyped Pareto
        // entries is rejected.
        let good_point = "{\"predictor\": \"x\", \"scheme\": \"y\", \"suite\": \"z\", \"scenario\": \"baseline\", \"storage_bits\": 1, \"traces\": 1, \"predictions\": 1, \"mispredictions\": 0, \"instructions\": 1, \"mean_mpki\": 0, \"aggregate_mkp\": 0, \"high_pcov\": 0, \"high_mprate_mkp\": 0}";
        let no_budget = format!(
            "{{\"campaign\": \"tage-bench\", \"schema\": 4, \"points\": [{good_point}], \"explore\": {{\"candidates\": 1, \"pareto\": []}}}}"
        );
        assert!(validate_report(&no_budget)
            .unwrap_err()
            .contains("budget_bits"));
        let bad_pareto = format!(
            "{{\"campaign\": \"tage-bench\", \"schema\": 4, \"points\": [{good_point}], \"explore\": {{\"budget_bits\": 32768, \"candidates\": 1, \"pareto\": [{{\"predictor\": \"p\", \"storage_bits\": 1}}]}}}}"
        );
        assert!(validate_report(&bad_pareto)
            .unwrap_err()
            .contains("mean_mpki"));
    }
}
