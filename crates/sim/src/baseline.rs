//! Running the storage-based baseline confidence estimators for comparison.
//!
//! The paper's related-work section describes confidence estimators designed
//! for pre-TAGE predictors: the JRS resetting-counter table, its Grunwald
//! enhancement, and the self-confidence of neural predictors. This module
//! runs any [`BranchPredictor`] together with any [`ConfidenceEstimator`]
//! over a trace and reports the binary confidence metrics (SENS, SPEC, PVP,
//! PVN) so the storage-free TAGE scheme can be compared against them.

use core::fmt;

use tage_confidence::{BinaryConfusion, ConfidenceEstimator, ConfidenceLevel};
use tage_predictors::BranchPredictor;
use tage_traces::Trace;

/// The outcome of running a predictor plus a confidence estimator over a
/// trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRunResult {
    /// Name of the trace.
    pub trace_name: String,
    /// Name of the predictor.
    pub predictor_name: String,
    /// Name of the confidence estimator.
    pub estimator_name: String,
    /// Extra storage the estimator uses, in bits.
    pub estimator_storage_bits: u64,
    /// Confusion matrix treating `High` as high confidence and everything
    /// else as low confidence.
    pub confusion: BinaryConfusion,
    /// Number of conditional branches simulated.
    pub conditional_branches: u64,
    /// Number of mispredictions.
    pub mispredictions: u64,
    /// Per-level prediction counts (low, medium, high).
    pub level_predictions: [u64; 3],
    /// Per-level misprediction counts (low, medium, high).
    pub level_mispredictions: [u64; 3],
}

impl BaselineRunResult {
    /// Misprediction rate in mispredictions per kilo-prediction.
    pub fn mkp(&self) -> f64 {
        if self.conditional_branches == 0 {
            0.0
        } else {
            self.mispredictions as f64 * 1000.0 / self.conditional_branches as f64
        }
    }

    /// Misprediction rate of one confidence level, in MKP.
    pub fn level_mkp(&self, level: ConfidenceLevel) -> f64 {
        let i = level_index(level);
        if self.level_predictions[i] == 0 {
            0.0
        } else {
            self.level_mispredictions[i] as f64 * 1000.0 / self.level_predictions[i] as f64
        }
    }

    /// Prediction coverage of one confidence level.
    pub fn level_pcov(&self, level: ConfidenceLevel) -> f64 {
        if self.conditional_branches == 0 {
            0.0
        } else {
            self.level_predictions[level_index(level)] as f64 / self.conditional_branches as f64
        }
    }
}

fn level_index(level: ConfidenceLevel) -> usize {
    match level {
        ConfidenceLevel::Low => 0,
        ConfidenceLevel::Medium => 1,
        ConfidenceLevel::High => 2,
    }
}

impl fmt::Display for BaselineRunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} + {} on {}: {:.1} MKP, {}",
            self.predictor_name,
            self.estimator_name,
            self.trace_name,
            self.mkp(),
            self.confusion
        )
    }
}

/// Runs `predictor` with `estimator` over the conditional branches of
/// `trace`.
pub fn run_baseline(
    predictor: &mut dyn BranchPredictor,
    estimator: &mut dyn ConfidenceEstimator,
    trace: &Trace,
) -> BaselineRunResult {
    let mut confusion = BinaryConfusion::default();
    let mut conditional_branches = 0u64;
    let mut mispredictions = 0u64;
    let mut level_predictions = [0u64; 3];
    let mut level_mispredictions = [0u64; 3];

    for record in trace.iter() {
        if !record.kind.is_conditional() {
            continue;
        }
        conditional_branches += 1;
        let prediction = predictor.predict(record.pc);
        let level = estimator.estimate(record.pc, &prediction);
        let mispredicted = prediction.taken != record.taken;
        if mispredicted {
            mispredictions += 1;
        }
        confusion.record(level == ConfidenceLevel::High, mispredicted);
        level_predictions[level_index(level)] += 1;
        if mispredicted {
            level_mispredictions[level_index(level)] += 1;
        }
        estimator.update(record.pc, &prediction, record.taken);
        predictor.update(record.pc, record.taken, &prediction);
    }

    BaselineRunResult {
        trace_name: trace.name().to_string(),
        predictor_name: predictor.name(),
        estimator_name: estimator.name(),
        estimator_storage_bits: estimator.storage_bits(),
        confusion,
        conditional_branches,
        mispredictions,
        level_predictions,
        level_mispredictions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_confidence::estimators::{JrsEstimator, SelfConfidenceEstimator};
    use tage_predictors::{GsharePredictor, PerceptronPredictor};
    use tage_traces::suites;

    fn trace() -> Trace {
        suites::cbp1_like().trace("INT-1").unwrap().generate(20_000)
    }

    #[test]
    fn jrs_on_gshare_flags_most_correct_predictions_as_high_confidence() {
        let trace = trace();
        let mut predictor = GsharePredictor::new(12, 12);
        let mut estimator = JrsEstimator::classic(12);
        let result = run_baseline(&mut predictor, &mut estimator, &trace);
        assert_eq!(result.conditional_branches, 20_000);
        assert!(result.confusion.total() == 20_000);
        // High-confidence predictions must be more reliable than the average.
        assert!(result.confusion.pvp() > 1.0 - result.mkp() / 1000.0);
        // And low-confidence ones less reliable (positive PVN).
        assert!(result.confusion.pvn() > result.mkp() / 1000.0);
        assert!(result.estimator_storage_bits > 0);
    }

    #[test]
    fn self_confidence_on_perceptron_has_positive_pvn() {
        let trace = trace();
        let mut predictor = PerceptronPredictor::new(512, 24);
        let mut estimator = SelfConfidenceEstimator::new(40);
        let result = run_baseline(&mut predictor, &mut estimator, &trace);
        assert!(result.confusion.pvn() > result.mkp() / 1000.0);
        assert_eq!(result.estimator_storage_bits, 0);
        // Per-level accounting is consistent.
        let total: u64 = result.level_predictions.iter().sum();
        assert_eq!(total, result.conditional_branches);
        assert!(result.level_mkp(ConfidenceLevel::Low) >= result.level_mkp(ConfidenceLevel::High));
        assert!(result.level_pcov(ConfidenceLevel::High) > 0.0);
    }

    #[test]
    fn display_mentions_all_names() {
        let trace = suites::cbp1_like().trace("FP-1").unwrap().generate(1_000);
        let mut predictor = GsharePredictor::new(10, 10);
        let mut estimator = JrsEstimator::classic(10);
        let result = run_baseline(&mut predictor, &mut estimator, &trace);
        let s = format!("{result}");
        assert!(s.contains("gshare"));
        assert!(s.contains("jrs"));
        assert!(s.contains("FP-1"));
    }
}
