//! Enumerable baseline-estimator configurations for sweep grids.
//!
//! The confidence-scheme axis of a campaign grid mixes the paper's
//! storage-free TAGE classification with the storage-based baselines of this
//! module. [`EstimatorSpec`] names the baseline configurations: each variant
//! parses from a stable CLI token, enumerates for `--list`, and builds a
//! cold estimator instance per sweep point.

use super::{ConfidenceEstimator, JrsEstimator, SelfConfidenceEstimator};

/// A named, buildable baseline-estimator configuration — one value of the
/// confidence-scheme axis of a sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorSpec {
    /// The JRS resetting-counter estimator, `2^12` counters.
    JrsClassic,
    /// The Grunwald-enhanced JRS estimator (predicted direction in the
    /// index), `2^12` counters.
    JrsEnhanced,
    /// Self-confidence thresholding on the predictor's margin. The threshold
    /// is chosen per predictor at build time (margins scale with the
    /// predictor family); `threshold` is the neutral default used when the
    /// caller supplies none.
    SelfConfidence,
}

impl EstimatorSpec {
    /// Every baseline-estimator configuration, in grid-axis order.
    pub const ALL: [EstimatorSpec; 3] = [
        EstimatorSpec::JrsClassic,
        EstimatorSpec::JrsEnhanced,
        EstimatorSpec::SelfConfidence,
    ];

    /// The stable grid token naming this configuration.
    pub fn token(&self) -> &'static str {
        match self {
            EstimatorSpec::JrsClassic => "jrs-classic",
            EstimatorSpec::JrsEnhanced => "jrs-enhanced",
            EstimatorSpec::SelfConfidence => "self-confidence",
        }
    }

    /// Parses a grid token back into a configuration.
    pub fn parse(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|spec| spec.token() == token)
    }

    /// Builds a cold estimator instance.
    ///
    /// `margin_threshold` parameterises the self-confidence variant (the
    /// margin scale differs per predictor family); the JRS variants ignore
    /// it.
    pub fn build(&self, margin_threshold: i64) -> Box<dyn ConfidenceEstimator + Send> {
        match self {
            EstimatorSpec::JrsClassic => Box::new(JrsEstimator::classic(12)),
            EstimatorSpec::JrsEnhanced => Box::new(JrsEstimator::enhanced(12)),
            EstimatorSpec::SelfConfidence => {
                Box::new(SelfConfidenceEstimator::new(margin_threshold.max(1)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_predictors::Prediction;

    #[test]
    fn tokens_round_trip_and_are_unique() {
        for spec in EstimatorSpec::ALL {
            assert_eq!(EstimatorSpec::parse(spec.token()), Some(spec));
        }
        let mut tokens: Vec<&str> = EstimatorSpec::ALL.map(|s| s.token()).to_vec();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), EstimatorSpec::ALL.len());
        assert_eq!(EstimatorSpec::parse("storage-free"), None);
    }

    #[test]
    fn every_spec_builds_a_working_estimator() {
        for spec in EstimatorSpec::ALL {
            let mut estimator = spec.build(20);
            let prediction = Prediction::new(true, 50);
            let _ = estimator.estimate(0x4000, &prediction);
            estimator.update(0x4000, &prediction, true);
            estimator.reset();
            assert!(!estimator.name().is_empty(), "{}", spec.token());
        }
    }

    #[test]
    fn self_confidence_threshold_is_clamped_positive() {
        let mut estimator = EstimatorSpec::SelfConfidence.build(0);
        // With the clamped threshold of 1 any nonzero margin is high.
        let level = estimator.estimate(0, &Prediction::new(true, 5));
        assert_eq!(level, crate::ConfidenceLevel::High);
    }
}
