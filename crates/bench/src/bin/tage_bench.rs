//! `tage-bench` — the cross-product campaign runner.
//!
//! Expands a declarative predictor × confidence-scheme × suite grid into
//! sweep points, executes them through the generic simulation engine with a
//! work-stealing queue over points, and writes a versioned JSON campaign
//! report (see `docs/CAMPAIGNS.md` for the grid format and schema).
//!
//! ```text
//! tage-bench [--predictors LIST] [--schemes LIST] [--suites LIST]
//!            [--scenario LIST] [--trace-dir DIR]... [--branches N]
//!            [--workers N] [--engine multilane|scalar] [--label STR]
//!            [--out PATH] [--no-timing] [--list]
//!            [--checkpoint DIR | --resume DIR] [--max-cells N]
//!            [--sample] [--sample-interval N] [--sample-k N] [--sample-seed N]
//! tage-bench --explore [--budget-bits N] [--max-geometries N] [...]
//! tage-bench --export-traces DIR [--gzip] [--suites LIST] [--branches N]
//! tage-bench --check PATH
//! tage-bench --submit http://HOST:PORT [--no-wait] [grid flags...]
//! ```
//!
//! Lists are comma-separated grid tokens; `--list` prints every known axis
//! value. Suites stream — synthetic registry tokens generate records on the
//! fly, and `--trace-dir` adds a file-backed suite over every `*.trace`
//! file in a directory, read chunk by chunk through
//! `tage_traces::source::BinaryFileSource` (when only `--trace-dir` suites
//! are given the synthetic default is dropped). `--export-traces` writes
//! the selected synthetic suites to disk as binary traces (streamed, never
//! materialized) so a follow-up run can consume them with `--trace-dir` —
//! this is what the CI campaign-smoke job does (`--gzip` writes
//! `.trace.gz` files instead — the std-only stored-block gzip framing the
//! gzip-native decoder reads back). `--check` structurally validates an
//! existing report (schema version + required fields) and exits non-zero
//! on mismatch.
//!
//! **Phase sampling** (SimPoint-style, see `docs/TRACES.md`): a suite
//! token of the form `sample:<suite>[:interval[:k[:seed]]]` runs the suite
//! through `tage_sim::phase` — each stream is sliced into
//! `interval`-record slices, clustered into at most `k` phases, and only
//! representative slices are simulated, with whole-trace metrics
//! reconstructed as weighted sums. `--sample` (or any `--sample-*`
//! override) instead applies one plan to *every* suite on the grid,
//! including `--trace-dir` suites. Sampled cells pair TAGE predictors with
//! the storage-free scheme on the baseline scenario; other cells are
//! skipped with a reason. Sampled reports stay byte-identical across
//! worker counts, engines, and kill/`--resume` — the sampling plan is part
//! of each cell's content-addressed identity.
//!
//! `--engine` picks the per-point execution path: `multilane` (the default)
//! lane-batches each lane-batchable cell's suite through the lockstep
//! engine; `scalar` forces the one-stream-at-a-time path everywhere. The
//! two are bit-identical — timing-free reports byte-match across engines
//! (CI verifies this) — so the flag is purely a throughput control.
//!
//! `--checkpoint DIR` persists every finished cell to DIR as it completes,
//! restoring already-finished cells on a re-run; `--resume DIR` is the same
//! but requires DIR to exist (catching typos on the resume leg). A resumed
//! campaign's timing-free report is byte-identical to an uninterrupted
//! one's. `--max-cells N` caps how many cells one run executes; when cells
//! remain the run prints progress and exits 0 **without** writing `--out`
//! (the CI campaign-smoke job uses this to rehearse a mid-grid kill).
//!
//! `--explore` replaces the predictor axis with a deterministic enumeration
//! of TAGE geometries fitting `--budget-bits` (capped at `--max-geometries`
//! candidates, largest first) and appends an `explore` section to the
//! report: the Pareto front over storage, MPKI, and residual high-bucket
//! misprediction rate. The front is derived from the rendered timing-free
//! cell bytes, so it is byte-identical across worker counts, engines, and
//! kill/`--resume` splits. Unless overridden, `--explore` pairs the
//! candidates with the storage-free scheme only (see `docs/GEOMETRY.md`).
//!
//! `--submit URL` turns the binary into a client of a running `tage-serve`
//! daemon (see `docs/SERVICE.md`): the grid tokens are sent as a campaign,
//! polled to completion, and the final byte-stable report lands in `--out`
//! (or stdout). `--no-wait` returns right after the acknowledgement.

use std::path::Path;
use std::process::ExitCode;

use tage_bench::campaign::{
    run_campaign_checkpointed, run_campaign_with_engine, validate_report, CampaignReport,
    CampaignSpec, SCHEMA_VERSION,
};
use tage_bench::cellstore::CellStore;
use tage_bench::cli;
use tage_bench::explore;
use tage_sim::engine::default_parallelism;
use tage_sim::point::{PredictorSpec, SchemeSpec};
use tage_sim::scenarios::ScenarioSpec;
use tage_sim::EngineKind;
use tage_traces::decoder;
use tage_traces::inflate::gzip_compress;
use tage_traces::source::{BranchSource, SamplingSpec, SourceSuite, SyntheticSource};
use tage_traces::suites;
use tage_traces::writer::StreamingTraceWriter;
use tage_traces::BranchRecord;

/// The default smoke grid: one TAGE size and one baseline predictor, the
/// storage-free scheme against one baseline estimator, over the mini suite.
const DEFAULT_PREDICTORS: &str = "tage-16k,gshare";
const DEFAULT_SCHEMES: &str = "storage-free,jrs-classic";
const DEFAULT_SUITES: &str = "cbp1-mini";
const DEFAULT_SCENARIOS: &str = "baseline";
const DEFAULT_BRANCHES: usize = 20_000;

struct Options {
    predictors: String,
    schemes: String,
    schemes_explicit: bool,
    suites: String,
    suites_explicit: bool,
    scenarios: String,
    trace_dirs: Vec<String>,
    branches: usize,
    workers: usize,
    engine: EngineKind,
    label: String,
    out: Option<String>,
    include_timing: bool,
    list: bool,
    check: Option<String>,
    export_traces: Option<String>,
    gzip: bool,
    sample: bool,
    sample_interval: Option<u64>,
    sample_k: Option<usize>,
    sample_seed: Option<u64>,
    checkpoint: Option<String>,
    resume: bool,
    max_cells: Option<usize>,
    explore: bool,
    budget_bits: Option<u64>,
    max_geometries: Option<usize>,
    submit: Option<String>,
    no_wait: bool,
}

impl Options {
    /// The grid-wide sampling plan: `Some` when `--sample` or any
    /// `--sample-*` override was given, with unset fields at the
    /// [`SamplingSpec`] defaults.
    fn sampling_plan(&self) -> Option<SamplingSpec> {
        if !self.sample
            && self.sample_interval.is_none()
            && self.sample_k.is_none()
            && self.sample_seed.is_none()
        {
            return None;
        }
        Some(SamplingSpec {
            interval: self
                .sample_interval
                .unwrap_or(SamplingSpec::DEFAULT_INTERVAL),
            k: self.sample_k.unwrap_or(SamplingSpec::DEFAULT_K),
            seed: self.sample_seed.unwrap_or(SamplingSpec::DEFAULT_SEED),
        })
    }
}

/// Default `--budget-bits` for `--explore` (the paper's 64 Kbit point).
const DEFAULT_BUDGET_BITS: u64 = 64 * 1024;
/// Default `--max-geometries` candidate cap for `--explore`.
const DEFAULT_MAX_GEOMETRIES: usize = 16;

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        predictors: DEFAULT_PREDICTORS.to_string(),
        schemes: DEFAULT_SCHEMES.to_string(),
        schemes_explicit: false,
        suites: DEFAULT_SUITES.to_string(),
        suites_explicit: false,
        scenarios: DEFAULT_SCENARIOS.to_string(),
        trace_dirs: Vec::new(),
        branches: DEFAULT_BRANCHES,
        workers: default_parallelism(),
        engine: EngineKind::Multilane,
        label: "campaign".to_string(),
        out: None,
        include_timing: true,
        list: false,
        check: None,
        export_traces: None,
        gzip: false,
        sample: false,
        sample_interval: None,
        sample_k: None,
        sample_seed: None,
        checkpoint: None,
        resume: false,
        max_cells: None,
        explore: false,
        budget_bits: None,
        max_geometries: None,
        submit: None,
        no_wait: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--predictors" => options.predictors = cli::require_value(&mut args, "--predictors")?,
            "--schemes" => {
                options.schemes = cli::require_value(&mut args, "--schemes")?;
                options.schemes_explicit = true;
            }
            "--suites" => {
                options.suites = cli::require_value(&mut args, "--suites")?;
                options.suites_explicit = true;
            }
            "--scenario" | "--scenarios" => {
                options.scenarios = cli::require_value(&mut args, "--scenario")?
            }
            "--trace-dir" => options
                .trace_dirs
                .push(cli::require_value(&mut args, "--trace-dir")?),
            "--branches" => {
                let value = cli::require_value(&mut args, "--branches")?;
                options.branches = cli::parse_count("--branches", &value)?;
            }
            "--workers" => {
                let value = cli::require_value(&mut args, "--workers")?;
                options.workers = cli::parse_count("--workers", &value)?;
            }
            "--engine" => {
                let value = cli::require_value(&mut args, "--engine")?;
                options.engine = match value.as_str() {
                    "multilane" => EngineKind::Multilane,
                    "scalar" => EngineKind::Scalar,
                    other => {
                        return Err(format!(
                            "unknown --engine \"{other}\" (known: multilane, scalar)"
                        ))
                    }
                };
            }
            "--label" => options.label = cli::require_value(&mut args, "--label")?,
            "--out" => options.out = Some(cli::require_value(&mut args, "--out")?),
            "--no-timing" => options.include_timing = false,
            "--list" => options.list = true,
            "--check" => options.check = Some(cli::require_value(&mut args, "--check")?),
            "--export-traces" => {
                options.export_traces = Some(cli::require_value(&mut args, "--export-traces")?)
            }
            "--gzip" => options.gzip = true,
            "--sample" => options.sample = true,
            "--sample-interval" => {
                let value = cli::require_value(&mut args, "--sample-interval")?;
                options.sample_interval =
                    Some(cli::parse_count("--sample-interval", &value)? as u64);
            }
            "--sample-k" => {
                let value = cli::require_value(&mut args, "--sample-k")?;
                options.sample_k = Some(cli::parse_count("--sample-k", &value)?);
            }
            "--sample-seed" => {
                let value = cli::require_value(&mut args, "--sample-seed")?;
                let seed = value
                    .parse::<u64>()
                    .map_err(|_| format!("--sample-seed: \"{value}\" is not a u64"))?;
                options.sample_seed = Some(seed);
            }
            "--checkpoint" => {
                options.checkpoint = Some(cli::require_value(&mut args, "--checkpoint")?)
            }
            "--resume" => {
                options.checkpoint = Some(cli::require_value(&mut args, "--resume")?);
                options.resume = true;
            }
            "--max-cells" => {
                let value = cli::require_value(&mut args, "--max-cells")?;
                options.max_cells = Some(cli::parse_count("--max-cells", &value)?);
            }
            "--explore" => options.explore = true,
            "--submit" => options.submit = Some(cli::require_value(&mut args, "--submit")?),
            "--no-wait" => options.no_wait = true,
            "--budget-bits" => {
                let value = cli::require_value(&mut args, "--budget-bits")?;
                options.budget_bits = Some(cli::parse_count("--budget-bits", &value)? as u64);
            }
            "--max-geometries" => {
                let value = cli::require_value(&mut args, "--max-geometries")?;
                options.max_geometries = Some(cli::parse_count("--max-geometries", &value)?);
            }
            other => {
                return Err(format!(
                    "unknown argument: {other} (see --list or docs/CAMPAIGNS.md)"
                ))
            }
        }
    }
    if options.max_cells.is_some() && options.checkpoint.is_none() {
        return Err("--max-cells requires --checkpoint or --resume".to_string());
    }
    if options.gzip && options.export_traces.is_none() {
        return Err("--gzip requires --export-traces".to_string());
    }
    if options.sample_interval == Some(0) {
        return Err("--sample-interval must be nonzero".to_string());
    }
    if options.sample_k == Some(0) {
        return Err("--sample-k must be nonzero".to_string());
    }
    if !options.explore && (options.budget_bits.is_some() || options.max_geometries.is_some()) {
        return Err("--budget-bits/--max-geometries require --explore".to_string());
    }
    if options.no_wait && options.submit.is_none() {
        return Err("--no-wait requires --submit".to_string());
    }
    if options.submit.is_some() && (options.explore || options.checkpoint.is_some()) {
        return Err(
            "--submit sends the grid to a tage-serve daemon; combine it with the grid flags only, not --explore/--checkpoint/--resume".to_string(),
        );
    }
    Ok(options)
}

/// Streams every trace of the selected synthetic suites to
/// `dir/<trace>.trace` as binary files — generator to disk through a
/// bounded buffer, no materialized `Trace` in between. With `gzip`, the
/// stream is framed into a `.trace.gz` gzip container instead (stored
/// DEFLATE blocks, readable by any gzip implementation and by the
/// gzip-native decoder).
fn export_traces(dir: &str, suite_list: &str, branches: usize, gzip: bool) -> Result<(), String> {
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut batch = vec![BranchRecord::default(); 4096];
    let mut exported = 0usize;
    for token in suite_list
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
    {
        let suite =
            suites::by_name(token).ok_or_else(|| format!("unknown suite token \"{token}\""))?;
        for spec in suite.traces() {
            let extension = if gzip { "trace.gz" } else { "trace" };
            let path = dir.join(format!("{}.{extension}", spec.name()));
            let mut source = SyntheticSource::from_spec(spec, branches);
            let records = if gzip {
                // Gzip needs the whole-stream CRC, so the trace is framed
                // in memory and compressed in one pass.
                let mut writer = StreamingTraceWriter::new(Vec::new(), spec.name())
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                pump(&mut writer, &mut source, &mut batch, &path)?;
                let records = writer.records_written();
                let bytes = writer
                    .finish()
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                std::fs::write(&path, gzip_compress(&bytes))
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                records
            } else {
                let file = std::fs::File::create(&path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
                let mut writer =
                    StreamingTraceWriter::new(std::io::BufWriter::new(file), spec.name())
                        .map_err(|e| format!("{}: {e}", path.display()))?;
                pump(&mut writer, &mut source, &mut batch, &path)?;
                let records = writer.records_written();
                writer
                    .finish()
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                records
            };
            println!("exported {} ({records} records)", path.display());
            exported += 1;
        }
    }
    println!("{exported} traces exported to {}", dir.display());
    Ok(())
}

/// Drains `source` into `writer` through the shared bounded batch buffer.
fn pump<W: std::io::Write>(
    writer: &mut StreamingTraceWriter<W>,
    source: &mut SyntheticSource,
    batch: &mut [BranchRecord],
    path: &Path,
) -> Result<(), String> {
    loop {
        let filled = source
            .next_batch(batch)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        if filled == 0 {
            return Ok(());
        }
        for record in &batch[..filled] {
            writer
                .push(record)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
    }
}

fn parse_axis<T>(
    axis: &str,
    list: &str,
    parse: impl Fn(&str) -> Option<T>,
    known: &[String],
) -> Result<Vec<T>, String> {
    let mut values = Vec::new();
    for token in list.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        match parse(token) {
            Some(value) => values.push(value),
            None => {
                return Err(format!(
                    "unknown {axis} token \"{token}\" (known: {})",
                    known.join(", ")
                ))
            }
        }
    }
    if values.is_empty() {
        return Err(format!("the {axis} axis is empty"));
    }
    Ok(values)
}

fn print_axes() {
    println!(
        "predictor tokens: {}",
        PredictorSpec::known_tokens().join(", ")
    );
    println!(
        "scheme tokens:    {}",
        SchemeSpec::known_tokens().join(", ")
    );
    println!("suite tokens:     {}", suites::REGISTRY.join(", "));
    println!(
        "scenario tokens:  {}",
        ScenarioSpec::known_tokens().join(", ")
    );
    println!("file suites:      --trace-dir DIR (streams every decodable trace file, sorted)");
    println!();
    println!("suites:");
    for name in suites::REGISTRY.iter() {
        if let Some(suite) = suites::by_name(name) {
            println!("  {name:<12} {} traces", suite.traces().len());
        }
    }
    println!();
    println!("trace file formats (--trace-dir detects by file-name suffix):");
    for decoder in decoder::REGISTRY.iter() {
        let extensions: Vec<String> = decoder
            .extensions()
            .iter()
            .map(|suffix| format!(".{suffix}"))
            .collect();
        println!(
            "  {:<12} {:<22} {}",
            decoder.format_name(),
            extensions.join(" "),
            decoder.description()
        );
    }
    println!();
    println!(
        "sampled suites:   sample:<suite>[:interval[:k[:seed]]] (defaults {}:{}:{}),",
        SamplingSpec::DEFAULT_INTERVAL,
        SamplingSpec::DEFAULT_K,
        SamplingSpec::DEFAULT_SEED
    );
    println!(
        "                  or --sample/--sample-interval/--sample-k/--sample-seed for every suite"
    );
    println!();
    println!("(storage-free pairs with TAGE predictors only; other cells are skipped;");
    println!(" sampled suites additionally require storage-free × baseline cells)");
}

fn check_report(path: &str) -> ExitCode {
    let json = match std::fs::read_to_string(path) {
        Ok(json) => json,
        Err(error) => {
            eprintln!("--check: cannot read {path}: {error}");
            return ExitCode::FAILURE;
        }
    };
    match validate_report(&json) {
        Ok(summary) => {
            println!(
                "{path}: valid campaign report (schema {}, {} points, {} skipped)",
                summary.schema, summary.points, summary.skipped
            );
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("--check: {path}: {error}");
            ExitCode::FAILURE
        }
    }
}

/// `--submit`: sends the grid tokens to a `tage-serve` daemon instead of
/// executing locally. Unless `--no-wait`, polls the campaign to completion
/// and writes the final byte-stable report to `--out` (or stdout) — the
/// same bytes a local `--no-timing` run of the grid would produce.
fn submit_mode(url: &str, options: &Options) -> ExitCode {
    let split = |list: &str| {
        list.split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(str::to_string)
            .collect::<Vec<String>>()
    };
    // Mirror local axis resolution: an unmodified default suite list is
    // dropped when file-backed suites are given. A grid-wide --sample plan
    // travels as canonical `sample:` suite tokens — the wire format has no
    // separate sampling field, which also means it cannot reach trace-dir
    // suites (those resolve on the daemon's side of the wire).
    let mut suite_tokens = if options.trace_dirs.is_empty() || options.suites_explicit {
        split(&options.suites)
    } else {
        Vec::new()
    };
    if let Some(plan) = options.sampling_plan() {
        if !options.trace_dirs.is_empty() {
            eprintln!(
                "tage-bench: --sample cannot reach --trace-dir suites through --submit; \
                 run the sampled grid locally or restrict it to registry suites"
            );
            return ExitCode::FAILURE;
        }
        suite_tokens = suite_tokens
            .iter()
            .map(|token| {
                if token.starts_with("sample:") {
                    token.clone()
                } else {
                    plan.suite_token(token)
                }
            })
            .collect();
    }
    let request = tage_bench::service::grid::GridRequest {
        label: options.label.clone(),
        predictors: split(&options.predictors),
        schemes: split(&options.schemes),
        suites: suite_tokens,
        trace_dirs: options.trace_dirs.clone(),
        scenarios: split(&options.scenarios),
        branches_per_trace: options.branches,
    };
    match tage_bench::service::client::submit_grid(url, &request, !options.no_wait) {
        Ok(result) => {
            println!("campaign {} is {}", result.id, result.state);
            if let Some(report) = result.report {
                match &options.out {
                    Some(path) => {
                        if let Err(error) = std::fs::write(path, &report) {
                            eprintln!("tage-bench: could not write {path}: {error}");
                            return ExitCode::FAILURE;
                        }
                        println!("wrote {path}");
                    }
                    None => print!("{report}"),
                }
            } else if !options.no_wait {
                eprintln!("tage-bench: daemon returned no report");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("tage-bench: --submit: {error}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the campaign, through a checkpoint when one was requested. Returns
/// `Ok(None)` when a `--max-cells` cap left cells unexecuted — progress is
/// checkpointed but no finished report exists yet.
fn run_checkpointable_campaign(
    spec: &CampaignSpec,
    options: &Options,
) -> Result<Option<CampaignReport>, String> {
    let Some(dir) = &options.checkpoint else {
        return run_campaign_with_engine(spec, options.workers, options.engine)
            .map(Some)
            .map_err(|e| e.to_string());
    };
    if options.resume && !Path::new(dir).is_dir() {
        return Err(format!("--resume {dir}: no such checkpoint directory"));
    }
    let checkpoint = CellStore::new(dir)
        .map_err(|e| format!("--checkpoint {dir}: cannot create directory: {e}"))?;
    let run = run_campaign_checkpointed(
        spec,
        options.workers,
        options.engine,
        &checkpoint,
        options.max_cells,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "checkpoint {dir}: {} cells restored, {} executed, {} remaining",
        run.restored, run.executed, run.remaining
    );
    if run.remaining > 0 {
        println!(
            "stopping with {} cells unexecuted (--max-cells); resume with --resume {dir}",
            run.remaining
        );
        return Ok(None);
    }
    Ok(Some(run.report))
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(error) => {
            eprintln!("tage-bench: {error}");
            return ExitCode::FAILURE;
        }
    };
    if options.list {
        print_axes();
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &options.check {
        return check_report(path);
    }
    if let Some(dir) = &options.export_traces {
        return match export_traces(dir, &options.suites, options.branches, options.gzip) {
            Ok(()) => ExitCode::SUCCESS,
            Err(error) => {
                eprintln!("tage-bench: --export-traces: {error}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(url) = &options.submit {
        return submit_mode(url, &options);
    }

    // --explore swaps the predictor axis for a budgeted geometry
    // enumeration and (unless --schemes was given) pins the scheme axis to
    // storage-free, the estimator the design-space search ranks.
    let budget_bits = options.budget_bits.unwrap_or(DEFAULT_BUDGET_BITS);
    let explore_candidates = if options.explore {
        let geometries = explore::enumerate_geometries(
            budget_bits,
            options.max_geometries.unwrap_or(DEFAULT_MAX_GEOMETRIES),
        );
        if geometries.is_empty() {
            eprintln!("tage-bench: --explore: no geometry fits a {budget_bits}-bit budget");
            return ExitCode::FAILURE;
        }
        println!(
            "explore: {} candidate geometries under {budget_bits} bits",
            geometries.len()
        );
        Some(explore::explore_predictors(geometries))
    } else {
        None
    };
    let candidates = explore_candidates.as_ref().map_or(0, Vec::len);

    let spec = {
        let predictors = match explore_candidates {
            Some(candidates) => Ok(candidates),
            None => parse_axis(
                "predictor",
                &options.predictors,
                PredictorSpec::parse,
                &PredictorSpec::known_tokens(),
            ),
        };
        let scheme_list = if options.explore && !options.schemes_explicit {
            "storage-free"
        } else {
            options.schemes.as_str()
        };
        let schemes = parse_axis(
            "scheme",
            scheme_list,
            SchemeSpec::parse,
            &SchemeSpec::known_tokens(),
        );
        let scenarios = parse_axis(
            "scenario",
            &options.scenarios,
            ScenarioSpec::parse,
            &ScenarioSpec::known_tokens(),
        );
        let suite_names: Vec<String> = suites::REGISTRY.iter().map(|s| s.to_string()).collect();
        // Synthetic registry suites stream through SyntheticSources; an
        // unmodified default is dropped when file-backed suites are given.
        // A `sample:<suite>[:interval[:k[:seed]]]` token resolves the base
        // suite and tags it with the phase-sampling plan.
        let resolve_suite = |token: &str| -> Option<SourceSuite> {
            match SamplingSpec::parse_token(token) {
                Some((base, spec)) => {
                    suites::by_name(base).map(|s| SourceSuite::from_suite(&s).with_sampling(spec))
                }
                None if token.starts_with("sample:") => None,
                None => suites::by_name(token).map(|s| SourceSuite::from_suite(&s)),
            }
        };
        let suites = if options.trace_dirs.is_empty() || options.suites_explicit {
            parse_axis("suite", &options.suites, resolve_suite, &suite_names)
        } else {
            Ok(Vec::new())
        };
        let suites = suites.and_then(|mut list| {
            for dir in &options.trace_dirs {
                match SourceSuite::from_dir(dir) {
                    Ok(suite) => list.push(suite),
                    Err(error) => return Err(format!("--trace-dir {dir}: {error}")),
                }
            }
            // The grid-wide --sample plan covers every suite that does not
            // already carry its own token-level plan.
            if let Some(plan) = options.sampling_plan() {
                list = list
                    .into_iter()
                    .map(|suite| {
                        if suite.sampling().is_some() {
                            suite
                        } else {
                            suite.with_sampling(plan)
                        }
                    })
                    .collect();
            }
            Ok(list)
        });
        match (predictors, schemes, suites, scenarios) {
            (Ok(predictors), Ok(schemes), Ok(suites), Ok(scenarios)) => CampaignSpec {
                label: options.label.clone(),
                predictors,
                schemes,
                suites,
                scenarios,
                branches_per_trace: options.branches,
            },
            (predictors, schemes, suites, scenarios) => {
                for error in [
                    predictors.err(),
                    schemes.err(),
                    suites.err(),
                    scenarios.err(),
                ]
                .into_iter()
                .flatten()
                {
                    eprintln!("tage-bench: {error}");
                }
                return ExitCode::FAILURE;
            }
        }
    };

    println!(
        "== tage-bench campaign \"{}\" — {} × {} × {} × {} grid, {} branches/trace, {} workers, {} engine ==",
        spec.label,
        spec.predictors.len(),
        spec.schemes.len(),
        spec.suites.len(),
        spec.scenarios.len(),
        spec.branches_per_trace,
        options.workers,
        match options.engine {
            EngineKind::Multilane => "multilane",
            EngineKind::Scalar => "scalar",
        },
    );
    let mut report = match run_checkpointable_campaign(&spec, &options) {
        Ok(Some(report)) => report,
        // A --max-cells run stopped with cells remaining: progress is
        // checkpointed, the (partial) report is deliberately not written.
        Ok(None) => return ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("tage-bench: {error}");
            return ExitCode::FAILURE;
        }
    };
    if report.points.is_empty() {
        eprintln!(
            "tage-bench: the grid produced no executable points ({} skipped)",
            report.skipped.len()
        );
        return ExitCode::FAILURE;
    }
    if options.explore {
        if let Err(error) = explore::attach_explore_section(&mut report, budget_bits, candidates) {
            eprintln!("tage-bench: {error}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "{:<14} {:<15} {:<11} {:<17} {:>11} {:>10} {:>10} {:>10}",
        "predictor",
        "scheme",
        "suite",
        "scenario",
        "predictions",
        "mean_mpki",
        "high_pcov",
        "seconds"
    );
    let restored = report
        .points
        .iter()
        .filter(|cell| cell.computed().is_none())
        .count();
    if restored > 0 {
        println!("({restored} cells restored from the checkpoint, not re-printed)");
    }
    for point in report.points.iter().filter_map(|cell| cell.computed()) {
        let result = &point.result;
        println!(
            "{:<14} {:<15} {:<11} {:<17} {:>11} {:>10.3} {:>10.3} {:>10.3}",
            result.predictor,
            result.scheme,
            result.suite,
            result.scenario,
            result.total_predictions(),
            result.mean_mpki(),
            result
                .aggregate
                .level_pcov(tage_confidence::ConfidenceLevel::High),
            point.wall_seconds,
        );
        for (name, value) in &result.scenario_metrics {
            println!("{:>46} {name} = {value:.3}", "");
        }
    }
    for skipped in &report.skipped {
        println!(
            "skipped        {} × {} × {} on {}: {}",
            skipped.predictor, skipped.scheme, skipped.scenario, skipped.suite, skipped.reason
        );
    }
    if let Some(explore_section) = &report.explore {
        println!();
        println!(
            "explore: Pareto front under {} bits ({} of {} candidates survive)",
            explore_section.budget_bits,
            explore_section.pareto.len(),
            explore_section.candidates,
        );
        println!(
            "{:<22} {:>12} {:>10} {:>16}",
            "predictor", "storage_bits", "mean_mpki", "high_mprate_mkp"
        );
        for entry in &explore_section.pareto {
            println!(
                "{:<22} {:>12} {:>10.3} {:>16.3}",
                entry.predictor, entry.storage_bits, entry.mean_mpki, entry.high_mprate_mkp
            );
        }
    }
    println!();
    println!(
        "{} points in {:.3}s on {} workers ({} steals), schema {}",
        report.points.len(),
        report.wall_seconds,
        report.workers,
        report.steals,
        SCHEMA_VERSION
    );

    if let Some(path) = &options.out {
        let json = report.render_json(options.include_timing);
        if let Err(error) = std::fs::write(path, &json) {
            eprintln!("tage-bench: could not write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    ExitCode::SUCCESS
}
