//! Writing traces to disk in the binary or text format.

use std::io::Write;

use crate::format::{kind_to_byte, kind_to_letter, FormatError, MAGIC, VERSION};
use crate::record::BranchRecord;
use crate::trace::Trace;

/// Writes branch traces in the binary format described in [`crate::format`].
///
/// Generic writer functions take `W: Write` by value; pass `&mut writer` if
/// you need to keep using the writer afterwards.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use tage_traces::{writer::TraceWriter, reader::TraceReader, BranchRecord, Trace};
///
/// let trace = Trace::from_records("toy", vec![BranchRecord::conditional(0x40, true)]);
/// let mut buf = Vec::new();
/// TraceWriter::write_binary(&mut buf, &trace)?;
/// let back = TraceReader::read_binary(&buf[..])?;
/// assert_eq!(back.records(), trace.records());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceWriter;

impl TraceWriter {
    /// Writes a trace in the binary format.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError::Io`] if the underlying writer fails.
    pub fn write_binary<W: Write>(mut writer: W, trace: &Trace) -> Result<(), FormatError> {
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        let name = trace.name().as_bytes();
        writer.write_all(&(name.len() as u32).to_le_bytes())?;
        writer.write_all(name)?;
        writer.write_all(&(trace.len() as u64).to_le_bytes())?;
        for record in trace.iter() {
            Self::write_record_binary(&mut writer, record)?;
        }
        writer.flush()?;
        Ok(())
    }

    /// Writes a single record in the binary record encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError::Io`] if the underlying writer fails.
    pub fn write_record_binary<W: Write>(
        writer: &mut W,
        record: &BranchRecord,
    ) -> Result<(), FormatError> {
        writer.write_all(&record.pc.to_le_bytes())?;
        writer.write_all(&record.target.to_le_bytes())?;
        let flags = kind_to_byte(record.kind) | if record.taken { 0x80 } else { 0 };
        writer.write_all(&[flags])?;
        writer.write_all(&record.gap.to_le_bytes())?;
        Ok(())
    }

    /// Writes a trace in the human-readable text format.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError::Io`] if the underlying writer fails.
    pub fn write_text<W: Write>(mut writer: W, trace: &Trace) -> Result<(), FormatError> {
        writeln!(writer, "# tage-traces text format v{VERSION}")?;
        writeln!(writer, "! name {}", trace.name())?;
        for record in trace.iter() {
            writeln!(
                writer,
                "{:x} {} {} {:x} {}",
                record.pc,
                kind_to_letter(record.kind),
                if record.taken { 'T' } else { 'N' },
                record.target,
                record.gap
            )?;
        }
        writer.flush()?;
        Ok(())
    }

    /// Convenience: encodes a trace into an in-memory binary buffer.
    pub fn to_binary_bytes(trace: &Trace) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + trace.len() * crate::format::RECORD_BYTES);
        // Writing to a Vec<u8> cannot fail.
        Self::write_binary(&mut buf, trace).expect("writing to a Vec cannot fail");
        buf
    }

    /// Convenience: encodes a trace into a text-format string.
    pub fn to_text_string(trace: &Trace) -> String {
        let mut buf = Vec::new();
        Self::write_text(&mut buf, trace).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("text format is always valid UTF-8")
    }
}

/// A streaming binary writer for traces that are too large to hold in memory.
///
/// The record count is not known up-front, so the stream written by this type
/// uses a sentinel count of `u64::MAX`; [`crate::reader::TraceReader`] then
/// reads records until end-of-file.
#[derive(Debug)]
pub struct StreamingTraceWriter<W: Write> {
    inner: W,
    records_written: u64,
}

impl<W: Write> StreamingTraceWriter<W> {
    /// Starts a streaming binary trace with the given name.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError::Io`] if the underlying writer fails.
    pub fn new(mut inner: W, name: &str) -> Result<Self, FormatError> {
        inner.write_all(&MAGIC)?;
        inner.write_all(&VERSION.to_le_bytes())?;
        inner.write_all(&(name.len() as u32).to_le_bytes())?;
        inner.write_all(name.as_bytes())?;
        inner.write_all(&u64::MAX.to_le_bytes())?;
        Ok(StreamingTraceWriter {
            inner,
            records_written: 0,
        })
    }

    /// Appends one record to the stream.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError::Io`] if the underlying writer fails.
    pub fn push(&mut self, record: &BranchRecord) -> Result<(), FormatError> {
        TraceWriter::write_record_binary(&mut self.inner, record)?;
        self.records_written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError::Io`] if flushing fails.
    pub fn finish(mut self) -> Result<W, FormatError> {
        self.inner.flush().map_err(FormatError::Io)?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::TraceReader;
    use crate::record::BranchKind;

    fn sample_trace() -> Trace {
        Trace::from_records(
            "sample",
            vec![
                BranchRecord::conditional(0x1000, true).with_gap(3),
                BranchRecord::conditional(0x1010, false)
                    .with_target(0x2000)
                    .with_gap(7),
                BranchRecord::conditional(0x1020, true)
                    .with_kind(BranchKind::Return)
                    .with_gap(1),
            ],
        )
    }

    #[test]
    fn binary_round_trip_preserves_everything() {
        let trace = sample_trace();
        let bytes = TraceWriter::to_binary_bytes(&trace);
        let back = TraceReader::read_binary(&bytes[..]).unwrap();
        assert_eq!(back.name(), trace.name());
        assert_eq!(back.records(), trace.records());
        assert_eq!(back.instruction_count(), trace.instruction_count());
    }

    #[test]
    fn text_round_trip_preserves_everything() {
        let trace = sample_trace();
        let text = TraceWriter::to_text_string(&trace);
        let back = TraceReader::read_text(text.as_bytes()).unwrap();
        assert_eq!(back.name(), trace.name());
        assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn streaming_writer_round_trips() {
        let trace = sample_trace();
        let mut writer = StreamingTraceWriter::new(Vec::new(), "streamed").unwrap();
        for r in trace.iter() {
            writer.push(r).unwrap();
        }
        assert_eq!(writer.records_written(), 3);
        let bytes = writer.finish().unwrap();
        let back = TraceReader::read_binary(&bytes[..]).unwrap();
        assert_eq!(back.name(), "streamed");
        assert_eq!(back.records(), trace.records());
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new("empty");
        let bytes = TraceWriter::to_binary_bytes(&trace);
        let back = TraceReader::read_binary(&bytes[..]).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.name(), "empty");
        let text = TraceWriter::to_text_string(&trace);
        let back = TraceReader::read_text(text.as_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
