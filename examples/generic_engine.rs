//! The generic simulation engine: one execution path for every predictor ×
//! confidence-scheme pair.
//!
//! The paper compares the storage-free TAGE classification against
//! storage-based estimators bolted onto older predictors. With the engine,
//! that whole cross-product is one loop: TAGE runs with its rich observable
//! lookups, every baseline runs through the margin path, and the identical
//! code collects the identical report.
//!
//! Run with: `cargo run --release --example generic_engine`

use tage_confidence_suite::confidence::estimators::{
    ConfidenceEstimator, JrsEstimator, SelfConfidenceEstimator,
};
use tage_confidence_suite::confidence::{
    ConfidenceLevel, EstimatorScheme, TageConfidenceClassifier,
};
use tage_confidence_suite::predictors::{
    BranchPredictor, GehlPredictor, GsharePredictor, MarginPredictor, PerceptronPredictor,
};
use tage_confidence_suite::sim::engine::{ReportObserver, SimEngine};
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig, TagePredictor};
use tage_confidence_suite::traces::suites;

fn main() {
    let trace = suites::cbp1_like()
        .trace("INT-2")
        .expect("trace exists")
        .generate(100_000);
    println!("trace: {trace}");
    println!();
    println!(
        "{:<26} {:<30} {:>9} {:>11} {:>11}",
        "predictor", "confidence scheme", "MKP", "high Pcov", "high MKP"
    );

    // The storage-free TAGE path: rich lookups, 7-class grading.
    let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
    let mut engine = SimEngine::new(
        TagePredictor::new(config.clone()),
        TageConfidenceClassifier::new(&config),
    );
    let mut observer = ReportObserver::default();
    engine.run(&trace, &mut observer);
    print_row(&config.name(), "storage-free-tage", &observer);

    // Every baseline predictor × estimator pair runs through the *same*
    // engine; trait objects keep the fleet heterogeneous.
    let pairs: Vec<(
        Box<dyn BranchPredictor + Send>,
        Box<dyn ConfidenceEstimator>,
    )> = vec![
        (
            Box::new(GsharePredictor::new(14, 14)),
            Box::new(JrsEstimator::classic(12)),
        ),
        (
            Box::new(GsharePredictor::new(14, 14)),
            Box::new(JrsEstimator::enhanced(12)),
        ),
        (
            Box::new(PerceptronPredictor::new(512, 32)),
            Box::new(SelfConfidenceEstimator::new(60)),
        ),
        (
            Box::new(GehlPredictor::new(6, 11, 3, 120)),
            Box::new(SelfConfidenceEstimator::new(24)),
        ),
    ];
    for (predictor, estimator) in pairs {
        let predictor_name = predictor.name();
        let estimator_name = estimator.name();
        let mut engine = SimEngine::new(MarginPredictor(predictor), EstimatorScheme(estimator));
        let mut observer = ReportObserver::default();
        engine.run(&trace, &mut observer);
        print_row(&predictor_name, &estimator_name, &observer);
    }

    println!();
    println!("One engine, one loop: the TAGE path and every baseline share the execution path,");
    println!("so new predictor x estimator x scenario combinations need no new driver code.");
}

fn print_row(predictor: &str, scheme: &str, observer: &ReportObserver) {
    let report = &observer.report;
    println!(
        "{:<26} {:<30} {:>9.1} {:>11.3} {:>11.1}",
        predictor,
        scheme,
        report.mkp(),
        report.level_pcov(ConfidenceLevel::High),
        report.level_mprate_mkp(ConfidenceLevel::High)
    );
}
