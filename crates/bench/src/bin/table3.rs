//! Table 3: the same three-level summary as Table 2, but with the adaptive
//! saturation probability (1/1024 … 1, ×÷2) keeping the high-confidence
//! misprediction rate under 10 MKP.

use tage_bench::{branches_from_args, print_header};
use tage_sim::experiment::{modified_configs, three_level_summary, LevelSummaryRow};
use tage_sim::report::{fraction, mkp, probability, TextTable};
use tage_sim::runner::RunOptions;
use tage_traces::suites;

fn cell(row: &tage_sim::experiment::LevelCell) -> String {
    format!(
        "{}-{} ({})",
        fraction(row.pcov),
        fraction(row.mpcov),
        mkp(row.mprate_mkp)
    )
}

fn render(rows: &[LevelSummaryRow]) {
    let mut table = TextTable::new(vec![
        "config / suite",
        "high conf",
        "medium conf",
        "low conf",
        "mean final p",
    ]);
    for row in rows {
        table.row(vec![
            format!("{} {}", row.config_name, row.suite_name),
            cell(&row.high),
            cell(&row.medium),
            cell(&row.low),
            probability(row.mean_final_probability),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("cell format: Pcov-MPcov (MPrate in MKP); adaptive target: 10 MKP on the high class.");
}

fn main() {
    let branches = branches_from_args();
    print_header(
        "Table 3 — three confidence levels with the adaptive saturation probability",
        branches,
    );
    let mut rows = Vec::new();
    for config in modified_configs() {
        for suite in [suites::cbp1_like(), suites::cbp2_like()] {
            rows.push(three_level_summary(
                &config,
                &suite,
                branches,
                &RunOptions::adaptive(),
            ));
        }
    }
    render(&rows);
}
