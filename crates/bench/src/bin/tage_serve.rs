//! `tage-serve` — the resumable campaign daemon.
//!
//! Serves the campaign service (`tage_bench::service`, see
//! `docs/SERVICE.md`) over a hand-rolled std-only HTTP/1.1 listener:
//!
//! ```text
//! tage-serve [--addr HOST:PORT] [--workers N] [--engine multilane|scalar]
//!            [--store DIR] [--journal DIR]
//! ```
//!
//! Endpoints: `POST /campaigns` (submit a grid), `GET /campaigns/<id>`
//! (incremental status), `GET /campaigns/<id>/report` (final byte-stable
//! report), `GET /metrics`, `GET /healthz`, `POST /shutdown`.
//!
//! The daemon shuts down gracefully on SIGINT/SIGTERM or `POST /shutdown`:
//! it stops accepting work, finishes and persists the running batch, and
//! exits 0. Accepted grids are journaled under `--journal`, finished cells
//! under `--store`, so a restarted daemon resumes every open campaign.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use tage_bench::cli;
use tage_bench::service::{start, ServeOptions};
use tage_sim::engine::default_parallelism;
use tage_sim::EngineKind;

/// Default bind address (loopback only; put a real proxy in front for
/// anything else).
const DEFAULT_ADDR: &str = "127.0.0.1:7421";
/// Default cell-store directory.
const DEFAULT_STORE: &str = ".tage-serve/cells";
/// Default campaign-journal directory.
const DEFAULT_JOURNAL: &str = ".tage-serve/journal";

/// Set by the signal handler; polled by the main loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// POSIX `signal(2)`. The libs forbid unsafe code; this one shim lives
    /// in the binary so the daemon can catch SIGINT/SIGTERM without any
    /// dependency.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SIGNALLED.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

fn parse_options() -> Result<ServeOptions, String> {
    let mut options = ServeOptions {
        addr: DEFAULT_ADDR.to_string(),
        workers: default_parallelism(),
        engine: EngineKind::Multilane,
        store_dir: DEFAULT_STORE.into(),
        journal_dir: DEFAULT_JOURNAL.into(),
        max_body_bytes: tage_bench::service::http::DEFAULT_MAX_BODY_BYTES,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => options.addr = cli::require_value(&mut args, "--addr")?,
            "--workers" => {
                let value = cli::require_value(&mut args, "--workers")?;
                options.workers = cli::parse_count("--workers", &value)?;
            }
            "--engine" => {
                let value = cli::require_value(&mut args, "--engine")?;
                options.engine = match value.as_str() {
                    "multilane" => EngineKind::Multilane,
                    "scalar" => EngineKind::Scalar,
                    other => {
                        return Err(format!(
                            "unknown --engine \"{other}\" (known: multilane, scalar)"
                        ))
                    }
                };
            }
            "--store" => options.store_dir = cli::require_value(&mut args, "--store")?.into(),
            "--journal" => options.journal_dir = cli::require_value(&mut args, "--journal")?.into(),
            other => return Err(format!("unknown argument: {other} (see docs/SERVICE.md)")),
        }
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(options) => options,
        Err(error) => {
            eprintln!("tage-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();
    let handle = match start(options.clone()) {
        Ok(handle) => handle,
        Err(error) => {
            eprintln!("tage-serve: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "tage-serve listening on http://{} ({} workers, store {}, journal {}, {} campaigns rehydrated)",
        handle.addr(),
        options.workers,
        options.store_dir.display(),
        options.journal_dir.display(),
        handle.rehydrated(),
    );
    // Wait for a signal or a POST /shutdown, then drain and exit 0.
    while !SIGNALLED.load(Ordering::SeqCst) && !handle.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("tage-serve: shutting down (flushing the running batch)");
    handle.request_shutdown();
    handle.join();
    println!("tage-serve: bye");
    ExitCode::SUCCESS
}
