//! Umbrella crate for the *Storage Free Confidence Estimation for the TAGE
//! branch predictor* (Seznec, HPCA 2011) reproduction suite.
//!
//! This crate simply re-exports the workspace members under stable module
//! names so that the examples and the cross-crate integration tests in
//! `tests/` can address the whole system through a single dependency:
//!
//! - [`traces`] — branch trace model, IO and synthetic workload suites,
//! - [`predictors`] — baseline predictors (bimodal, gshare, perceptron, GEHL),
//! - [`tage`] — the TAGE predictor and its counter-update automatons,
//! - [`confidence`] — the storage-free confidence classifier, metrics,
//!   adaptive control and storage-based baseline estimators,
//! - [`sim`] — the simulation harness, experiment definitions and the
//!   fetch-gating / SMT applications.
//!
//! # Example
//!
//! ```
//! use tage_confidence_suite::{tage::TagePredictor, tage::TageConfig};
//!
//! let mut predictor = TagePredictor::new(TageConfig::small());
//! let prediction = predictor.predict(0x4000_1234);
//! predictor.update(0x4000_1234, true, &prediction);
//! ```

pub use tage;
pub use tage_confidence as confidence;
pub use tage_predictors as predictors;
pub use tage_sim as sim;
pub use tage_traces as traces;
