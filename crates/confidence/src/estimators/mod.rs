//! Storage-based baseline confidence estimators from the prior art.
//!
//! The paper's point is that TAGE needs *none* of these — confidence falls
//! out of observing the predictor. To quantify that claim the workspace also
//! implements the storage-based estimators the related-work section
//! discusses, so the benches can compare them head-to-head:
//!
//! * [`JrsEstimator`] — the resetting-counter estimator of Jacobsen,
//!   Rotenberg and Smith (MICRO 1996), a gshare-indexed table of saturating
//!   counters reset on each misprediction, optionally enhanced with the
//!   predicted direction in the index as proposed by Grunwald et al.
//!   (ISCA 1998);
//! * [`SelfConfidenceEstimator`] — the storage-free self-confidence scheme
//!   used with neural predictors (perceptron / O-GEHL): a prediction is high
//!   confidence when its margin (absolute prediction sum) clears a
//!   threshold.

mod jrs;
mod self_confidence;
mod spec;

pub use jrs::{JrsEstimator, JrsIndexing};
pub use self_confidence::SelfConfidenceEstimator;
pub use spec::EstimatorSpec;

use tage_predictors::Prediction;

use crate::class::ConfidenceLevel;

/// A confidence estimator attached to some branch predictor.
///
/// The protocol mirrors the predictor protocol: `estimate` is called with
/// the prediction the predictor produced (before resolution), `update` with
/// the resolved outcome afterwards.
///
/// Any estimator can be driven through the generic simulation engine by
/// wrapping it in [`crate::scheme::EstimatorScheme`].
pub trait ConfidenceEstimator {
    /// Estimates the confidence of `prediction` for the branch at `pc`.
    fn estimate(&mut self, pc: u64, prediction: &Prediction) -> ConfidenceLevel;

    /// Feeds the resolved outcome back to the estimator.
    fn update(&mut self, pc: u64, prediction: &Prediction, taken: bool);

    /// Extra storage the estimator requires, in bits (zero for storage-free
    /// estimators).
    fn storage_bits(&self) -> u64;

    /// A short human-readable name for reports.
    fn name(&self) -> String;

    /// Clears all dynamic state (counter tables, histories) while keeping
    /// the configuration, so the estimator starts a new trace cold.
    fn reset(&mut self);
}

impl<E: ConfidenceEstimator + ?Sized> ConfidenceEstimator for &mut E {
    fn estimate(&mut self, pc: u64, prediction: &Prediction) -> ConfidenceLevel {
        (**self).estimate(pc, prediction)
    }

    fn update(&mut self, pc: u64, prediction: &Prediction, taken: bool) {
        (**self).update(pc, prediction, taken)
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

impl<E: ConfidenceEstimator + ?Sized> ConfidenceEstimator for Box<E> {
    fn estimate(&mut self, pc: u64, prediction: &Prediction) -> ConfidenceLevel {
        (**self).estimate(pc, prediction)
    }

    fn update(&mut self, pc: u64, prediction: &Prediction, taken: bool) {
        (**self).update(pc, prediction, taken)
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_e: &dyn ConfidenceEstimator) {}
    }
}
