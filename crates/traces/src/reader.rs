//! Reading traces from the binary or text format.
//!
//! [`TraceReader`] materializes a whole [`Trace`] in memory; for out-of-core
//! consumption of large binary traces use
//! [`crate::source::BinaryFileSource`], which shares the header parser
//! ([`read_binary_header`]) and the record decoder
//! ([`crate::format::decode_record`]) with this module but never holds more
//! than one fixed-size chunk of records.

use std::io::{BufRead, BufReader, Read};

use crate::format::{decode_record, kind_from_letter, FormatError, MAGIC, RECORD_BYTES, VERSION};
use crate::record::BranchRecord;
use crate::trace::Trace;

/// The parsed fixed header of a binary trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinaryHeader {
    /// The trace name carried in the header.
    pub name: String,
    /// Declared record count; `None` for traces written by the streaming
    /// writer (sentinel count), which are read until end-of-file.
    pub declared_records: Option<u64>,
    /// Byte offset of the first record (i.e. the encoded header size).
    pub data_offset: u64,
}

/// Reads and validates the binary-trace header (magic, version, name and
/// record count) from the start of `reader`.
///
/// # Errors
///
/// Returns a [`FormatError`] if the magic bytes or version do not match, or
/// the underlying reader fails.
pub fn read_binary_header<R: Read>(reader: &mut R) -> Result<BinaryHeader, FormatError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(FormatError::BadMagic(magic));
    }
    let version = read_u32(reader)?;
    if version != VERSION {
        return Err(FormatError::UnsupportedVersion(version));
    }
    let name_len = read_u32(reader)? as usize;
    let mut name_bytes = vec![0u8; name_len];
    reader.read_exact(&mut name_bytes)?;
    let name = String::from_utf8_lossy(&name_bytes).into_owned();
    let count = read_u64(reader)?;
    Ok(BinaryHeader {
        name,
        declared_records: (count != u64::MAX).then_some(count),
        data_offset: (4 + 4 + 4 + name_len + 8) as u64,
    })
}

/// Reads branch traces written by [`crate::writer::TraceWriter`].
///
/// Generic reader functions take `R: Read` by value; pass `&mut reader` if
/// you need to keep using the reader afterwards.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use tage_traces::{reader::TraceReader, writer::TraceWriter, BranchRecord, Trace};
///
/// let trace = Trace::from_records("t", vec![BranchRecord::conditional(0x10, false)]);
/// let text = TraceWriter::to_text_string(&trace);
/// let back = TraceReader::read_text(text.as_bytes())?;
/// assert_eq!(back.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceReader;

impl TraceReader {
    /// Reads a binary-format trace.
    ///
    /// Traces written by the streaming writer (unknown record count) are read
    /// until end-of-file.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] if the stream is not a valid binary trace or
    /// the underlying reader fails. Corrupt or truncated records report the
    /// byte offset at which they sit.
    pub fn read_binary<R: Read>(reader: R) -> Result<Trace, FormatError> {
        let mut reader = BufReader::new(reader);
        let header = read_binary_header(&mut reader)?;
        let streaming = header.declared_records.is_none();
        let count = header.declared_records.unwrap_or(0);

        let capacity = if streaming { 1024 } else { count as usize };
        let mut trace = Trace::with_capacity(header.name, capacity.min(1 << 24));
        let mut buf = [0u8; RECORD_BYTES];
        let mut read_so_far = 0u64;
        loop {
            if !streaming && read_so_far == count {
                break;
            }
            let offset = header.data_offset + read_so_far * RECORD_BYTES as u64;
            match read_record(&mut reader, &mut buf, offset)? {
                Some(record) => {
                    trace.push(record);
                    read_so_far += 1;
                }
                None if streaming => break,
                None => return Err(FormatError::TruncatedRecord { offset }),
            }
        }
        Ok(trace)
    }

    /// Reads a text-format trace.
    ///
    /// # Errors
    ///
    /// Returns a [`FormatError`] if a line is malformed or the underlying
    /// reader fails.
    pub fn read_text<R: Read>(reader: R) -> Result<Trace, FormatError> {
        let reader = BufReader::new(reader);
        let mut trace = Trace::new("unnamed");
        for (idx, line) in reader.lines().enumerate() {
            let line_no = idx + 1;
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('!') {
                let mut parts = rest.split_whitespace();
                if parts.next() == Some("name") {
                    let name: Vec<&str> = parts.collect();
                    trace.set_name(name.join(" "));
                }
                continue;
            }
            trace.push(parse_text_line(line, line_no)?);
        }
        Ok(trace)
    }
}

fn parse_text_line(line: &str, line_no: usize) -> Result<BranchRecord, FormatError> {
    let malformed = |reason: &str| FormatError::MalformedLine {
        line: line_no,
        reason: reason.to_string(),
    };
    let mut parts = line.split_whitespace();
    let pc = parts.next().ok_or_else(|| malformed("missing pc"))?;
    let pc = u64::from_str_radix(pc, 16).map_err(|_| malformed("pc is not hex"))?;
    let kind = parts.next().ok_or_else(|| malformed("missing kind"))?;
    let kind_char = kind.chars().next().ok_or_else(|| malformed("empty kind"))?;
    let kind = kind_from_letter(kind_char)?;
    let outcome = parts.next().ok_or_else(|| malformed("missing outcome"))?;
    let taken = match outcome {
        "T" => true,
        "N" => false,
        _ => return Err(malformed("outcome must be T or N")),
    };
    let target = parts.next().ok_or_else(|| malformed("missing target"))?;
    let target = u64::from_str_radix(target, 16).map_err(|_| malformed("target is not hex"))?;
    let gap = parts.next().ok_or_else(|| malformed("missing gap"))?;
    let gap: u32 = gap
        .parse()
        .map_err(|_| malformed("gap is not an integer"))?;
    if parts.next().is_some() {
        return Err(malformed("trailing tokens"));
    }
    Ok(BranchRecord {
        pc,
        target,
        taken,
        kind,
        gap,
    })
}

fn read_record<R: Read>(
    reader: &mut R,
    buf: &mut [u8; RECORD_BYTES],
    offset: u64,
) -> Result<Option<BranchRecord>, FormatError> {
    match read_exact_or_eof(reader, buf, offset)? {
        false => Ok(None),
        true => decode_record(buf, offset).map(Some),
    }
}

/// Reads exactly `buf.len()` bytes, returning `Ok(false)` on a clean EOF at a
/// record boundary and an error on EOF in the middle of a record. `offset` is
/// the stream offset of `buf`'s first byte, reported on truncation.
fn read_exact_or_eof<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    offset: u64,
) -> Result<bool, FormatError> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Ok(false)
            } else {
                Err(FormatError::TruncatedRecord { offset })
            };
        }
        filled += n;
    }
    Ok(true)
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, FormatError> {
    let mut b = [0u8; 4];
    reader.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, FormatError> {
    let mut b = [0u8; 8];
    reader.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::TraceWriter;

    #[test]
    fn rejects_bad_magic() {
        let bytes = b"NOPE\x01\x00\x00\x00";
        let err = TraceReader::read_binary(&bytes[..]).unwrap_err();
        assert!(matches!(err, FormatError::BadMagic(_)));
    }

    #[test]
    fn rejects_unsupported_version() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        let err = TraceReader::read_binary(&bytes[..]).unwrap_err();
        assert!(matches!(err, FormatError::UnsupportedVersion(99)));
    }

    #[test]
    fn rejects_truncated_record_with_its_offset() {
        let trace = Trace::from_records(
            "t",
            vec![
                BranchRecord::conditional(1, true),
                BranchRecord::conditional(2, false),
            ],
        );
        let mut bytes = TraceWriter::to_binary_bytes(&trace);
        bytes.truncate(bytes.len() - 5);
        let err = TraceReader::read_binary(&bytes[..]).unwrap_err();
        // The second record starts one full record past the header.
        let header_len = (4 + 4 + 4 + "t".len() + 8) as u64;
        let expected = header_len + RECORD_BYTES as u64;
        assert!(
            matches!(err, FormatError::TruncatedRecord { offset } if offset == expected),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn reports_corrupt_kind_byte_offset() {
        let trace = Trace::from_records(
            "t",
            vec![
                BranchRecord::conditional(1, true),
                BranchRecord::conditional(2, false),
            ],
        );
        let mut bytes = TraceWriter::to_binary_bytes(&trace);
        let header_len = 4 + 4 + 4 + "t".len() + 8;
        // Corrupt the flags byte of the second record.
        let corrupt_at = header_len + RECORD_BYTES + 16;
        bytes[corrupt_at] = 0x55;
        let err = TraceReader::read_binary(&bytes[..]).unwrap_err();
        let record_offset = (header_len + RECORD_BYTES) as u64;
        assert!(
            matches!(
                err,
                FormatError::InvalidKind { byte: 0x55, offset } if offset == record_offset
            ),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn header_parses_streaming_and_counted_traces() {
        let trace = Trace::from_records("abc", vec![BranchRecord::conditional(1, true)]);
        let bytes = TraceWriter::to_binary_bytes(&trace);
        let header = read_binary_header(&mut &bytes[..]).unwrap();
        assert_eq!(header.name, "abc");
        assert_eq!(header.declared_records, Some(1));
        assert_eq!(header.data_offset, 4 + 4 + 4 + 3 + 8);

        let mut writer = crate::writer::StreamingTraceWriter::new(Vec::new(), "s").unwrap();
        writer.push(&BranchRecord::conditional(1, true)).unwrap();
        let bytes = writer.finish().unwrap();
        let header = read_binary_header(&mut &bytes[..]).unwrap();
        assert_eq!(header.declared_records, None);
    }

    #[test]
    fn text_parser_accepts_comments_blank_lines_and_name() {
        let text = "# comment\n\n! name my trace\n1000 C T 2000 5\nffff J N 0 0\n";
        let trace = TraceReader::read_text(text.as_bytes()).unwrap();
        assert_eq!(trace.name(), "my trace");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.records()[0].pc, 0x1000);
        assert!(trace.records()[0].taken);
        assert_eq!(trace.records()[1].pc, 0xffff);
        assert!(!trace.records()[1].kind.is_conditional());
    }

    #[test]
    fn text_parser_rejects_malformed_lines() {
        for bad in [
            "zzzz C T 0 0",      // pc not hex
            "10 X T 0 0",        // bad kind
            "10 C Q 0 0",        // bad outcome
            "10 C T zz 0",       // target not hex
            "10 C T 0 notanint", // bad gap
            "10 C T 0 0 extra",  // trailing token
            "10 C T 0",          // missing gap
        ] {
            let err = TraceReader::read_text(bad.as_bytes());
            assert!(err.is_err(), "line {bad:?} should be rejected");
        }
    }

    #[test]
    fn binary_round_trip_large_trace() {
        let trace = Trace::from_records(
            "big",
            (0..10_000u64)
                .map(|i| BranchRecord::conditional(0x1000 + i * 4, i % 3 == 0).with_gap(2)),
        );
        let bytes = TraceWriter::to_binary_bytes(&trace);
        let back = TraceReader::read_binary(&bytes[..]).unwrap();
        assert_eq!(back.len(), trace.len());
        assert_eq!(back.records()[9_999], trace.records()[9_999]);
    }
}
