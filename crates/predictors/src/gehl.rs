//! A GEHL-style predictor (GEometric History Length).

use tage_traces::snapshot::{fnv1a64, SnapshotError, SnapshotReader, SnapshotWriter};

use crate::counter::SignedCounter;
use crate::history::HistoryRegister;
use crate::predictor::{BranchPredictor, Prediction};
use crate::snapshot_util::{read_history, write_history};

/// A GEHL-style predictor: several tables of signed counters indexed with
/// hashes of the PC and geometrically increasing history lengths; the
/// prediction is the sign of the sum of the selected counters.
///
/// The O-GEHL predictor's *self-confidence* — comparing the absolute value
/// of the sum against the update threshold — is the storage-free baseline
/// the paper cites for pre-TAGE predictors (good PVN, poor SPEC). That
/// estimator is implemented in `tage-confidence::estimators` on top of the
/// margin this predictor reports.
///
/// # Example
///
/// ```
/// use tage_predictors::{BranchPredictor, GehlPredictor};
///
/// let mut p = GehlPredictor::new(6, 10, 3, 120);
/// let pred = p.predict(0xabc0);
/// p.update(0xabc0, true, &pred);
/// ```
#[derive(Debug, Clone)]
pub struct GehlPredictor {
    tables: Vec<Vec<SignedCounter>>,
    index_bits: u32,
    history_lengths: Vec<usize>,
    history: HistoryRegister,
    /// Update threshold θ: train on a correct prediction whose |sum| ≤ θ.
    threshold: i32,
    counter_bits: u8,
}

impl GehlPredictor {
    /// Creates a GEHL predictor.
    ///
    /// * `num_tables` — number of component tables (including the L(0) = 0
    ///   bias table),
    /// * `index_bits` — each table has `2^index_bits` counters,
    /// * `min_history` — history length of the second table,
    /// * `max_history` — history length of the last table.
    ///
    /// # Panics
    ///
    /// Panics if `num_tables < 2`, `index_bits` is not in `1..=28`, or the
    /// history lengths are not a valid increasing range.
    pub fn new(num_tables: usize, index_bits: u32, min_history: usize, max_history: usize) -> Self {
        assert!(num_tables >= 2, "GEHL needs at least two tables");
        assert!(
            (1..=28).contains(&index_bits),
            "index_bits must be in 1..=28"
        );
        assert!(
            min_history >= 1 && max_history >= min_history,
            "history lengths must satisfy 1 <= min <= max"
        );
        let history_lengths = geometric_series(num_tables, min_history, max_history);
        let history = HistoryRegister::new(max_history.max(1));
        let threshold = num_tables as i32 * 2;
        GehlPredictor {
            tables: vec![vec![SignedCounter::new(4); 1 << index_bits]; num_tables],
            index_bits,
            history_lengths,
            history,
            threshold,
            counter_bits: 4,
        }
    }

    /// Creates a GEHL predictor from its declarative spec.
    ///
    /// # Panics
    ///
    /// Panics when the spec violates the constructor's parameter ranges.
    pub fn from_spec(spec: &crate::spec::GehlSpec) -> Self {
        Self::new(
            spec.tables,
            spec.index_bits,
            spec.min_history,
            spec.max_history,
        )
    }

    /// The geometric series of history lengths (first entry is 0: the bias
    /// table).
    pub fn history_lengths(&self) -> &[usize] {
        &self.history_lengths
    }

    /// The update threshold θ.
    pub fn threshold(&self) -> i32 {
        self.threshold
    }

    fn index(&self, table: usize, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        let length = self.history_lengths[table];
        let folded = if length == 0 {
            0
        } else {
            self.history.fold(length, self.index_bits as usize)
        };
        (((pc >> 2) ^ folded ^ (pc >> (3 + table as u64))) & mask) as usize
    }

    fn spec_string(&self) -> String {
        format!(
            "gehl|num_tables={}|index_bits={}|history_lengths={:?}|counter_bits={}",
            self.tables.len(),
            self.index_bits,
            self.history_lengths,
            self.counter_bits
        )
    }

    fn sum(&self, pc: u64) -> i32 {
        (0..self.tables.len())
            .map(|t| {
                let idx = self.index(t, pc);
                // Centered read: 2*ctr + 1 as in the original GEHL papers.
                2 * i32::from(self.tables[t][idx].value()) + 1
            })
            .sum()
    }
}

/// Computes `count` history lengths forming a geometric series from 0,
/// `min`, ..., `max` (the first table uses no history).
fn geometric_series(count: usize, min: usize, max: usize) -> Vec<usize> {
    let mut lengths = Vec::with_capacity(count);
    lengths.push(0);
    let steps = count - 1;
    if steps == 1 {
        lengths.push(max);
        return lengths;
    }
    let ratio = (max as f64 / min as f64).powf(1.0 / (steps as f64 - 1.0));
    for i in 0..steps {
        let l = (min as f64 * ratio.powi(i as i32) + 0.5) as usize;
        lengths.push(l.max(1));
    }
    // Force the exact endpoints.
    let last = lengths.len() - 1;
    lengths[1] = min;
    lengths[last] = max;
    lengths
}

impl BranchPredictor for GehlPredictor {
    fn predict(&mut self, pc: u64) -> Prediction {
        let sum = self.sum(pc);
        Prediction::new(sum >= 0, i64::from(sum.abs()))
    }

    fn update(&mut self, pc: u64, taken: bool, prediction: &Prediction) {
        let _ = prediction;
        let sum = self.sum(pc);
        let mispredicted = (sum >= 0) != taken;
        if mispredicted || sum.abs() <= self.threshold {
            for t in 0..self.tables.len() {
                let idx = self.index(t, pc);
                self.tables[t][idx].update(taken);
            }
        }
        self.history.push(taken);
    }

    fn storage_bits(&self) -> u64 {
        self.tables.len() as u64 * (1u64 << self.index_bits) * u64::from(self.counter_bits)
            + self.history.capacity() as u64
    }

    fn name(&self) -> String {
        format!(
            "gehl-{}x{}k",
            self.tables.len(),
            (1usize << self.index_bits) / 1024
        )
    }

    fn reset(&mut self) {
        // `geometric_series` pins the endpoints, so the stored lengths
        // reconstruct the constructor arguments exactly.
        let min = self.history_lengths[1];
        let max = *self.history_lengths.last().expect("at least two tables");
        *self = GehlPredictor::new(self.tables.len(), self.index_bits, min, max);
    }

    fn clone_fresh(&self) -> Box<dyn BranchPredictor + Send> {
        let mut fresh = self.clone();
        fresh.reset();
        Box::new(fresh)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(self.spec_digest());
        w.begin_section();
        for table in &self.tables {
            for ctr in table {
                w.write_i8(ctr.value());
            }
        }
        w.end_section();
        w.begin_section();
        write_history(&mut w, &self.history);
        w.end_section();
        w.finish()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::new(bytes, self.spec_digest())?;
        r.begin_section()?;
        let per_table = 1usize << self.index_bits;
        let mut values = Vec::with_capacity(self.tables.len() * per_table);
        for _ in 0..self.tables.len() * per_table {
            values.push(r.read_i8()?);
        }
        r.end_section()?;
        r.begin_section()?;
        let words = read_history(&mut r, self.history.words().len())?;
        r.end_section()?;
        r.finish()?;
        let mut flat = values.into_iter();
        for table in &mut self.tables {
            for ctr in table.iter_mut() {
                ctr.set(flat.next().expect("sized above"));
            }
        }
        self.history.load_words(&words);
        Ok(())
    }

    fn spec_digest(&self) -> u64 {
        fnv1a64(self.spec_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_series_endpoints_and_monotonicity() {
        let s = geometric_series(6, 3, 100);
        assert_eq!(s[0], 0);
        assert_eq!(s[1], 3);
        assert_eq!(*s.last().unwrap(), 100);
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "{s:?}");
        let two = geometric_series(2, 5, 50);
        assert_eq!(two, vec![0, 50]);
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = GehlPredictor::new(5, 8, 2, 40);
        for _ in 0..200 {
            let pred = p.predict(0x1000);
            p.update(0x1000, true, &pred);
        }
        assert!(p.predict(0x1000).taken);
    }

    #[test]
    fn learns_periodic_pattern_with_history() {
        let mut p = GehlPredictor::new(6, 10, 2, 60);
        let pattern = [true, true, false, true, false, false];
        let mut wrong_late = 0;
        for i in 0..6000 {
            let taken = pattern[i % pattern.len()];
            let pred = p.predict(0x2000);
            if i > 4000 && pred.taken != taken {
                wrong_late += 1;
            }
            p.update(0x2000, taken, &pred);
        }
        assert!(wrong_late < 200, "wrong_late = {wrong_late}");
    }

    #[test]
    fn margin_reflects_training_confidence() {
        let mut p = GehlPredictor::new(5, 8, 2, 40);
        let early = p.predict(0x42).margin;
        for _ in 0..500 {
            let pred = p.predict(0x42);
            p.update(0x42, true, &pred);
        }
        assert!(p.predict(0x42).margin > early);
    }

    #[test]
    #[should_panic(expected = "GEHL needs at least two tables")]
    fn rejects_single_table() {
        GehlPredictor::new(1, 8, 2, 10);
    }

    #[test]
    fn storage_and_name() {
        let p = GehlPredictor::new(4, 8, 2, 30);
        assert_eq!(p.storage_bits(), 4 * 256 * 4 + 30);
        assert!(p.name().contains("gehl"));
        assert_eq!(p.history_lengths().len(), 4);
        assert!(p.threshold() > 0);
    }
}
