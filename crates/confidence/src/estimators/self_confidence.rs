//! Self-confidence estimation for margin-producing predictors.

use core::fmt;

use tage_predictors::Prediction;

use crate::class::ConfidenceLevel;
use crate::estimators::ConfidenceEstimator;

/// Storage-free self-confidence estimation: a prediction is high confidence
/// when its margin (absolute prediction sum for neural predictors, counter
/// magnitude for counter-based predictors) is at or above a threshold.
///
/// This is the scheme used with the perceptron predictor (Jiménez & Lin) and
/// the O-GEHL predictor; the paper notes it achieves a good PVN (about one
/// third of low-confidence predictions are mispredicted) but a limited SPEC
/// (only about half of the mispredictions are flagged low confidence).
///
/// An optional second threshold splits the high side further into medium and
/// high, mirroring the "strongly / weakly low confident" refinement of
/// Akkary et al.
///
/// # Example
///
/// ```
/// use tage_confidence::estimators::{ConfidenceEstimator, SelfConfidenceEstimator};
/// use tage_confidence::ConfidenceLevel;
/// use tage_predictors::Prediction;
///
/// let mut estimator = SelfConfidenceEstimator::new(20);
/// assert_eq!(
///     estimator.estimate(0x10, &Prediction::new(true, 35)),
///     ConfidenceLevel::High
/// );
/// assert_eq!(
///     estimator.estimate(0x10, &Prediction::new(true, 5)),
///     ConfidenceLevel::Low
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfConfidenceEstimator {
    high_threshold: i64,
    medium_threshold: Option<i64>,
}

impl SelfConfidenceEstimator {
    /// Creates a binary (high/low) self-confidence estimator.
    pub fn new(high_threshold: i64) -> Self {
        SelfConfidenceEstimator {
            high_threshold,
            medium_threshold: None,
        }
    }

    /// Creates a three-level estimator: margins at or above
    /// `high_threshold` are high confidence, margins at or above
    /// `medium_threshold` are medium, the rest are low.
    ///
    /// # Panics
    ///
    /// Panics if `medium_threshold > high_threshold`.
    pub fn with_medium(high_threshold: i64, medium_threshold: i64) -> Self {
        assert!(
            medium_threshold <= high_threshold,
            "medium threshold must not exceed the high threshold"
        );
        SelfConfidenceEstimator {
            high_threshold,
            medium_threshold: Some(medium_threshold),
        }
    }

    /// The high-confidence threshold.
    pub fn high_threshold(&self) -> i64 {
        self.high_threshold
    }
}

impl ConfidenceEstimator for SelfConfidenceEstimator {
    fn estimate(&mut self, _pc: u64, prediction: &Prediction) -> ConfidenceLevel {
        if prediction.margin >= self.high_threshold {
            ConfidenceLevel::High
        } else if let Some(medium) = self.medium_threshold {
            if prediction.margin >= medium {
                ConfidenceLevel::Medium
            } else {
                ConfidenceLevel::Low
            }
        } else {
            ConfidenceLevel::Low
        }
    }

    fn update(&mut self, _pc: u64, _prediction: &Prediction, _taken: bool) {
        // Self-confidence keeps no state.
    }

    fn storage_bits(&self) -> u64 {
        0
    }

    fn name(&self) -> String {
        match self.medium_threshold {
            Some(m) => format!(
                "self-confidence (≥{} high, ≥{m} medium)",
                self.high_threshold
            ),
            None => format!("self-confidence (≥{})", self.high_threshold),
        }
    }

    fn reset(&mut self) {
        // Self-confidence keeps no state.
    }
}

impl fmt::Display for SelfConfidenceEstimator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&ConfidenceEstimator::name(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_estimator_thresholds_margin() {
        let mut e = SelfConfidenceEstimator::new(10);
        assert_eq!(
            e.estimate(0, &Prediction::new(true, 10)),
            ConfidenceLevel::High
        );
        assert_eq!(
            e.estimate(0, &Prediction::new(true, 9)),
            ConfidenceLevel::Low
        );
        assert_eq!(
            e.estimate(0, &Prediction::new(false, 0)),
            ConfidenceLevel::Low
        );
    }

    #[test]
    fn three_level_estimator_adds_medium_band() {
        let mut e = SelfConfidenceEstimator::with_medium(20, 8);
        assert_eq!(
            e.estimate(0, &Prediction::new(true, 25)),
            ConfidenceLevel::High
        );
        assert_eq!(
            e.estimate(0, &Prediction::new(true, 12)),
            ConfidenceLevel::Medium
        );
        assert_eq!(
            e.estimate(0, &Prediction::new(true, 3)),
            ConfidenceLevel::Low
        );
    }

    #[test]
    #[should_panic(expected = "medium threshold must not exceed the high threshold")]
    fn inverted_thresholds_rejected() {
        SelfConfidenceEstimator::with_medium(5, 10);
    }

    #[test]
    fn estimator_is_storage_free_and_stateless() {
        let mut e = SelfConfidenceEstimator::new(10);
        assert_eq!(e.storage_bits(), 0);
        let before = e;
        e.update(0x10, &Prediction::new(true, 50), false);
        assert_eq!(e, before);
    }

    #[test]
    fn name_and_display_mention_thresholds() {
        let e = SelfConfidenceEstimator::with_medium(20, 5);
        assert!(ConfidenceEstimator::name(&e).contains("20"));
        assert!(format!("{e}").contains("medium"));
        assert_eq!(e.high_threshold(), 20);
    }
}
