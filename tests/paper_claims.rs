//! Shape-level checks of the paper's headline claims, run on the synthetic
//! workload suites.
//!
//! These tests assert *orderings and ratios* rather than the paper's absolute
//! numbers, because the substrate workloads are synthetic stand-ins for the
//! CBP trace sets (see EXPERIMENTS.md for the quantitative comparison).

use tage_confidence_suite::confidence::{ConfidenceLevel, PredictionClass};
use tage_confidence_suite::sim::experiment::{
    probability_sweep, three_level_summary, window_ablation,
};
use tage_confidence_suite::sim::runner::{run_trace, RunOptions};
use tage_confidence_suite::sim::suite::run_suite;
use tage_confidence_suite::tage::{CounterAutomaton, TageConfig};
use tage_confidence_suite::traces::{suites, Suite};

const N: usize = 50_000;

/// A 6-trace cross-section of the CBP-1-like suite (one per category plus
/// the hard outliers), to keep the integration tests fast.
fn cross_section() -> Suite {
    let full = suites::cbp1_like();
    Suite::new(
        "cross-section",
        ["FP-2", "INT-1", "INT-3", "MM-3", "MM-5", "SERV-4"]
            .iter()
            .map(|name| full.trace(name).unwrap().clone())
            .collect(),
    )
}

fn modified(config: TageConfig) -> TageConfig {
    config.with_automaton(CounterAutomaton::paper_default())
}

#[test]
fn claim_weak_tagged_counters_are_close_to_coin_flips() {
    // Section 5.2: the Wtag class mispredicts well above 30 %.
    let result = run_suite(
        &TageConfig::small(),
        &cross_section(),
        N,
        &RunOptions::default(),
    );
    let wtag = result.aggregate.mprate_mkp(PredictionClass::Wtag);
    assert!(wtag > 200.0, "Wtag rate {wtag} MKP should be above 200 MKP");
}

#[test]
fn claim_tagged_class_rates_decrease_with_counter_magnitude() {
    // Section 5.2: Wtag ≥ NWtag ≥ NStag ≫ Stag.
    let result = run_suite(
        &modified(TageConfig::small()),
        &cross_section(),
        N,
        &RunOptions::default(),
    );
    let wtag = result.aggregate.mprate_mkp(PredictionClass::Wtag);
    let nwtag = result.aggregate.mprate_mkp(PredictionClass::NWtag);
    let nstag = result.aggregate.mprate_mkp(PredictionClass::NStag);
    let stag = result.aggregate.mprate_mkp(PredictionClass::Stag);
    assert!(wtag > nstag, "Wtag {wtag} should exceed NStag {nstag}");
    assert!(nwtag > nstag, "NWtag {nwtag} should exceed NStag {nstag}");
    assert!(
        nstag > 2.0 * stag,
        "NStag {nstag} should be well above Stag {stag} with the modified automaton"
    );
}

#[test]
fn claim_bimodal_subclasses_are_ordered() {
    // Section 5.1: low-conf-bim ≫ medium-conf-bim ≥ high-conf-bim.
    let result = run_suite(
        &TageConfig::small(),
        &cross_section(),
        N,
        &RunOptions::default(),
    );
    let low = result.aggregate.mprate_mkp(PredictionClass::LowConfBim);
    let medium = result.aggregate.mprate_mkp(PredictionClass::MediumConfBim);
    let high = result.aggregate.mprate_mkp(PredictionClass::HighConfBim);
    assert!(
        low > medium,
        "low-conf-bim {low} should exceed medium-conf-bim {medium}"
    );
    assert!(
        medium > high,
        "medium-conf-bim {medium} should exceed high-conf-bim {high}"
    );
    assert!(
        low > 150.0,
        "low-conf-bim should be in the coin-flip range, got {low}"
    );
}

#[test]
fn claim_three_levels_have_very_different_rates() {
    // Section 6.1 / Table 2 structure.
    let row = three_level_summary(
        &modified(TageConfig::medium()),
        &cross_section(),
        N,
        &RunOptions::default(),
    );
    assert!(
        row.high.pcov > row.low.pcov,
        "high confidence must cover more predictions than low"
    );
    assert!(row.low.mprate_mkp > 3.0 * row.high.mprate_mkp);
    assert!(row.medium.mprate_mkp > row.high.mprate_mkp);
    assert!(row.low.mprate_mkp > row.medium.mprate_mkp);
    // Low + medium confidence together cover the bulk of the mispredictions.
    assert!(row.low.mpcov + row.medium.mpcov > 0.6);
}

#[test]
fn claim_modified_automaton_costs_little_accuracy() {
    // Section 6: "less than 0.02 misp/KI" on the real traces; we allow a
    // slightly looser bound on the shorter synthetic runs.
    let suite = cross_section();
    for config in [TageConfig::small(), TageConfig::large()] {
        let standard = run_suite(&config, &suite, N, &RunOptions::default());
        let probabilistic = run_suite(&modified(config.clone()), &suite, N, &RunOptions::default());
        let cost = probabilistic.mean_mpki() - standard.mean_mpki();
        assert!(
            cost.abs() < 0.2,
            "{}: modified automaton cost {cost} MPKI is too large",
            config.name()
        );
    }
}

#[test]
fn claim_probability_trades_coverage_for_purity() {
    // Section 6.2: 1/16 grows the high-confidence class but raises its rate
    // relative to 1/128.
    let rows = probability_sweep(&TageConfig::small(), &cross_section(), N, &[4, 7]);
    let p16 = &rows[0];
    let p128 = &rows[1];
    assert!(
        p16.high_pcov >= p128.high_pcov,
        "1/16 should cover at least as much as 1/128"
    );
    assert!(
        p16.high_mprate_mkp >= p128.high_mprate_mkp,
        "1/16 ({}) should have a rate at least as high as 1/128 ({})",
        p16.high_mprate_mkp,
        p128.high_mprate_mkp
    );
}

#[test]
fn claim_larger_predictors_shrink_the_bim_miss_volume_on_capacity_bound_traces() {
    // Section 5.1 attributes the medium/low-confidence bimodal mispredictions
    // to warming and *capacity*: on the capacity-bound (server-like) traces a
    // larger predictor absorbs them, so the misprediction volume charged to
    // the BIM classes shrinks. (On the synthetic small-footprint traces the
    // effect does not fully materialise — see EXPERIMENTS.md — so this claim
    // is checked on the server category where the paper's mechanism applies.)
    let full = suites::cbp1_like();
    let servers = Suite::new(
        "servers",
        ["SERV-1", "SERV-2", "SERV-3", "SERV-4", "SERV-5"]
            .iter()
            .map(|name| full.trace(name).unwrap().clone())
            .collect(),
    );
    let small = run_suite(&TageConfig::small(), &servers, N, &RunOptions::default());
    let large = run_suite(&TageConfig::large(), &servers, N, &RunOptions::default());
    let bim_rate = |result: &tage_confidence_suite::sim::SuiteRunResult| {
        let classes = [
            PredictionClass::HighConfBim,
            PredictionClass::MediumConfBim,
            PredictionClass::LowConfBim,
        ];
        let predictions: u64 = classes
            .iter()
            .map(|&c| result.aggregate.class(c).predictions)
            .sum();
        let misses: u64 = classes
            .iter()
            .map(|&c| result.aggregate.class(c).mispredictions)
            .sum();
        misses as f64 * 1000.0 / predictions.max(1) as f64
    };
    let small_rate = bim_rate(&small);
    let large_rate = bim_rate(&large);
    assert!(
        large_rate <= small_rate + 5.0,
        "the BIM-class misprediction rate should not get worse with predictor size on server traces ({small_rate} -> {large_rate} MKP)"
    );
    // The overall accuracy of the large predictor is also better on the
    // capacity-bound traces.
    assert!(large.mean_mpki() < small.mean_mpki());
}

#[test]
fn claim_accuracy_improves_with_predictor_size() {
    // Table 1 trend: 16 K ≥ 64 K ≥ 256 K in misp/KI.
    let suite = cross_section();
    let small = run_suite(&TageConfig::small(), &suite, N, &RunOptions::default());
    let medium = run_suite(&TageConfig::medium(), &suite, N, &RunOptions::default());
    let large = run_suite(&TageConfig::large(), &suite, N, &RunOptions::default());
    assert!(medium.mean_mpki() <= small.mean_mpki() + 0.05);
    assert!(large.mean_mpki() <= medium.mean_mpki() + 0.05);
}

#[test]
fn claim_the_medium_bim_window_isolates_misprediction_bursts() {
    // The medium-conf-bim class exists to absorb warming/capacity bursts:
    // with the window enabled, the high-conf-bim class is cleaner than
    // without it.
    let rows = window_ablation(&TageConfig::small(), &cross_section(), N, &[0, 8]);
    let without = &rows[0];
    let with = &rows[1];
    assert!(
        with.high_bim_mprate_mkp <= without.high_bim_mprate_mkp,
        "enabling the window should not make high-conf-bim dirtier ({} vs {})",
        with.high_bim_mprate_mkp,
        without.high_bim_mprate_mkp
    );
    assert!(with.medium_bim_pcov > 0.0);
    // The captured medium class is much riskier than high-conf-bim.
    assert!(with.medium_bim_mprate_mkp > with.high_bim_mprate_mkp);
}

#[test]
fn claim_storage_free_estimate_matches_table_based_estimators() {
    // Related work: the TAGE high/low split should achieve a PVP at least as
    // good as a JRS estimator attached to a gshare predictor of similar
    // storage, without any confidence table.
    use tage_confidence_suite::confidence::estimators::JrsEstimator;
    use tage_confidence_suite::predictors::GsharePredictor;
    use tage_confidence_suite::sim::baseline::run_baseline;

    let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(N);
    let mut gshare = GsharePredictor::new(14, 14);
    let mut jrs = JrsEstimator::classic(12);
    let jrs_result = run_baseline(&mut gshare, &mut jrs, &trace);

    let tage_result = run_trace(
        &modified(TageConfig::medium()),
        &trace,
        &RunOptions::default(),
    );
    let tage_confusion = tage_result
        .report
        .binary_confusion(&[ConfidenceLevel::High]);

    assert!(
        tage_confusion.pvp() >= jrs_result.confusion.pvp() - 0.02,
        "TAGE PVP {} should be competitive with JRS PVP {}",
        tage_confusion.pvp(),
        jrs_result.confusion.pvp()
    );
}
