//! Flat structure-of-arrays storage for the tagged TAGE components.
//!
//! The predictor used to store its tagged components as
//! `Vec<Vec<TaggedEntry>>` — one heap allocation per table, with tag,
//! prediction counter and useful counter interleaved per entry. The hot
//! lookup path only needs the *tags* (one compare per table), so the
//! interleaved layout dragged the counters through the cache on every probe.
//!
//! [`TageTables`] flattens all tables of a predictor into three contiguous
//! arrays — one per field — indexed by `offset[table] + entry`. Tables may
//! differ in size ([`crate::TageGeometry`] drives per-table entry counts);
//! each table's entry count is a power of two, and for the uniform
//! geometries of [`crate::TageConfig`] the per-table offsets reduce to the
//! historical `(table_rank << index_bits) | entry` layout bit for bit. A
//! whole-storage sweep (the periodic graceful useful-counter reset) is a
//! single linear pass over one array regardless of the shape.
//!
//! The layout is an exact bit-for-bit re-arrangement of the nested-`Vec`
//! storage: `tests/soa_parity.rs` pins equivalence against
//! [`crate::reference::ReferenceTagePredictor`], which retains the old
//! layout as an executable specification.

use tage_predictors::counter::{SignedCounter, UnsignedCounter};

use crate::entry::TaggedEntry;

/// All tagged components of one predictor in a flat structure-of-arrays
/// layout: three parallel arrays, one slot per entry of every table, with
/// per-table offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TageTables {
    /// Partial tags, one `u16` per entry (the only array the lookup probes).
    tags: Box<[u16]>,
    /// Signed prediction counters.
    ctrs: Box<[SignedCounter]>,
    /// Unsigned useful counters.
    useful: Box<[UnsignedCounter]>,
    /// The flat starting offset of each table (prefix sums of the entry
    /// counts); the flat index of entry `idx` of table `t` is
    /// `offsets[t] + idx`.
    offsets: Box<[usize]>,
    /// Per-table log2 entry counts.
    index_bits: Box<[u32]>,
    /// Width of the prediction counters (kept for in-place [`TageTables::clear`]).
    counter_bits: u8,
    /// Width of the useful counters (kept for in-place [`TageTables::clear`]).
    useful_bits: u8,
}

impl TageTables {
    /// Creates one empty table of `1 << bits` entries per element of
    /// `index_bits`, with counters of the given widths (all entries start in
    /// the never-allocated state, exactly like [`TaggedEntry::new`]).
    pub fn new(index_bits: &[u32], counter_bits: u8, useful_bits: u8) -> Self {
        let mut offsets = Vec::with_capacity(index_bits.len());
        let mut total = 0usize;
        for &bits in index_bits {
            offsets.push(total);
            total += 1usize << bits;
        }
        TageTables {
            tags: vec![0u16; total].into_boxed_slice(),
            ctrs: vec![SignedCounter::new(counter_bits); total].into_boxed_slice(),
            useful: vec![UnsignedCounter::new(useful_bits); total].into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            index_bits: index_bits.to_vec().into_boxed_slice(),
            counter_bits,
            useful_bits,
        }
    }

    /// [`TageTables::new`] for `num_tables` equally sized tables — the
    /// uniform shape of the legacy [`crate::TageConfig`] constructors.
    pub fn uniform(num_tables: usize, index_bits: u32, counter_bits: u8, useful_bits: u8) -> Self {
        TageTables::new(&vec![index_bits; num_tables], counter_bits, useful_bits)
    }

    /// Restores every entry to the never-allocated state in place, without
    /// touching the heap — bit-for-bit identical to a freshly constructed
    /// [`TageTables`] of the same shape.
    pub fn clear(&mut self) {
        self.tags.fill(0);
        self.ctrs.fill(SignedCounter::new(self.counter_bits));
        self.useful.fill(UnsignedCounter::new(self.useful_bits));
    }

    /// Number of tagged tables.
    #[inline]
    pub fn num_tables(&self) -> usize {
        self.offsets.len()
    }

    /// The raw parallel arrays (tags, prediction counters, useful counters)
    /// for snapshot serialization.
    pub(crate) fn raw_parts(&self) -> (&[u16], &[SignedCounter], &[UnsignedCounter]) {
        (&self.tags, &self.ctrs, &self.useful)
    }

    /// Mutable access to the raw parallel arrays for snapshot restore.
    pub(crate) fn raw_parts_mut(
        &mut self,
    ) -> (&mut [u16], &mut [SignedCounter], &mut [UnsignedCounter]) {
        (&mut self.tags, &mut self.ctrs, &mut self.useful)
    }

    /// Total entry count across all tables.
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.tags.len()
    }

    /// Number of entries of table `t`.
    #[inline]
    pub fn entries(&self, t: usize) -> usize {
        1usize << self.index_bits[t]
    }

    /// The flat array offset of entry `idx` of table `t`.
    #[inline]
    fn flat(&self, t: usize, idx: usize) -> usize {
        debug_assert!(t < self.num_tables());
        debug_assert!(idx < self.entries(t));
        self.offsets[t] + idx
    }

    /// The stored partial tag of entry `idx` of table `t`.
    #[inline]
    pub fn tag(&self, t: usize, idx: usize) -> u16 {
        self.tags[self.flat(t, idx)]
    }

    /// [`TageTables::tag`] without the flat-array bounds check, for the
    /// lane-batched probe loop where it is the only branch left.
    ///
    /// # Safety contract (checked in debug builds)
    ///
    /// `t` must be below [`TageTables::num_tables`] and `idx` below
    /// [`TageTables::entries`] of that table; the probe loop guarantees both
    /// by construction (`t` ranges over the table count and `idx` is hashed
    /// through the table's index mask).
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn tag_unchecked(&self, t: usize, idx: usize) -> u16 {
        let flat = self.flat(t, idx);
        debug_assert!(flat < self.tags.len());
        // SAFETY: `flat` adds a masked index below the table's entry count
        // to the table's starting offset, and `tags` was sized to exactly
        // the sum of all per-table entry counts at construction.
        unsafe { *self.tags.get_unchecked(flat) }
    }

    /// The prediction counter of entry `idx` of table `t`.
    #[inline]
    pub fn ctr(&self, t: usize, idx: usize) -> SignedCounter {
        self.ctrs[self.flat(t, idx)]
    }

    /// Mutable access to the prediction counter of entry `idx` of table `t`.
    #[inline]
    pub fn ctr_mut(&mut self, t: usize, idx: usize) -> &mut SignedCounter {
        let flat = self.flat(t, idx);
        &mut self.ctrs[flat]
    }

    /// The useful counter of entry `idx` of table `t`.
    #[inline]
    pub fn useful(&self, t: usize, idx: usize) -> UnsignedCounter {
        self.useful[self.flat(t, idx)]
    }

    /// Mutable access to the useful counter of entry `idx` of table `t`.
    #[inline]
    pub fn useful_mut(&mut self, t: usize, idx: usize) -> &mut UnsignedCounter {
        let flat = self.flat(t, idx);
        &mut self.useful[flat]
    }

    /// Returns `true` if entry `idx` of table `t` may be reclaimed by the
    /// allocation policy (its useful counter is null).
    #[inline]
    pub fn is_allocatable(&self, t: usize, idx: usize) -> bool {
        self.useful[self.flat(t, idx)].is_zero()
    }

    /// Re-initialises entry `idx` of table `t` for a newly allocated
    /// (PC, history) pair, mirroring [`TaggedEntry::allocate`]: weak-correct
    /// counter, zero useful counter.
    #[inline]
    pub fn allocate(&mut self, t: usize, idx: usize, tag: u16, taken: bool) {
        let flat = self.flat(t, idx);
        self.tags[flat] = tag;
        self.ctrs[flat].set_weak(taken);
        self.useful[flat].reset();
    }

    /// One step of the graceful useful-counter reset: clears bit `phase` of
    /// every useful counter, across all tables, in a single linear pass.
    pub fn clear_useful_bit(&mut self, phase: u8) {
        for counter in self.useful.iter_mut() {
            counter.clear_bit(phase);
        }
    }

    /// Hints the CPU to pull the cache line holding the tag of entry `idx`
    /// of table `t` into cache ahead of the actual probe.
    ///
    /// This is a pure scheduling hint: it never changes architectural state,
    /// and it compiles to nothing on targets without a prefetch intrinsic.
    #[inline]
    pub fn prefetch_tag(&self, t: usize, idx: usize) {
        let flat = self.flat(t, idx);
        prefetch(core::ptr::addr_of!(self.tags[flat]).cast());
    }

    /// Hints the CPU to pull the cache lines holding the prediction and
    /// useful counters of entry `idx` of table `t` ahead of an update.
    #[inline]
    pub fn prefetch_counters(&self, t: usize, idx: usize) {
        let flat = self.flat(t, idx);
        prefetch(core::ptr::addr_of!(self.ctrs[flat]).cast());
        prefetch(core::ptr::addr_of!(self.useful[flat]).cast());
    }

    /// A by-value [`TaggedEntry`] view of entry `idx` of table `t`, for
    /// diagnostics and tests (the storage itself never materialises
    /// entries).
    pub fn entry(&self, t: usize, idx: usize) -> TaggedEntry {
        let flat = self.flat(t, idx);
        TaggedEntry {
            tag: self.tags[flat],
            ctr: self.ctrs[flat],
            useful: self.useful[flat],
        }
    }
}

/// Issues a read prefetch for the cache line containing `ptr`.
///
/// Prefetching cannot fault and never changes architectural state — the
/// intrinsic is a scheduling hint only — so this helper is the one place
/// the crate permits `unsafe` (the crate is otherwise `deny(unsafe_code)`).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
#[inline(always)]
pub(crate) fn prefetch(ptr: *const u8) {
    use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
    unsafe { _mm_prefetch::<_MM_HINT_T0>(ptr.cast()) }
}

/// Portable fallback: no prefetch hint available, do nothing.
#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
pub(crate) fn prefetch(_ptr: *const u8) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tables_match_fresh_entries() {
        let tables = TageTables::uniform(4, 8, 3, 2);
        assert_eq!(tables.num_tables(), 4);
        assert_eq!(tables.entries(0), 256);
        assert_eq!(tables.total_entries(), 4 * 256);
        let reference = TaggedEntry::new(3, 2);
        for t in 0..4 {
            for idx in [0usize, 1, 128, 255] {
                assert_eq!(tables.entry(t, idx), reference);
                assert!(tables.is_allocatable(t, idx));
            }
        }
    }

    #[test]
    fn ragged_tables_have_independent_shapes() {
        let tables = TageTables::new(&[6, 8, 4], 3, 2);
        assert_eq!(tables.num_tables(), 3);
        assert_eq!(tables.entries(0), 64);
        assert_eq!(tables.entries(1), 256);
        assert_eq!(tables.entries(2), 16);
        assert_eq!(tables.total_entries(), 64 + 256 + 16);
    }

    #[test]
    fn ragged_mutation_does_not_bleed_across_table_boundaries() {
        let mut tables = TageTables::new(&[4, 6, 4], 3, 2);
        // Last entry of table 0 and first entry of table 1 are flat
        // neighbours; mutate both and check isolation.
        tables.allocate(0, 15, 0xAB, true);
        tables.useful_mut(1, 0).increment();
        assert_eq!(tables.tag(0, 15), 0xAB);
        assert_eq!(tables.tag(1, 0), 0);
        assert!(!tables.is_allocatable(1, 0));
        assert!(tables.useful(0, 15).is_zero(), "allocate resets u to 0");
        // Last entry of table 1 borders first of table 2.
        tables.allocate(1, 63, 0x3C, false);
        assert_eq!(tables.tag(2, 0), 0);
        assert_eq!(tables.tag(1, 63), 0x3C);
    }

    #[test]
    fn allocate_mirrors_tagged_entry_allocate() {
        let mut tables = TageTables::uniform(2, 4, 3, 2);
        let mut reference = TaggedEntry::new(3, 2);
        tables.allocate(1, 7, 0x1ab, true);
        reference.allocate(0x1ab, true);
        assert_eq!(tables.entry(1, 7), reference);
        // Entries in other tables at the same index are untouched.
        assert_eq!(tables.entry(0, 7), TaggedEntry::new(3, 2));
        assert_eq!(tables.tag(1, 7), 0x1ab);
        assert!(tables.ctr(1, 7).predict_taken());
    }

    #[test]
    fn useful_mutation_is_per_entry() {
        let mut tables = TageTables::uniform(2, 4, 3, 2);
        tables.useful_mut(0, 3).increment();
        assert!(!tables.is_allocatable(0, 3));
        assert!(tables.is_allocatable(0, 4));
        assert!(tables.is_allocatable(1, 3));
        assert_eq!(tables.useful(0, 3).value(), 1);
    }

    #[test]
    fn clear_useful_bit_sweeps_every_table() {
        let mut tables = TageTables::new(&[4, 5, 4], 3, 2);
        for t in 0..3 {
            for idx in 0..16 {
                tables.useful_mut(t, idx).increment();
            }
        }
        tables.clear_useful_bit(0);
        for t in 0..3 {
            for idx in 0..16 {
                assert!(tables.is_allocatable(t, idx), "t={t} idx={idx}");
            }
        }
    }

    #[test]
    fn clear_restores_the_freshly_constructed_state() {
        let mut tables = TageTables::new(&[4, 6, 4], 3, 2);
        tables.allocate(1, 7, 0x2b, true);
        tables.useful_mut(2, 9).increment();
        tables.ctr_mut(0, 5).increment();
        tables.clear();
        assert_eq!(tables, TageTables::new(&[4, 6, 4], 3, 2));
    }

    #[test]
    fn prefetch_hints_are_pure() {
        let tables = TageTables::uniform(2, 4, 3, 2);
        let before = tables.clone();
        tables.prefetch_tag(1, 3);
        tables.prefetch_counters(0, 15);
        assert_eq!(tables, before);
    }

    #[test]
    fn ctr_mut_updates_only_the_target() {
        let mut tables = TageTables::uniform(2, 4, 3, 2);
        tables.ctr_mut(1, 2).increment();
        assert_eq!(tables.ctr(1, 2).value(), 0);
        assert_eq!(tables.ctr(0, 2).value(), -1);
    }
}
