//! Criterion micro-benchmark: synthetic trace generation throughput and
//! trace serialisation round-trips.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use tage_traces::reader::TraceReader;
use tage_traces::suites;
use tage_traces::writer::TraceWriter;

fn bench_generation(c: &mut Criterion) {
    let suite = suites::cbp1_like();
    let mut group = c.benchmark_group("trace_generation");
    const N: usize = 50_000;
    group.throughput(Throughput::Elements(N as u64));
    for name in ["FP-1", "INT-1", "SERV-2"] {
        let spec = suite.trace(name).unwrap().clone();
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, spec| {
            b.iter(|| spec.generate(N));
        });
    }
    group.finish();
}

fn bench_io(c: &mut Criterion) {
    let trace = suites::cbp1_like().trace("INT-1").unwrap().generate(50_000);
    let bytes = TraceWriter::to_binary_bytes(&trace);
    let mut group = c.benchmark_group("trace_io");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("write_binary", |b| {
        b.iter(|| TraceWriter::to_binary_bytes(&trace));
    });
    group.bench_function("read_binary", |b| {
        b.iter(|| TraceReader::read_binary(&bytes[..]).expect("valid trace"));
    });
    group.finish();
}

criterion_group!(benches, bench_generation, bench_io);
criterion_main!(benches);
