//! Lane-batched probe paths: K independent predictors advanced in lockstep
//! over transposed, SIMD-friendly hot state.
//!
//! A multilane simulation runs K independent branch streams, each with its
//! own [`TagePredictor`], and advances every stream by one branch per cycle.
//! The scalar per-branch loop hides all of its parallelism from the CPU:
//! every folded-history update and every index hash is a short dependency
//! chain executed once per branch. A [`LaneGroup`] restructures that work
//! into *per-component passes* over state held **transposed across lanes**:
//!
//! * the 3 folded-history registers of each tagged table are *packed into a
//!   single `u64`* (index / tag-A / tag-B fields at 21-bit offsets) and,
//!   like the global history words, live in flat lane-major arrays
//!   (`value[t * lanes + k]`), so "advance table T's folds for all K lanes"
//!   is one tight loop over contiguous `u64`s with lane-uniform constants —
//!   exactly the shape an auto-vectorizer turns into AVX2/AVX-512 code —
//!   and each lane costs one load, one fused update chain and one store
//!   instead of three;
//! * **pass A** ([`LaneGroup::predict`]) computes all K table indices and
//!   tags component-major from the transposed folds;
//! * **pass B** probes each lane's tag rows, assembles the fixed-size
//!   [`crate::prediction::TableLookups`] and funnels it through `TagePredictor::resolve` —
//!   the *same* function the scalar `predict` tail uses, so
//!   provider/alternate selection cannot diverge between the two paths;
//! * [`LaneGroup::train`] applies the scalar
//!   counter/allocation update per lane (tables, RNG draws and statistics
//!   live in each lane's predictor, untouched), then advances all K global
//!   histories and all `3 × tables × K` folds in vectorized passes that are
//!   bit-identical to [`crate::folded::FoldedHistory::update`] and the history
//!   shift.
//!
//! The wide passes are compiled three times — baseline, AVX2 and AVX-512 —
//! and dispatched once per group from runtime feature detection, so the
//! crate stays portable while the hot loops use the widest vectors the
//! host offers.
//!
//! While a lane is in the group its predictor's own folded histories and
//! history register are *stale*: the transposed arrays are the live copy.
//! [`LaneGroup::store_lane`] writes them back, restoring a predictor
//! bit-for-bit equal to one that ran the same stream scalar — the in-crate
//! tests pin this, and `crates/sim/tests/multilane_parity.rs` pins the
//! whole engine end-to-end.

use tage_traces::snapshot::SnapshotError;

use crate::geometry::{TageBlueprint, TageGeometry};
use crate::prediction::{TableLookup, TagePrediction};
use crate::predictor::TagePredictor;

/// Maximum global-history words per lane the group supports (512 bits of
/// history plus slack — far above the 300-bit largest paper configuration).
const MAX_HISTORY_WORDS: usize = 8;

/// Bit offset of the tag-A fold within a packed fold word.
const FOLD_SHIFT_A: u32 = 21;
/// Bit offset of the tag-B fold within a packed fold word.
const FOLD_SHIFT_B: u32 = 42;
/// Widest fold a 21-bit packed field can update without bleeding into its
/// neighbour: the shift-in intermediate needs `compressed_length + 1` bits.
const MAX_PACKED_FOLD_BITS: u32 = FOLD_SHIFT_A - 1;
/// Shift-in value for a taken outcome: bit 0 of all three packed fields.
const INS_TAKEN: u64 = 1 | (1 << FOLD_SHIFT_A) | (1 << FOLD_SHIFT_B);

/// Vector instruction set the wide passes were dispatched to, detected once
/// per group at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    /// Whatever the build target guarantees (SSE2 on x86-64).
    Baseline,
    /// 256-bit integer vectors.
    Avx2,
    /// 512-bit integer vectors.
    Avx512,
}

fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512dq")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            return Isa::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
    }
    Isa::Baseline
}

/// K lockstep lanes of TAGE predictors with their folded histories and
/// global histories held transposed (lane-major) for vectorized
/// per-component passes.
///
/// Lanes are armed contiguously ([`LaneGroup::arm`]), predicted and trained
/// as a front slice (`&pcs[..active]`), compacted with [`LaneGroup::swap`]
/// when a stream retires, and written back with [`LaneGroup::store_lane`]
/// when a predictor's full scalar state is needed again. All buffers are
/// allocated at construction — steady-state cycles are heap-free.
#[derive(Debug)]
pub struct LaneGroup {
    geometry: TageGeometry,
    lanes: usize,
    num_tables: usize,
    hist_words: usize,
    isa: Isa,
    predictors: Vec<TagePredictor>,
    /// Transposed fold values, flat `t * lanes + k`, with a table's three
    /// folds (index, tag A, tag B) packed into one word at bit offsets
    /// 0 / [`FOLD_SHIFT_A`] / [`FOLD_SHIFT_B`] — one load, one store and one
    /// fused update chain per table per lane instead of three.
    folds: Vec<u64>,
    /// Transposed global-history words, flat `w * lanes + k`; same word
    /// layout as [`tage_predictors::history::HistoryRegister`].
    hist: Vec<u64>,
    /// Per-lane path-history registers (the live copy while the lane is in
    /// the group). All-zero — and never advanced — for geometries without a
    /// path register.
    path: Vec<u64>,
    /// Per-table constants of the fold update (lane-uniform, hoisted out of
    /// the per-lane loops so each table's pass keeps vectorizing).
    evict_word: Vec<usize>,
    evict_shift: Vec<u32>,
    /// Per-table XOR mask applied when the evicted history bit is 1: the
    /// three outpoint bits, one per packed fold field.
    evict_mul: Vec<u64>,
    /// Per-table fold widths.
    cl_index: Vec<u32>,
    cl_tag_a: Vec<u32>,
    cl_tag_b: Vec<u32>,
    /// Per-table fold *field* masks in field position (for unpacking a
    /// stored lane) — these cover the fold registers' widths, which a
    /// geometry may set independently of the hash widths below.
    mask_fold_index: Vec<u64>,
    mask_fold_a: Vec<u64>,
    mask_fold_b: Vec<u64>,
    /// Per-table packed cleanup mask: all three field masks in packed
    /// position, clearing every intermediate bit above each fold's width.
    fold_mask: Vec<u64>,
    /// Per-table hash masks and PC shift of the index hash
    /// (`index_bits + rank + 1`).
    index_mask: Vec<u64>,
    tag_mask: Vec<u64>,
    index_shift: Vec<u64>,
    /// Width and mask of the per-lane path registers (0 / 0 when disabled).
    path_bits: u32,
    path_mask: u64,
    /// Per-cycle scratch, flat `t * lanes + k` (indices/tags) or `k`
    /// (inserted bits, shift carries, staged PCs).
    idxs: Vec<u32>,
    tags: Vec<u16>,
    ins: Vec<u64>,
    carry: Vec<u64>,
    /// The PCs of the cycle's staged lanes, captured by
    /// [`LaneGroup::predict`] so [`LaneGroup::advance`] can shift each
    /// lane's path history without changing its signature.
    staged_pcs: Vec<u64>,
}

impl LaneGroup {
    /// Creates a group of up to `lanes` lockstep lanes (clamped to at
    /// least one) sharing one blueprint — a [`crate::TageConfig`] preset or
    /// an explicit [`TageGeometry`]. Lane predictors are constructed on
    /// first [`LaneGroup::arm`].
    ///
    /// # Panics
    ///
    /// Panics if the blueprint's geometry does not pass
    /// [`TageGeometry::validate`], or if a fold or index width exceeds the
    /// packed 21-bit lane layout ([`TageGeometry`] allows up to 32 bits;
    /// such geometries must run scalar).
    pub fn new(blueprint: impl TageBlueprint, lanes: usize) -> Self {
        let geometry = blueprint.tage_geometry();
        if let Err(reason) = geometry.validate() {
            panic!("invalid TAGE configuration: {reason}");
        }
        let lanes = lanes.max(1);
        let num_tables = geometry.num_tagged_tables();
        for (t, table) in geometry.tables.iter().enumerate() {
            assert!(
                table.index_bits <= MAX_PACKED_FOLD_BITS
                    && table.index_fold_bits <= MAX_PACKED_FOLD_BITS
                    && table.tag_fold_bits <= MAX_PACKED_FOLD_BITS
                    && table.tag_fold2_bits <= MAX_PACKED_FOLD_BITS,
                "table {t}: index/fold widths beyond {MAX_PACKED_FOLD_BITS} bits \
                 do not fit the packed lane-group layout"
            );
        }
        let hist_words = (geometry.max_history() + 8).div_ceil(64);
        assert!(
            hist_words <= MAX_HISTORY_WORDS,
            "history capacity exceeds the lane group's fixed word budget"
        );
        let tables = &geometry.tables;
        let mask_fold_index: Vec<u64> = tables
            .iter()
            .map(|t| (1u64 << t.index_fold_bits) - 1)
            .collect();
        let mask_fold_a: Vec<u64> = tables
            .iter()
            .map(|t| (1u64 << t.tag_fold_bits) - 1)
            .collect();
        let mask_fold_b: Vec<u64> = tables
            .iter()
            .map(|t| (1u64 << t.tag_fold2_bits) - 1)
            .collect();
        let fold_mask: Vec<u64> = (0..num_tables)
            .map(|t| {
                mask_fold_index[t]
                    | (mask_fold_a[t] << FOLD_SHIFT_A)
                    | (mask_fold_b[t] << FOLD_SHIFT_B)
            })
            .collect();
        let path_bits = geometry.path_history_bits;
        LaneGroup {
            lanes,
            num_tables,
            hist_words,
            isa: detect_isa(),
            predictors: Vec::with_capacity(lanes),
            folds: vec![0; num_tables * lanes],
            hist: vec![0; hist_words * lanes],
            path: vec![0; lanes],
            evict_word: tables.iter().map(|t| (t.history_length - 1) / 64).collect(),
            evict_shift: tables
                .iter()
                .map(|t| ((t.history_length - 1) % 64) as u32)
                .collect(),
            evict_mul: tables
                .iter()
                .map(|t| {
                    let l = t.history_length;
                    (1u64 << (l % t.index_fold_bits as usize))
                        | (1u64 << (FOLD_SHIFT_A + (l % t.tag_fold_bits as usize) as u32))
                        | (1u64 << (FOLD_SHIFT_B + (l % t.tag_fold2_bits as usize) as u32))
                })
                .collect(),
            cl_index: tables.iter().map(|t| t.index_fold_bits).collect(),
            cl_tag_a: tables.iter().map(|t| t.tag_fold_bits).collect(),
            cl_tag_b: tables.iter().map(|t| t.tag_fold2_bits).collect(),
            mask_fold_index,
            mask_fold_a,
            mask_fold_b,
            fold_mask,
            index_mask: tables.iter().map(|t| (1u64 << t.index_bits) - 1).collect(),
            tag_mask: tables.iter().map(|t| (1u64 << t.tag_bits) - 1).collect(),
            index_shift: (0..num_tables)
                .map(|t| u64::from(tables[t].index_bits) + t as u64 + 1)
                .collect(),
            path_bits,
            path_mask: if path_bits == 0 {
                0
            } else {
                (1u64 << path_bits) - 1
            },
            idxs: vec![0; num_tables * lanes],
            tags: vec![0; num_tables * lanes],
            ins: vec![0; lanes],
            carry: vec![0; lanes],
            staged_pcs: vec![0; lanes],
            geometry,
        }
    }

    /// Whether `geometry` fits the packed lane-group layout: every index
    /// and fold width within the packed 21-bit field size and the history
    /// register within the group's fixed word budget.
    /// [`TageGeometry::validate`] admits wider shapes (index widths up to
    /// 24 bits, fold widths up to 32); those must run through the scalar
    /// [`TagePredictor`] instead — [`LaneGroup::new`] panics on them.
    pub fn supports(geometry: &TageGeometry) -> bool {
        geometry.tables.iter().all(|t| {
            t.index_bits <= MAX_PACKED_FOLD_BITS
                && t.index_fold_bits <= MAX_PACKED_FOLD_BITS
                && t.tag_fold_bits <= MAX_PACKED_FOLD_BITS
                && t.tag_fold2_bits <= MAX_PACKED_FOLD_BITS
        }) && (geometry.max_history() + 8).div_ceil(64) <= MAX_HISTORY_WORDS
    }

    /// The geometry shared by every lane of the group.
    pub fn geometry(&self) -> &TageGeometry {
        &self.geometry
    }

    /// The lane capacity of the group.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane predictor at `k` — tables, counters, RNG and statistics are
    /// always live; folded histories and the global history are only
    /// current after [`LaneGroup::store_lane`].
    pub fn predictor(&self, k: usize) -> &TagePredictor {
        &self.predictors[k]
    }

    /// Arms lane `k` for a fresh stream: constructs its predictor on first
    /// use (lanes must be armed contiguously), resets a reused one in
    /// place, and loads the (fresh) hot state into the transposed arrays.
    ///
    /// # Panics
    ///
    /// Panics if `k` is at or beyond the lane capacity, or skips ahead of
    /// the armed prefix.
    pub fn arm(&mut self, k: usize) {
        assert!(k < self.lanes, "lane index beyond the group's capacity");
        if k < self.predictors.len() {
            self.predictors[k].reset();
        } else {
            assert_eq!(k, self.predictors.len(), "lanes must be armed in order");
            self.predictors.push(TagePredictor::new(&self.geometry));
        }
        self.load_lane(k);
    }

    /// Restores lane `k`'s predictor from a [`TagePredictor::snapshot`] and
    /// reloads the transposed hot state from it, as if the lane had been
    /// armed and run to the snapshot point scalar. The lane must already be
    /// armed. On error the lane is untouched (the restore is all-or-nothing
    /// and the transposed state is only refreshed on success).
    ///
    /// # Errors
    ///
    /// Propagates the [`SnapshotError`] from [`TagePredictor::restore`].
    ///
    /// # Panics
    ///
    /// Panics if lane `k` is not armed.
    pub fn restore_lane(&mut self, k: usize, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.predictors[k].restore(bytes)?;
        self.load_lane(k);
        Ok(())
    }

    /// Copies predictor `k`'s folded histories and global history into the
    /// transposed arrays, making the lane's hot state live in the group.
    fn load_lane(&mut self, k: usize) {
        let lanes = self.lanes;
        let p = &self.predictors[k];
        for t in 0..self.num_tables {
            self.folds[t * lanes + k] = p.index_folds[t].value()
                | (p.tag_folds_a[t].value() << FOLD_SHIFT_A)
                | (p.tag_folds_b[t].value() << FOLD_SHIFT_B);
        }
        let words = p.history.words();
        for (w, &word) in words.iter().enumerate().take(self.hist_words) {
            self.hist[w * lanes + k] = word;
        }
        self.path[k] = p.path_history;
    }

    /// Writes the transposed hot state of lane `k` back into its predictor,
    /// restoring a [`TagePredictor`] bit-for-bit equal to one that ran the
    /// same stream through the scalar path.
    pub fn store_lane(&mut self, k: usize) {
        let lanes = self.lanes;
        let mut words = [0u64; MAX_HISTORY_WORDS];
        for (w, word) in words[..self.hist_words].iter_mut().enumerate() {
            *word = self.hist[w * lanes + k];
        }
        let p = &mut self.predictors[k];
        for t in 0..self.num_tables {
            let packed = self.folds[t * lanes + k];
            p.index_folds[t].set_value(packed & self.mask_fold_index[t]);
            p.tag_folds_a[t].set_value((packed >> FOLD_SHIFT_A) & self.mask_fold_a[t]);
            p.tag_folds_b[t].set_value((packed >> FOLD_SHIFT_B) & self.mask_fold_b[t]);
        }
        p.history.load_words(&words[..self.hist_words]);
        p.path_history = self.path[k];
    }

    /// Swaps lanes `a` and `b` — predictors and transposed columns — the
    /// compaction step when a retiring lane is replaced by the last active
    /// one.
    pub fn swap(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        self.predictors.swap(a, b);
        let lanes = self.lanes;
        for t in 0..self.num_tables {
            self.folds.swap(t * lanes + a, t * lanes + b);
        }
        for w in 0..self.hist_words {
            self.hist.swap(w * lanes + a, w * lanes + b);
        }
        self.path.swap(a, b);
    }

    /// Computes one prediction per staged lane: pass A hashes all
    /// `tables × lanes` indices and tags from the transposed folds in
    /// vectorized component-major loops, pass B probes and resolves per
    /// lane through the scalar tail.
    ///
    /// `out` is cleared first; `out[k]` is bit-for-bit what
    /// `self.predictor(k).predict(pcs[k])` would return with that lane's
    /// hot state written back.
    ///
    /// # Panics
    ///
    /// Panics if `pcs` is longer than the armed prefix.
    pub fn predict(&mut self, pcs: &[u64], out: &mut Vec<TagePrediction>) {
        let a = pcs.len();
        assert!(a <= self.predictors.len(), "unarmed lane staged");
        assert!(self.num_tables <= crate::prediction::MAX_TAGGED_TABLES);
        // Capture the cycle's PCs: `advance` shifts each lane's path history
        // from them after training, mirroring the scalar `update`.
        self.staged_pcs[..a].copy_from_slice(pcs);
        self.hash_pass(pcs);
        let lanes = self.lanes;
        // Resize, don't rebuild: the caller keeps `out` across cycles, so
        // in steady state each slot is resolved in place with no copy of
        // the ~150-byte prediction through a stack temporary.
        out.resize(a, TagePrediction::default());
        let out = &mut out[..a];
        let predictors = &self.predictors[..a];
        // Probe + assemble lane-major: each lane reads its indices and tags
        // from the (L1-resident) scratch rows, probes its own tag arrays —
        // the seven probes are independent loads, so they overlap across
        // tables and across lanes — accumulates the hit bitmask in a
        // register, writes the lookup slots sequentially and resolves in
        // place through the scalar tail.
        for (k, slot) in out.iter_mut().enumerate() {
            let tables = &predictors[k].tables;
            let mut hits = 0u16;
            for t in 0..self.num_tables {
                let index = self.idxs[t * lanes + k];
                let tag = self.tags[t * lanes + k];
                let hit = tables.tag_unchecked(t, index as usize) == tag;
                hits |= u16::from(hit) << t;
                *slot.tables.entry_mut(t) = TableLookup { index, tag, hit };
            }
            slot.tables.set_live(self.num_tables, hits);
            predictors[k].resolve_into(pcs[k], slot);
        }
    }

    /// Trains every staged lane with its resolved outcome: the scalar
    /// counter/allocation update per lane (mirroring
    /// [`TagePredictor::update`] step for step), then one vectorized
    /// history-advance pass over all lanes' folds and history words.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or exceed the armed prefix.
    pub fn train(&mut self, takens: &[bool], predictions: &[TagePrediction]) {
        assert_eq!(takens.len(), predictions.len(), "one outcome per lane");
        assert!(takens.len() <= self.predictors.len(), "unarmed lane staged");
        for (k, p) in self.predictors[..takens.len()].iter_mut().enumerate() {
            p.update_counters(takens[k], &predictions[k]);
        }
        self.advance(takens);
    }

    /// The counter/allocation half of [`LaneGroup::train`] for one lane —
    /// for callers that fold their own per-lane bookkeeping into the same
    /// pass over the predictions and finish the cycle with one
    /// [`LaneGroup::advance`].
    ///
    /// # Panics
    ///
    /// Panics if lane `k` is not armed.
    #[inline]
    pub fn train_lane(&mut self, k: usize, taken: bool, prediction: &TagePrediction) {
        self.predictors[k].update_counters(taken, prediction);
    }

    /// The history half of [`LaneGroup::train`]: advances all staged lanes'
    /// global histories and packed folds in one vectorized pass. Must be
    /// called exactly once per cycle, after every staged lane was trained
    /// through [`LaneGroup::train_lane`] (or not at all when using
    /// [`LaneGroup::train`], which calls it).
    ///
    /// # Panics
    ///
    /// Panics if `takens` is longer than the armed prefix.
    pub fn advance(&mut self, takens: &[bool]) {
        assert!(takens.len() <= self.predictors.len(), "unarmed lane staged");
        self.push_pass(takens);
    }

    /// Pass A of [`LaneGroup::predict`], dispatched to the widest detected
    /// vector ISA.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    fn hash_pass(&mut self, pcs: &[u64]) {
        match self.isa {
            // SAFETY: `detect_isa` verified the features at construction.
            Isa::Avx512 => unsafe { self.hash_pass_avx512(pcs) },
            // SAFETY: as above.
            Isa::Avx2 => unsafe { self.hash_pass_avx2(pcs) },
            Isa::Baseline => self.hash_pass_inner(pcs),
        }
    }

    /// Portable fallback dispatch of pass A.
    #[cfg(not(target_arch = "x86_64"))]
    fn hash_pass(&mut self, pcs: &[u64]) {
        self.hash_pass_inner(pcs);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn hash_pass_avx2(&mut self, pcs: &[u64]) {
        self.hash_pass_inner(pcs);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    fn hash_pass_avx512(&mut self, pcs: &[u64]) {
        self.hash_pass_inner(pcs);
    }

    /// The component-major index/tag hash: for each table rank the K lanes
    /// run the exact `table_index`/`table_tag` arithmetic of the scalar
    /// `predict` over contiguous transposed folds — no loop-carried
    /// dependency, lane-uniform constants, vectorizable as-is.
    #[inline(always)]
    fn hash_pass_inner(&mut self, pcs: &[u64]) {
        let a = pcs.len();
        let lanes = self.lanes;
        let path = &self.path[..];
        for t in 0..self.num_tables {
            let folds = &self.folds[t * lanes..][..a];
            let idxs = &mut self.idxs[t * lanes..][..a];
            let tags = &mut self.tags[t * lanes..][..a];
            let index_mask = self.index_mask[t];
            let tag_mask = self.tag_mask[t];
            let shift = self.index_shift[t];
            for k in 0..a {
                let pc = pcs[k];
                let packed = folds[k];
                let hashed_base = pc >> 2;
                let hashed_pc = hashed_base ^ (pc >> shift);
                // The index fold sits at bit 0 and `index_mask` (at most 20
                // bits) cuts the higher fields; tag fold A lands via
                // `>> FOLD_SHIFT_A` and fold B pre-shifted-by-one via
                // `>> (FOLD_SHIFT_B - 1)`, both cleaned by `tag_mask`
                // (at most 16 bits, so field gaps and neighbours drop out).
                // The path XOR matches the scalar hash: `path` is all-zero
                // when the geometry has no path register.
                idxs[k] = ((hashed_pc ^ packed ^ path[k]) & index_mask) as u32;
                tags[k] =
                    ((hashed_base ^ (packed >> FOLD_SHIFT_A) ^ (packed >> (FOLD_SHIFT_B - 1)))
                        & tag_mask) as u16;
            }
        }
    }

    /// History-advance pass of [`LaneGroup::train`], dispatched to the
    /// widest detected vector ISA.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    fn push_pass(&mut self, takens: &[bool]) {
        match self.isa {
            // SAFETY: `detect_isa` verified the features at construction.
            Isa::Avx512 => unsafe { self.push_pass_avx512(takens) },
            // SAFETY: as above.
            Isa::Avx2 => unsafe { self.push_pass_avx2(takens) },
            Isa::Baseline => self.push_pass_inner(takens),
        }
    }

    /// Portable fallback dispatch of the history-advance pass.
    #[cfg(not(target_arch = "x86_64"))]
    fn push_pass(&mut self, takens: &[bool]) {
        self.push_pass_inner(takens);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    fn push_pass_avx2(&mut self, takens: &[bool]) {
        self.push_pass_inner(takens);
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
    fn push_pass_avx512(&mut self, takens: &[bool]) {
        self.push_pass_inner(takens);
    }

    /// Advances every staged lane's global history and folds by one
    /// outcome. Each inner loop is bit-identical to
    /// [`crate::folded::FoldedHistory::update`] (respectively the history shift) for
    /// that lane, restructured so the K lanes of one component update in one
    /// contiguous pass.
    #[inline(always)]
    fn push_pass_inner(&mut self, takens: &[bool]) {
        let a = takens.len();
        let lanes = self.lanes;
        for (ins, &taken) in self.ins[..a].iter_mut().zip(takens) {
            *ins = u64::from(taken) * INS_TAKEN;
        }
        // Fold updates: one fused chain per table rank and lane. The three
        // folds advance together in their packed fields — shift-in hits all
        // three bit-0 positions at once, the evicted history bit lands on
        // all three outpoints through one per-table mask, and each field's
        // wrap-around XOR pulls its own top intermediate bit down. Every
        // step is bit-identical to running `FoldedHistory::update` three
        // times (fields cannot bleed: a field is 21 bits wide and holds at
        // most `MAX_PACKED_FOLD_BITS + 1` live intermediate bits).
        let ins = &self.ins[..a];
        for t in 0..self.num_tables {
            let col = &self.hist[self.evict_word[t] * lanes..][..a];
            let shift = self.evict_shift[t];
            let evict_mul = self.evict_mul[t];
            let (cl_index, cl_tag_a, cl_tag_b) =
                (self.cl_index[t], self.cl_tag_a[t], self.cl_tag_b[t]);
            let fold_mask = self.fold_mask[t];
            let row = &mut self.folds[t * lanes..][..a];
            for k in 0..a {
                let ev = (col[k] >> shift) & 1;
                let mut v = (row[k] << 1) | ins[k];
                v ^= ev.wrapping_neg() & evict_mul;
                v ^= (v >> cl_index) & 1;
                v ^= (v >> cl_tag_a) & (1 << FOLD_SHIFT_A);
                v ^= (v >> cl_tag_b) & (1 << FOLD_SHIFT_B);
                row[k] = v & fold_mask;
            }
        }
        // Global-history shift, word-major with per-lane carries.
        for (carry, &taken) in self.carry[..a].iter_mut().zip(takens) {
            *carry = u64::from(taken);
        }
        for w in 0..self.hist_words {
            let row = &mut self.hist[w * lanes..][..a];
            let carry = &mut self.carry[..a];
            for k in 0..a {
                let next = row[k] >> 63;
                row[k] = (row[k] << 1) | carry[k];
                carry[k] = next;
            }
        }
        // Path-history shift from the cycle's staged PCs (skipped entirely
        // for geometries without a path register, where `path` stays zero).
        if self.path_bits > 0 {
            let mask = self.path_mask;
            let pcs = &self.staged_pcs[..a];
            let path = &mut self.path[..a];
            for k in 0..a {
                path[k] = ((path[k] << 1) | ((pcs[k] >> 2) & 1)) & mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TageConfig;
    use tage_traces::SplitMix64;

    /// Drives `lanes` interleaved streams through the batched path and the
    /// same streams through independent scalar predictors, asserting every
    /// per-step prediction and the final statistics match exactly, and that
    /// written-back predictors continue bit-for-bit like their scalar
    /// twins.
    fn assert_lanes_match_scalar(config: TageConfig, lanes: usize, steps: u64) {
        let mut group = LaneGroup::new(config.clone(), lanes);
        for k in 0..lanes {
            group.arm(k);
        }
        let mut scalar: Vec<TagePredictor> = (0..lanes)
            .map(|_| TagePredictor::new(config.clone()))
            .collect();
        let mut rngs: Vec<SplitMix64> = (0..lanes)
            .map(|k| SplitMix64::new(0xBEE5 + 31 * k as u64))
            .collect();
        let mut preds = Vec::new();
        let mut pcs = vec![0u64; lanes];
        let mut takens = vec![false; lanes];
        for step in 0..steps {
            for k in 0..lanes {
                // Distinct per-lane walks over a few hundred branches.
                pcs[k] = 0x40_0000 + ((step * 7 + k as u64 * 13) % 251) * 8;
                takens[k] = rngs[k].chance(0.3 + 0.4 * (k as f64 / lanes as f64));
            }
            group.predict(&pcs, &mut preds);
            assert_eq!(preds.len(), lanes);
            for k in 0..lanes {
                let expected = scalar[k].predict(pcs[k]);
                assert_eq!(preds[k], expected, "lane {k} diverged at step {step}");
                scalar[k].update(pcs[k], takens[k], &expected);
            }
            group.train(&takens, &preds);
        }
        for k in 0..lanes {
            assert_eq!(
                group.predictor(k).stats(),
                scalar[k].stats(),
                "lane {k} stats"
            );
            // Writeback restores the full scalar state: the stored
            // predictor must keep matching its scalar twin standalone.
            group.store_lane(k);
            let mut stored = group.predictor(k).clone();
            for extra in 0..200u64 {
                let pc = 0x80_0000 + (extra % 97) * 4;
                let taken = rngs[k].chance(0.5);
                let batched = stored.predict(pc);
                let reference = scalar[k].predict(pc);
                assert_eq!(batched, reference, "lane {k} post-writeback step {extra}");
                stored.update(pc, taken, &batched);
                scalar[k].update(pc, taken, &reference);
            }
        }
    }

    #[test]
    fn batched_lanes_match_scalar_small() {
        for lanes in [1, 2, 4, 8] {
            assert_lanes_match_scalar(TageConfig::small(), lanes, 1500);
        }
    }

    #[test]
    fn batched_lanes_match_scalar_medium() {
        assert_lanes_match_scalar(TageConfig::medium(), 5, 2000);
    }

    #[test]
    fn batched_lanes_match_scalar_with_probabilistic_automaton() {
        let config =
            TageConfig::small().with_automaton(crate::automaton::CounterAutomaton::paper_default());
        assert_lanes_match_scalar(config, 4, 2000);
    }

    #[test]
    fn swap_moves_whole_lane_states() {
        let config = TageConfig::small();
        let mut group = LaneGroup::new(config.clone(), 2);
        group.arm(0);
        group.arm(1);
        let mut preds = Vec::new();
        // Lane 0 sees taken branches at one pc, lane 1 not-taken at another.
        for _ in 0..300 {
            group.predict(&[0x1000, 0x2000], &mut preds);
            group.train(&[true, false], &preds);
        }
        group.swap(0, 1);
        // After the swap, lane 0 must behave exactly like lane 1 did.
        group.store_lane(0);
        group.store_lane(1);
        let p0 = group.predictor(0).clone();
        let p1 = group.predictor(1).clone();
        assert!(!p0.predict(0x2000).taken);
        assert!(p1.predict(0x1000).taken);
    }

    #[test]
    fn rearming_a_lane_restores_the_fresh_state() {
        let config = TageConfig::small();
        let mut group = LaneGroup::new(config.clone(), 1);
        group.arm(0);
        let mut preds = Vec::new();
        for i in 0..500u64 {
            group.predict(&[0x4000 + (i % 13) * 4], &mut preds);
            group.train(&[i % 3 != 0], &preds);
        }
        group.arm(0);
        group.store_lane(0);
        let rearmed = group.predictor(0).clone();
        let fresh = TagePredictor::new(config);
        assert_eq!(rearmed.predict(0x4000), fresh.predict(0x4000));
        assert_eq!(rearmed.stats(), fresh.stats());
    }

    #[test]
    fn empty_stage_is_a_no_op() {
        let mut group = LaneGroup::new(TageConfig::small(), 4);
        let mut out = vec![];
        group.predict(&[], &mut out);
        assert!(out.is_empty());
        group.train(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "armed in order")]
    fn lanes_must_be_armed_contiguously() {
        let mut group = LaneGroup::new(TageConfig::small(), 4);
        group.arm(2);
    }

    #[test]
    #[should_panic(expected = "beyond the group's capacity")]
    fn arming_beyond_capacity_is_rejected() {
        let mut group = LaneGroup::new(TageConfig::small(), 2);
        group.arm(0);
        group.arm(1);
        group.arm(2);
    }
}
