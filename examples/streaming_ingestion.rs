//! Out-of-core trace ingestion: simulate a trace far larger than the
//! reader's chunk without ever materializing it.
//!
//! The example stages the full streaming pipeline:
//!
//! 1. a synthetic workload is streamed **generator → disk** through
//!    `StreamingTraceWriter` (bounded batch buffer, no `Vec<BranchRecord>`
//!    of the whole trace anywhere);
//! 2. the file is streamed back **disk → engine** through a
//!    `BinaryFileSource` whose chunk holds a small fraction of the trace,
//!    so resident record memory is bounded by the chunk size;
//! 3. the result is checked bit-for-bit against the materialized path.
//!
//! Run with: `cargo run --release --example streaming_ingestion`
//! (exercised by `scripts/verify.sh`).

use tage_confidence_suite::sim::runner::{run_source, run_trace, RunOptions};
use tage_confidence_suite::tage::TageConfig;
use tage_confidence_suite::traces::format::RECORD_BYTES;
use tage_confidence_suite::traces::source::{BinaryFileSource, BranchSource, SyntheticSource};
use tage_confidence_suite::traces::writer::StreamingTraceWriter;
use tage_confidence_suite::traces::{suites, BranchRecord};

/// Conditional branches to stream — the resulting file is ~50× larger than
/// the reader's chunk below.
const BRANCHES: usize = 200_000;

/// Records the file reader holds in memory at any moment.
const CHUNK_RECORDS: usize = 4_096;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = suites::cbp1_like()
        .trace("SERV-2")
        .expect("suite trace exists")
        .clone();
    let path = std::env::temp_dir().join(format!(
        "tage-streaming-ingestion-{}.trace",
        std::process::id()
    ));

    // 1. Generator → disk, through a bounded batch buffer.
    let mut source = SyntheticSource::from_spec(&spec, BRANCHES);
    let file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    let mut writer = StreamingTraceWriter::new(file, spec.name())?;
    let mut batch = [BranchRecord::default(); 1024];
    loop {
        let filled = source.next_batch(&mut batch)?;
        if filled == 0 {
            break;
        }
        for record in &batch[..filled] {
            writer.push(record)?;
        }
    }
    let records_written = writer.records_written();
    writer.finish()?;
    let file_bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {} records ({:.1} MiB) to {}",
        records_written,
        file_bytes as f64 / (1024.0 * 1024.0),
        path.display()
    );

    // 2. Disk → engine, holding one small chunk at a time.
    let mut reader = BinaryFileSource::open_with_chunk_records(&path, CHUNK_RECORDS)?;
    let total_records = reader.len_hint().expect("file length is known");
    assert!(
        total_records > CHUNK_RECORDS as u64 * 10,
        "the trace must dwarf the chunk for the demo to mean anything"
    );
    let config = TageConfig::medium();
    let streamed = run_source(&config, &mut reader, &RunOptions::default())?;
    println!(
        "streamed {} conditional branches through a {}-record chunk (~{} KiB resident): \
         {:.3} MPKI",
        streamed.conditional_branches,
        CHUNK_RECORDS,
        CHUNK_RECORDS * RECORD_BYTES / 1024,
        streamed.mpki()
    );

    // 3. The streamed run is bit-identical to materializing the whole trace.
    let trace = spec.generate(BRANCHES);
    let materialized = run_trace(&config, &trace, &RunOptions::default());
    assert_eq!(streamed, materialized, "streaming must not change results");
    println!(
        "parity OK: streamed report equals the materialized run ({} records, {}x chunk size)",
        trace.len(),
        trace.len() / CHUNK_RECORDS
    );

    std::fs::remove_file(&path)?;
    Ok(())
}
