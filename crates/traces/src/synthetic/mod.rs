//! Deterministic synthetic branch workloads.
//!
//! The championship trace sets used by the paper (CBP-1, CBP-2) cannot be
//! redistributed, so the evaluation in this repository runs on synthetic
//! workloads that reproduce the *statistical structure* the paper's
//! observations rely on:
//!
//! * **loop branches** — highly predictable, mostly provided by the bimodal
//!   base component or saturated tagged counters;
//! * **biased data-dependent branches** — intrinsically unpredictable beyond
//!   their bias, the main population of the medium-confidence classes;
//! * **history-correlated branches** — fully predictable once a tagged
//!   component with a long-enough history captures them, the population that
//!   differentiates the 16 K / 64 K / 256 K predictors;
//! * **path-hash branches** — outcomes determined by a hash of the recent
//!   global path, exercising the allocation / warming behaviour;
//! * **phase changes** — behaviour switches that create misprediction bursts
//!   (the "warming / capacity" signature behind the `medium-conf-bim` class);
//! * **large static footprints** — server-like codes with thousands of static
//!   branches that overflow the tagged tables of the small predictor.
//!
//! Everything is driven by [`crate::rng::SplitMix64`], so a `(profile, seed,
//! length)` triple always produces exactly the same trace on every platform.

mod behavior;
mod profile;
mod program;

pub use behavior::{BehaviorKind, BranchBehavior, GlobalOutcomeHistory};
pub use profile::{BehaviorMix, WorkloadProfile};
pub use program::{StreamCursor, SyntheticProgram, SyntheticTraceBuilder};
