//! Baseline conditional branch predictors and shared predictor building
//! blocks.
//!
//! The paper positions the TAGE confidence estimator against the prior art,
//! which was built around pre-2000 predictors (2-bit bimodal, gshare) and
//! neural predictors (perceptron, O-GEHL) whose *self-confidence* — the
//! magnitude of the prediction sum — was used as a storage-free confidence
//! signal. This crate provides those predictors:
//!
//! * [`BimodalPredictor`] — Smith's PC-indexed 2-bit counter table,
//! * [`GsharePredictor`] — McFarling's global-history XOR predictor,
//! * [`PerceptronPredictor`] — the hashed perceptron predictor,
//! * [`GehlPredictor`] — a GEHL-style predictor (multiple tables indexed with
//!   geometric history lengths, adder tree), used by the paper's discussion
//!   of O-GEHL self-confidence,
//!
//! plus the building blocks shared with the `tage` crate:
//!
//! * [`counter::SignedCounter`] / [`counter::UnsignedCounter`] — saturating
//!   counters of configurable width,
//! * [`history::HistoryRegister`] — an arbitrary-length global branch
//!   history shift register,
//! * the [`BranchPredictor`] trait and the [`Prediction`] value it returns,
//!   which carry the *margin* used for self-confidence estimation.
//!
//! # Example
//!
//! ```
//! use tage_predictors::{BimodalPredictor, BranchPredictor};
//!
//! let mut predictor = BimodalPredictor::new(10); // 2^10 counters
//! let prediction = predictor.predict(0x400_100);
//! predictor.update(0x400_100, true, &prediction);
//! assert!(predictor.storage_bits() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bimodal;
pub mod counter;
pub mod gehl;
pub mod gshare;
pub mod history;
pub mod perceptron;
pub mod predictor;
pub(crate) mod snapshot_util;
pub mod spec;

pub use bimodal::BimodalPredictor;
pub use gehl::GehlPredictor;
pub use gshare::GsharePredictor;
pub use perceptron::PerceptronPredictor;
pub use predictor::{
    BranchPredictor, MarginPredictor, Prediction, PredictionOutcome, PredictorCore,
};
pub use spec::{BaselinePredictorSpec, BimodalSpec, GehlSpec, GshareSpec, PerceptronSpec};
