//! Saturating counters of configurable width.
//!
//! Both the baseline predictors and the TAGE predictor are built from small
//! saturating counters. Two flavours are provided:
//!
//! * [`SignedCounter`] — an n-bit two's-complement counter in
//!   `[-2^(n-1), 2^(n-1) - 1]`, whose sign provides a taken/not-taken
//!   prediction (TAGE tagged components, GEHL tables);
//! * [`UnsignedCounter`] — an n-bit counter in `[0, 2^n - 1]` (TAGE useful
//!   counters, JRS confidence counters, bimodal tables).

use core::fmt;

/// An n-bit signed saturating counter.
///
/// The counter saturates at `-2^(bits-1)` and `2^(bits-1) - 1`. Its sign is
/// the prediction: values `>= 0` predict taken. As in the paper, the
/// "centered" magnitude `|2*value + 1|` is used to grade confidence: 1 for a
/// weak counter up to `2^bits - 1` for a saturated one.
///
/// # Example
///
/// ```
/// use tage_predictors::counter::SignedCounter;
///
/// let mut ctr = SignedCounter::new(3); // 3-bit counter in [-4, 3]
/// assert!(ctr.is_weak());
/// for _ in 0..4 {
///     ctr.increment();
/// }
/// assert!(ctr.predict_taken());
/// assert!(ctr.is_saturated());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignedCounter {
    value: i8,
    bits: u8,
}

impl SignedCounter {
    /// Creates a counter of the given width, initialised to the weakly
    /// not-taken state (-1), mirroring hardware reset.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=7`.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=7).contains(&bits),
            "counter width must be in 1..=7 bits"
        );
        SignedCounter { value: -1, bits }
    }

    /// Creates a counter of the given width with an explicit initial value
    /// (clamped to the representable range).
    pub fn with_value(bits: u8, value: i8) -> Self {
        let mut c = SignedCounter::new(bits);
        c.value = value.clamp(c.min(), c.max());
        c
    }

    /// Width in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> i8 {
        self.value
    }

    /// Minimum representable value.
    #[inline]
    pub fn min(&self) -> i8 {
        -(1i8 << (self.bits - 1))
    }

    /// Maximum representable value.
    #[inline]
    pub fn max(&self) -> i8 {
        (1i8 << (self.bits - 1)) - 1
    }

    /// Prediction carried by the counter's sign (`value >= 0` is taken).
    #[inline]
    pub fn predict_taken(&self) -> bool {
        self.value >= 0
    }

    /// Saturating increment.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max() {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > self.min() {
            self.value -= 1;
        }
    }

    /// Moves the counter towards the outcome: increment on taken, decrement
    /// on not taken.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.increment();
        } else {
            self.decrement();
        }
    }

    /// Returns `true` if the counter is in one of its two weak states
    /// (0 or -1), i.e. `|2*value + 1| == 1`.
    #[inline]
    pub fn is_weak(&self) -> bool {
        self.value == 0 || self.value == -1
    }

    /// Returns `true` if the counter is in one of its two saturated states.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.min() || self.value == self.max()
    }

    /// Returns `true` if the counter is one step away from saturation
    /// (the state the paper's modified automaton gates).
    #[inline]
    pub fn is_nearly_saturated_boundary(&self) -> bool {
        self.value == self.max() - 1 || self.value == self.min() + 1
    }

    /// The centered magnitude `|2*value + 1|` used by the paper to grade
    /// tagged-counter confidence (1 = weak, `2^bits - 1` = saturated).
    #[inline]
    pub fn centered_magnitude(&self) -> u8 {
        (2 * i16::from(self.value) + 1).unsigned_abs() as u8
    }

    /// Sets the counter to the weak state agreeing with `taken`
    /// (0 for taken, -1 for not taken) — the TAGE allocation initialisation.
    #[inline]
    pub fn set_weak(&mut self, taken: bool) {
        self.value = if taken { 0 } else { -1 };
    }

    /// Directly sets the value (clamped to the representable range).
    #[inline]
    pub fn set(&mut self, value: i8) {
        self.value = value.clamp(self.min(), self.max());
    }
}

impl fmt::Display for SignedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}b", self.value, self.bits)
    }
}

/// An n-bit unsigned saturating counter.
///
/// # Example
///
/// ```
/// use tage_predictors::counter::UnsignedCounter;
///
/// let mut u = UnsignedCounter::new(2); // range [0, 3]
/// u.increment();
/// u.increment();
/// u.increment();
/// u.increment();
/// assert_eq!(u.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnsignedCounter {
    value: u8,
    bits: u8,
}

impl UnsignedCounter {
    /// Creates a counter of the given width, initialised to zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not in `1..=8`.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..=8).contains(&bits),
            "counter width must be in 1..=8 bits"
        );
        UnsignedCounter { value: 0, bits }
    }

    /// Creates a counter with an explicit initial value (clamped).
    pub fn with_value(bits: u8, value: u8) -> Self {
        let mut c = UnsignedCounter::new(bits);
        c.value = value.min(c.max());
        c
    }

    /// Width in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u8 {
        self.value
    }

    /// Maximum representable value.
    #[inline]
    pub fn max(&self) -> u8 {
        if self.bits == 8 {
            u8::MAX
        } else {
            (1u8 << self.bits) - 1
        }
    }

    /// Saturating increment.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max() {
            self.value += 1;
        }
    }

    /// Saturating decrement.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Returns `true` if the counter is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.value == 0
    }

    /// Returns `true` if the counter is at its maximum.
    #[inline]
    pub fn is_saturated(&self) -> bool {
        self.value == self.max()
    }

    /// Resets the counter to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Clears a single bit of the counter (the graceful "one-bit shift"
    /// aging used for the TAGE useful counters: clearing bit 0 then bit 1
    /// alternately halves the population of useful entries).
    #[inline]
    pub fn clear_bit(&mut self, bit: u8) {
        self.value &= !(1 << bit);
    }

    /// Directly sets the value (clamped).
    #[inline]
    pub fn set(&mut self, value: u8) {
        self.value = value.min(self.max());
    }
}

impl fmt::Display for UnsignedCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}b", self.value, self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_counter_saturates_at_both_ends() {
        let mut c = SignedCounter::new(3);
        for _ in 0..20 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
        for _ in 0..20 {
            c.decrement();
        }
        assert_eq!(c.value(), -4);
        assert!(c.is_saturated());
    }

    #[test]
    fn signed_counter_weak_states() {
        assert!(SignedCounter::with_value(3, 0).is_weak());
        assert!(SignedCounter::with_value(3, -1).is_weak());
        assert!(!SignedCounter::with_value(3, 1).is_weak());
        assert!(!SignedCounter::with_value(3, -2).is_weak());
    }

    #[test]
    fn signed_counter_prediction_follows_sign() {
        assert!(SignedCounter::with_value(3, 0).predict_taken());
        assert!(SignedCounter::with_value(3, 3).predict_taken());
        assert!(!SignedCounter::with_value(3, -1).predict_taken());
        assert!(!SignedCounter::with_value(3, -4).predict_taken());
    }

    #[test]
    fn centered_magnitude_matches_paper_classes() {
        // 3-bit counter: |2*ctr+1| in {1, 3, 5, 7}.
        assert_eq!(SignedCounter::with_value(3, 0).centered_magnitude(), 1);
        assert_eq!(SignedCounter::with_value(3, -1).centered_magnitude(), 1);
        assert_eq!(SignedCounter::with_value(3, 1).centered_magnitude(), 3);
        assert_eq!(SignedCounter::with_value(3, -2).centered_magnitude(), 3);
        assert_eq!(SignedCounter::with_value(3, 2).centered_magnitude(), 5);
        assert_eq!(SignedCounter::with_value(3, -3).centered_magnitude(), 5);
        assert_eq!(SignedCounter::with_value(3, 3).centered_magnitude(), 7);
        assert_eq!(SignedCounter::with_value(3, -4).centered_magnitude(), 7);
    }

    #[test]
    fn nearly_saturated_boundary_detection() {
        assert!(SignedCounter::with_value(3, 2).is_nearly_saturated_boundary());
        assert!(SignedCounter::with_value(3, -3).is_nearly_saturated_boundary());
        assert!(!SignedCounter::with_value(3, 3).is_nearly_saturated_boundary());
        assert!(!SignedCounter::with_value(3, 0).is_nearly_saturated_boundary());
    }

    #[test]
    fn set_weak_matches_direction() {
        let mut c = SignedCounter::new(3);
        c.set_weak(true);
        assert_eq!(c.value(), 0);
        assert!(c.predict_taken());
        c.set_weak(false);
        assert_eq!(c.value(), -1);
        assert!(!c.predict_taken());
    }

    #[test]
    fn update_moves_towards_outcome() {
        let mut c = SignedCounter::new(2);
        c.update(true);
        assert_eq!(c.value(), 0);
        c.update(true);
        assert_eq!(c.value(), 1);
        c.update(false);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn with_value_clamps() {
        assert_eq!(SignedCounter::with_value(3, 100).value(), 3);
        assert_eq!(SignedCounter::with_value(3, -100).value(), -4);
        assert_eq!(UnsignedCounter::with_value(2, 200).value(), 3);
    }

    #[test]
    #[should_panic(expected = "counter width must be in 1..=7 bits")]
    fn signed_counter_rejects_zero_width() {
        SignedCounter::new(0);
    }

    #[test]
    #[should_panic(expected = "counter width must be in 1..=8 bits")]
    fn unsigned_counter_rejects_wide_width() {
        UnsignedCounter::new(9);
    }

    #[test]
    fn unsigned_counter_saturates_and_resets() {
        let mut u = UnsignedCounter::new(2);
        for _ in 0..10 {
            u.increment();
        }
        assert_eq!(u.value(), 3);
        assert!(u.is_saturated());
        u.decrement();
        assert_eq!(u.value(), 2);
        u.reset();
        assert!(u.is_zero());
        u.decrement();
        assert!(u.is_zero());
    }

    #[test]
    fn unsigned_clear_bit_behaves_like_graceful_aging() {
        let mut u = UnsignedCounter::with_value(2, 3);
        u.clear_bit(0);
        assert_eq!(u.value(), 2);
        u.clear_bit(1);
        assert_eq!(u.value(), 0);
    }

    #[test]
    fn eight_bit_unsigned_counter_max() {
        let u = UnsignedCounter::with_value(8, 255);
        assert_eq!(u.value(), 255);
        assert!(u.is_saturated());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", SignedCounter::new(3)).is_empty());
        assert!(!format!("{}", UnsignedCounter::new(2)).is_empty());
    }
}
