//! Design-space exploration determinism contract: the `--explore` report —
//! including the appended Pareto front — is byte-identical across worker
//! counts, engines, and kill/`--resume` splits, because the front is
//! derived from the rendered timing-free cell bytes rather than in-memory
//! floats.

use std::path::PathBuf;

use tage_bench::campaign::{
    run_campaign_checkpointed, run_campaign_with_engine, validate_report, CampaignSpec,
};
use tage_bench::cellstore::CellStore;
use tage_bench::explore::{attach_explore_section, enumerate_geometries, explore_predictors};
use tage_sim::point::SchemeSpec;
use tage_sim::scenarios::ScenarioSpec;
use tage_sim::EngineKind;
use tage_traces::suites;

const BUDGET_BITS: u64 = 32 * 1024;
const MAX_GEOMETRIES: usize = 3;

fn explore_grid() -> CampaignSpec {
    CampaignSpec {
        label: "explore-determinism".to_string(),
        predictors: explore_predictors(enumerate_geometries(BUDGET_BITS, MAX_GEOMETRIES)),
        schemes: vec![SchemeSpec::parse("storage-free").unwrap()],
        suites: vec![suites::cbp1_mini().into()],
        scenarios: vec![ScenarioSpec::parse("baseline").unwrap()],
        branches_per_trace: 2_000,
    }
}

fn rendered_explore_report(workers: usize, engine: EngineKind) -> String {
    let mut report = run_campaign_with_engine(&explore_grid(), workers, engine).unwrap();
    attach_explore_section(&mut report, BUDGET_BITS, MAX_GEOMETRIES).unwrap();
    report.render_json(false)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tage-explore-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn explore_reports_are_byte_identical_across_workers_and_engines() {
    let reference = rendered_explore_report(1, EngineKind::Multilane);
    assert!(reference.contains("\"explore\":"));
    assert!(reference.contains("\"pareto\":"));
    for (workers, engine) in [(4, EngineKind::Multilane), (2, EngineKind::Scalar)] {
        assert_eq!(
            reference,
            rendered_explore_report(workers, engine),
            "explore report depends on ({workers} workers, {engine:?})"
        );
    }
}

#[test]
fn explore_report_survives_a_mid_grid_kill_and_resume() {
    let reference = rendered_explore_report(1, EngineKind::Multilane);
    let dir = temp_dir("kill-resume");
    let checkpoint = CellStore::new(&dir).unwrap();

    // First leg: stop after one cell (a simulated kill).
    let first = run_campaign_checkpointed(
        &explore_grid(),
        2,
        EngineKind::Multilane,
        &checkpoint,
        Some(1),
    )
    .unwrap();
    assert_eq!(first.executed, 1);
    assert!(first.remaining > 0);

    // Resume leg: restored cells come back as rendered bytes, computed
    // cells as floats — the Pareto front must not notice the difference.
    let resumed =
        run_campaign_checkpointed(&explore_grid(), 2, EngineKind::Multilane, &checkpoint, None)
            .unwrap();
    assert_eq!(resumed.restored, 1);
    assert_eq!(resumed.remaining, 0);
    let mut report = resumed.report;
    attach_explore_section(&mut report, BUDGET_BITS, MAX_GEOMETRIES).unwrap();
    assert_eq!(reference, report.render_json(false));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explore_report_round_trips_through_schema_validation() {
    let json = rendered_explore_report(2, EngineKind::Multilane);
    let validated = validate_report(&json).expect("explore report validates");
    assert_eq!(validated.points, MAX_GEOMETRIES);
    // Breaking a Pareto entry's ranked fields must fail validation.
    let tampered = json.replace("\"mean_mpki\": ", "\"renamed_mpki\": ");
    assert!(validate_report(&tampered).is_err());
}
