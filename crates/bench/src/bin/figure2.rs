//! Figure 2: distribution of predictions (Pcov) and of mispredictions (MPKI
//! contribution) over the 7 classes, CBP-1-like traces, standard automaton,
//! for the three predictor sizes.

use tage_bench::{branches_from_args, print_header};
use tage_confidence::PredictionClass;
use tage_sim::experiment::{class_distribution, standard_configs, ClassDistributionRow};
use tage_sim::report::TextTable;
use tage_traces::{suites, Suite};

fn print_distribution(config_name: &str, rows: &[ClassDistributionRow]) {
    println!("--- {config_name} ---");
    let mut headers = vec!["trace"];
    headers.extend(PredictionClass::ALL.iter().map(|c| c.label()));
    headers.push("MPKI");
    let mut pcov_table = TextTable::new(headers.clone());
    let mut mpki_table = TextTable::new(headers);
    for row in rows {
        let mut cells = vec![row.trace_name.clone()];
        cells.extend(row.pcov.iter().map(|p| format!("{:.3}", p)));
        cells.push(format!("{:.2}", row.total_mpki));
        pcov_table.row(cells);
        let mut cells = vec![row.trace_name.clone()];
        cells.extend(row.mpki_contribution.iter().map(|p| format!("{:.3}", p)));
        cells.push(format!("{:.2}", row.total_mpki));
        mpki_table.row(cells);
    }
    println!("prediction coverage (left plot):");
    print!("{}", pcov_table.render());
    println!("misprediction contribution in MPKI (right plot):");
    print!("{}", mpki_table.render());
    println!();
}

fn run(suite: &Suite, branches: usize) {
    for config in standard_configs() {
        let rows = class_distribution(&config, suite, branches);
        print_distribution(&config.name(), &rows);
    }
}

fn main() {
    let branches = branches_from_args();
    print_header(
        "Figure 2 — class distributions, CBP-1-like, standard automaton",
        branches,
    );
    run(&suites::cbp1_like(), branches);
}
