//! A small deterministic pseudo-random number generator.
//!
//! The synthetic workload generators and the probabilistic counter automaton
//! need a reproducible random source whose behaviour is stable across
//! platforms, compiler versions and dependency upgrades. A tiny SplitMix64
//! generator is used throughout the workspace for that purpose rather than a
//! third-party generator whose stream could change between releases.

/// A SplitMix64 pseudo-random number generator.
///
/// SplitMix64 passes BigCrush, has a period of 2^64 and is composed of a
/// handful of arithmetic operations — appropriate both for workload
/// generation and as a model of a cheap hardware pseudo-random source (the
/// paper's probabilistic saturation could be driven by an LFSR).
///
/// # Example
///
/// ```
/// use tage_traces::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Identical seeds yield
    /// identical streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Rebuilds a generator from a raw state previously captured with
    /// [`SplitMix64::state`] — the continuation of that exact stream, used
    /// by predictor snapshots to freeze and resume RNG-dependent runs.
    #[inline]
    pub fn from_state(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// The generator's raw internal state (for snapshot serialization).
    #[inline]
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Returns the next 64-bit pseudo-random value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns the next 32-bit pseudo-random value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift reduction: unbiased enough for workload generation
        // (bias is < 2^-64 * bound) and branch-free.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Returns an integer drawn from a (truncated) geometric-like
    /// distribution with mean approximately `mean`, bounded by `max`.
    ///
    /// Used for instruction gaps between branches.
    #[inline]
    pub fn next_gap(&mut self, mean: u32, max: u32) -> u32 {
        if mean == 0 {
            return 0;
        }
        let p = 1.0 / f64::from(mean + 1);
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()) as u32;
        g.min(max)
    }

    /// Derives a new, statistically independent generator from this one
    /// (useful to give each synthetic branch its own stream).
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x1234_5678_9ABC_DEF0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_yield_identical_streams() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(99);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound must be non-zero")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes_are_deterministic() {
        let mut rng = SplitMix64::new(11);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_probability_is_roughly_respected() {
        let mut rng = SplitMix64::new(3);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((0.23..0.27).contains(&rate), "rate = {rate}");
    }

    #[test]
    fn gap_mean_is_roughly_respected_and_bounded() {
        let mut rng = SplitMix64::new(17);
        let n = 50_000u32;
        let mut sum = 0u64;
        for _ in 0..n {
            let g = rng.next_gap(6, 64);
            assert!(g <= 64);
            sum += u64::from(g);
        }
        let mean = sum as f64 / f64::from(n);
        assert!((4.0..8.0).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn zero_mean_gap_is_always_zero() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..100 {
            assert_eq!(rng.next_gap(0, 100), 0);
        }
    }

    #[test]
    fn split_produces_independent_stream() {
        let mut parent = SplitMix64::new(123);
        let mut child = parent.split();
        // Streams should not be identical.
        let equal = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert!(equal < 4);
    }

    #[test]
    fn bits_look_balanced() {
        let mut rng = SplitMix64::new(2024);
        let mut ones = 0u64;
        let samples = 10_000;
        for _ in 0..samples {
            ones += u64::from(rng.next_u64().count_ones());
        }
        let mean_ones = ones as f64 / samples as f64;
        assert!((31.0..33.0).contains(&mean_ones), "mean ones = {mean_ones}");
    }
}
