//! The wire form of a campaign grid: what `POST /campaigns` accepts and
//! what the journal persists.
//!
//! A [`GridRequest`] is the declarative half of a [`CampaignSpec`]: axis
//! *tokens* rather than resolved axis values, so it can be serialized
//! canonically, digested into a campaign id, journaled, and re-resolved
//! after a daemon restart. Canonicalization matters: the campaign id is
//! the fnv64 of [`GridRequest::to_json`], so a resubmitted grid — however
//! the client formatted its JSON — maps onto the same campaign and is
//! answered from the already-running (or already-finished) one.

use tage_sim::point::{PredictorSpec, SchemeSpec};
use tage_sim::scenarios::ScenarioSpec;
use tage_traces::jsonish;
use tage_traces::snapshot::fnv1a64;
use tage_traces::source::{SamplingSpec, SourceSuite};
use tage_traces::suites;

use crate::campaign::CampaignSpec;

/// Default `branches_per_trace` when a request omits it (the `tage-bench`
/// CLI default).
pub const DEFAULT_BRANCHES: usize = 20_000;

/// A declarative campaign grid as submitted over the wire: axis tokens
/// plus the per-trace length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridRequest {
    /// Campaign label recorded in the report header.
    pub label: String,
    /// Predictor axis tokens (`tage-16k`, `gshare`, `geometry:PATH`, ...).
    pub predictors: Vec<String>,
    /// Confidence-scheme axis tokens.
    pub schemes: Vec<String>,
    /// Synthetic suite registry tokens (may be empty when `trace_dirs` is
    /// not).
    pub suites: Vec<String>,
    /// Directories of `*.trace` files, each becoming a file-backed suite.
    pub trace_dirs: Vec<String>,
    /// Scenario axis tokens.
    pub scenarios: Vec<String>,
    /// Conditional branches per synthetic trace.
    pub branches_per_trace: usize,
}

impl GridRequest {
    /// Renders the canonical JSON form — the bytes the campaign id digests
    /// and the journal stores. Field order, spacing, and escaping are
    /// fixed; parsing then re-rendering any equivalent request yields
    /// identical bytes.
    pub fn to_json(&self) -> String {
        let array = |tokens: &[String]| {
            let quoted: Vec<String> = tokens
                .iter()
                .map(|t| format!("\"{}\"", jsonish::escape(t)))
                .collect();
            format!("[{}]", quoted.join(", "))
        };
        format!(
            "{{\n \"label\": \"{}\",\n \"predictors\": {},\n \"schemes\": {},\n \"suites\": {},\n \"trace_dirs\": {},\n \"scenarios\": {},\n \"branches_per_trace\": {}\n}}\n",
            jsonish::escape(&self.label),
            array(&self.predictors),
            array(&self.schemes),
            array(&self.suites),
            array(&self.trace_dirs),
            array(&self.scenarios),
            self.branches_per_trace
        )
    }

    /// The content-addressed campaign id of this grid: 16 hex digits of
    /// the canonical JSON's fnv64. Stable across clients, restarts, and
    /// formatting differences.
    pub fn id(&self) -> String {
        format!("{:016x}", fnv1a64(self.to_json().as_bytes()))
    }

    /// Parses a request object (already [`jsonish::validate_document`]-ed
    /// by the router). `label` defaults to `"campaign"`, `scenarios` to
    /// `baseline`, `branches_per_trace` to [`DEFAULT_BRANCHES`]; the axis
    /// arrays are required (suites may be empty only when trace_dirs is
    /// not).
    ///
    /// # Errors
    ///
    /// A human-readable string naming the missing or empty field.
    pub fn parse(json: &str) -> Result<GridRequest, String> {
        let array = |key: &str| {
            jsonish::string_array_field(json, key)
                .ok_or_else(|| format!("missing or malformed string array \"{key}\""))
        };
        let request = GridRequest {
            label: jsonish::string_field(json, "label").unwrap_or_else(|| "campaign".to_string()),
            predictors: array("predictors")?,
            schemes: array("schemes")?,
            suites: jsonish::string_array_field(json, "suites").unwrap_or_default(),
            trace_dirs: jsonish::string_array_field(json, "trace_dirs").unwrap_or_default(),
            scenarios: jsonish::string_array_field(json, "scenarios")
                .unwrap_or_else(|| vec!["baseline".to_string()]),
            branches_per_trace: match jsonish::number_field(json, "branches_per_trace") {
                Some(n) if (1.0..=1e12).contains(&n) => n as usize,
                Some(n) => return Err(format!("branches_per_trace out of range: {n}")),
                None => DEFAULT_BRANCHES,
            },
        };
        if request.predictors.is_empty() {
            return Err("the predictor axis is empty".to_string());
        }
        if request.schemes.is_empty() {
            return Err("the scheme axis is empty".to_string());
        }
        if request.scenarios.is_empty() {
            return Err("the scenario axis is empty".to_string());
        }
        if request.suites.is_empty() && request.trace_dirs.is_empty() {
            return Err("no suites: both \"suites\" and \"trace_dirs\" are empty".to_string());
        }
        Ok(request)
    }

    /// Resolves the tokens into an executable [`CampaignSpec`]: predictor /
    /// scheme / scenario tokens through their parsers, suite tokens through
    /// the registry, trace dirs through [`SourceSuite::from_dir`].
    ///
    /// Suite tokens may carry a phase-sampling plan in the canonical
    /// `sample:<suite>[:interval[:k[:seed]]]` form
    /// ([`SamplingSpec::parse_token`]); the base suite is resolved through
    /// the registry and tagged with the plan, so sampled grids travel over
    /// the wire as ordinary suite tokens.
    ///
    /// # Errors
    ///
    /// A human-readable string naming the unresolvable token.
    pub fn to_spec(&self) -> Result<CampaignSpec, String> {
        let mut predictors = Vec::new();
        for token in &self.predictors {
            predictors.push(
                PredictorSpec::parse(token)
                    .ok_or_else(|| format!("unknown predictor token \"{token}\""))?,
            );
        }
        let mut schemes = Vec::new();
        for token in &self.schemes {
            schemes.push(
                SchemeSpec::parse(token)
                    .ok_or_else(|| format!("unknown scheme token \"{token}\""))?,
            );
        }
        let mut scenarios = Vec::new();
        for token in &self.scenarios {
            scenarios.push(
                ScenarioSpec::parse(token)
                    .ok_or_else(|| format!("unknown scenario token \"{token}\""))?,
            );
        }
        let mut suite_list = Vec::new();
        for token in &self.suites {
            let (base, sampling) = match SamplingSpec::parse_token(token) {
                Some((base, spec)) => (base, Some(spec)),
                None if token.starts_with("sample:") => {
                    return Err(format!("malformed sample suite token \"{token}\""))
                }
                None => (token.as_str(), None),
            };
            let suite =
                suites::by_name(base).ok_or_else(|| format!("unknown suite token \"{token}\""))?;
            let mut suite = SourceSuite::from_suite(&suite);
            if let Some(spec) = sampling {
                suite = suite.with_sampling(spec);
            }
            suite_list.push(suite);
        }
        for dir in &self.trace_dirs {
            suite_list.push(
                SourceSuite::from_dir(dir).map_err(|error| format!("trace_dir {dir}: {error}"))?,
            );
        }
        Ok(CampaignSpec {
            label: self.label.clone(),
            predictors,
            schemes,
            suites: suite_list,
            scenarios,
            branches_per_trace: self.branches_per_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> GridRequest {
        GridRequest {
            label: "t".to_string(),
            predictors: vec!["tage-16k".to_string(), "gshare".to_string()],
            schemes: vec!["storage-free".to_string(), "jrs-classic".to_string()],
            suites: vec!["cbp1-mini".to_string()],
            trace_dirs: Vec::new(),
            scenarios: vec!["baseline".to_string()],
            branches_per_trace: 1_000,
        }
    }

    #[test]
    fn canonical_json_round_trips_and_ids_are_format_independent() {
        let request = request();
        let parsed = GridRequest::parse(&request.to_json()).unwrap();
        assert_eq!(parsed, request);
        assert_eq!(parsed.id(), request.id());
        // Different formatting, same content: same id.
        let sloppy = "{\"branches_per_trace\":1000,\"scenarios\":[\"baseline\"],\"suites\":[\"cbp1-mini\"],\"schemes\":[\"storage-free\",\"jrs-classic\"],\"predictors\":[\"tage-16k\",\"gshare\"],\"label\":\"t\"}";
        assert_eq!(GridRequest::parse(sloppy).unwrap().id(), request.id());
        // Different content: different id.
        let mut other = request.clone();
        other.branches_per_trace = 2_000;
        assert_ne!(other.id(), request.id());
    }

    #[test]
    fn parse_applies_defaults_and_rejects_empty_axes() {
        let minimal =
            r#"{"predictors": ["tage-16k"], "schemes": ["storage-free"], "suites": ["cbp1-mini"]}"#;
        let parsed = GridRequest::parse(minimal).unwrap();
        assert_eq!(parsed.label, "campaign");
        assert_eq!(parsed.scenarios, vec!["baseline".to_string()]);
        assert_eq!(parsed.branches_per_trace, DEFAULT_BRANCHES);

        for (broken, what) in [
            (r#"{"schemes": ["x"], "suites": ["y"]}"#, "predictors"),
            (
                r#"{"predictors": [], "schemes": ["x"], "suites": ["y"]}"#,
                "predictor",
            ),
            (r#"{"predictors": ["x"], "suites": ["y"]}"#, "schemes"),
            (r#"{"predictors": ["x"], "schemes": ["y"]}"#, "trace_dirs"),
            (
                r#"{"predictors": ["x"], "schemes": ["y"], "suites": ["z"], "branches_per_trace": -5}"#,
                "branches_per_trace",
            ),
        ] {
            let error = GridRequest::parse(broken).unwrap_err();
            assert!(error.contains(what), "{broken} -> {error}");
        }
    }

    #[test]
    fn specs_resolve_tokens_and_name_bad_ones() {
        let spec = request().to_spec().unwrap();
        assert_eq!(spec.predictors.len(), 2);
        assert_eq!(spec.schemes.len(), 2);
        assert_eq!(spec.suites.len(), 1);
        assert_eq!(spec.branches_per_trace, 1_000);

        let mut bad = request();
        bad.predictors = vec!["not-a-predictor".to_string()];
        assert!(bad.to_spec().unwrap_err().contains("not-a-predictor"));
        let mut bad = request();
        bad.suites = vec!["no-such-suite".to_string()];
        assert!(bad.to_spec().unwrap_err().contains("no-such-suite"));
        let mut bad = request();
        bad.trace_dirs = vec!["/no/such/dir".to_string()];
        assert!(bad.to_spec().unwrap_err().contains("/no/such/dir"));
    }

    #[test]
    fn sample_suite_tokens_resolve_to_sampled_suites() {
        let mut sampled = request();
        sampled.suites = vec!["sample:cbp1-mini:250:4:7".to_string()];
        let spec = sampled.to_spec().unwrap();
        assert_eq!(spec.suites.len(), 1);
        let plan = spec.suites[0].sampling().unwrap();
        assert_eq!((plan.interval, plan.k, plan.seed), (250, 4, 7));
        assert_eq!(spec.suites[0].name(), "sample:CBP-1-mini:250:4:7");
        // A sampled grid digests differently from the full grid.
        assert_ne!(sampled.id(), request().id());

        let mut bad = request();
        bad.suites = vec!["sample:cbp1-mini:0:4".to_string()];
        assert!(bad.to_spec().unwrap_err().contains("malformed sample"));
        let mut bad = request();
        bad.suites = vec!["sample:no-such-suite:250".to_string()];
        assert!(bad.to_spec().unwrap_err().contains("no-such-suite"));
    }
}
