//! Figure 6: misprediction rate (MKP) per prediction class for 7 CBP-2
//! traces, 64 Kbit predictor, **modified** 3-bit counter automaton.

use tage::{CounterAutomaton, TageConfig};
use tage_bench::{branches_from_args, print_header};
use tage_confidence::PredictionClass;
use tage_sim::experiment::per_class_rates;
use tage_sim::report::{mkp, TextTable};
use tage_traces::suites;

const FIGURE6_TRACES: [&str; 7] = [
    "164.gzip",
    "175.vpr",
    "176.gcc",
    "181.mcf",
    "186.crafty",
    "197.parser",
    "201.compress",
];

fn main() {
    let branches = branches_from_args();
    print_header(
        "Figure 6 — per-class misprediction rates, 64 Kbit, modified automaton (p = 1/128)",
        branches,
    );
    let config = TageConfig::medium().with_automaton(CounterAutomaton::paper_default());
    let rows = per_class_rates(&config, &suites::cbp2_like(), &FIGURE6_TRACES, branches);
    let mut headers = vec!["trace"];
    headers.extend(PredictionClass::ALL.iter().map(|c| c.label()));
    headers.push("Average");
    let mut table = TextTable::new(headers);
    for row in &rows {
        let mut cells = vec![row.trace_name.clone()];
        cells.extend(row.mprate_mkp.iter().map(|&r| mkp(r)));
        cells.push(mkp(row.average_mkp));
        table.row(cells);
    }
    println!("misprediction rate per class, in MKP:");
    print!("{}", table.render());
    println!();
    println!("Compare with figure4: the Stag class should now be in the few-MKP range.");
}
