//! Running whole workload suites and aggregating the results.
//!
//! Suite runs are sharded per source across scoped threads
//! ([`crate::engine::par_map`]): every worker opens its own stream from the
//! suite's [`SourceSpec`]s — an on-the-fly synthetic generator, or a
//! bounded-memory binary file reader — and drives it through the engine with
//! a cold predictor. No trace is ever materialized: the classic
//! [`run_suite`] over a synthetic [`Suite`] is itself a thin adapter that
//! streams each trace instead of calling `generate`. Per-source reports are
//! merged into the aggregate in suite order as they stream back, so the
//! parallel result is **bit-identical** to a serial run — wall-clock drops
//! from `sum(traces)` to roughly `max(trace)`. For parallelism *within* one
//! very long source, see [`crate::segment`].

use core::fmt;
use std::ops::Range;

use tage::TageBlueprint;
use tage_confidence::ConfidenceReport;
use tage_traces::format::FormatError;
use tage_traces::source::{AnySource, BranchSource, SourceSpec, SourceSuite};
use tage_traces::Suite;

use crate::engine::{default_parallelism, par_map};
use crate::multilane::{run_specs_multilane, MultilaneEngine, DEFAULT_LANES};
use crate::runner::{run_source, RunOptions, TraceRunResult};

/// The outcome of running one predictor configuration over every trace of a
/// suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRunResult {
    /// Name of the suite (`"CBP-1-like"`, `"CBP-2-like"`).
    pub suite_name: String,
    /// Name of the predictor configuration.
    pub config_name: String,
    /// Per-trace results, in suite order.
    pub traces: Vec<TraceRunResult>,
    /// Aggregate report over all traces of the suite.
    pub aggregate: ConfidenceReport,
}

impl SuiteRunResult {
    /// Arithmetic mean of the per-trace MPKI values (the paper reports
    /// per-trace bars and per-suite averages).
    pub fn mean_mpki(&self) -> f64 {
        if self.traces.is_empty() {
            return 0.0;
        }
        self.traces.iter().map(TraceRunResult::mpki).sum::<f64>() / self.traces.len() as f64
    }

    /// Aggregate misprediction rate in MKP over all predictions of the
    /// suite.
    pub fn aggregate_mkp(&self) -> f64 {
        self.aggregate.mkp()
    }

    /// Looks up the result of one trace by name.
    pub fn trace(&self, name: &str) -> Option<&TraceRunResult> {
        self.traces.iter().find(|t| t.trace_name == name)
    }
}

impl fmt::Display for SuiteRunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: mean {:.2} MPKI, aggregate {:.1} MKP over {} traces",
            self.config_name,
            self.suite_name,
            self.mean_mpki(),
            self.aggregate_mkp(),
            self.traces.len()
        )
    }
}

/// Runs the predictor described by `blueprint` — a [`tage::TageConfig`]
/// preset or an explicit [`tage::TageGeometry`] — over every trace of
/// `suite`, generating `branches_per_trace` conditional branches per trace,
/// sharded across one worker per available hardware thread.
pub fn run_suite(
    blueprint: &dyn TageBlueprint,
    suite: &Suite,
    branches_per_trace: usize,
    options: &RunOptions,
) -> SuiteRunResult {
    run_suite_with_parallelism(
        blueprint,
        suite,
        branches_per_trace,
        options,
        default_parallelism(),
    )
}

/// [`run_suite`] with an explicit worker count.
///
/// `workers == 1` runs the traces serially on the calling thread; any worker
/// count produces the same, bit-identical result (per-trace runs are
/// independent and deterministic, and aggregation happens in suite order).
///
/// Each worker streams its trace through a
/// [`tage_traces::source::SyntheticSource`] instead of materializing it, so
/// suite memory is bounded by `workers ×` the engine batch size.
pub fn run_suite_with_parallelism(
    blueprint: &dyn TageBlueprint,
    suite: &Suite,
    branches_per_trace: usize,
    options: &RunOptions,
    workers: usize,
) -> SuiteRunResult {
    run_suite_sources(
        blueprint,
        &SourceSuite::from_suite(suite),
        branches_per_trace,
        options,
        workers,
    )
    .expect("synthetic sources are infallible")
}

/// Runs `config` over every source of a streaming [`SourceSuite`] — the
/// out-of-core generalization of [`run_suite`]: sources may be synthetic
/// generators or on-disk binary traces, and every worker opens its own
/// independent stream.
///
/// `conditional_branches` sizes synthetic sources; file-backed sources yield
/// whatever their file holds.
///
/// # Errors
///
/// Returns the first [`FormatError`] in suite order when a source cannot be
/// opened or read (the remaining sources still execute, their results are
/// discarded).
pub fn run_suite_sources(
    blueprint: &dyn TageBlueprint,
    suite: &SourceSuite,
    conditional_branches: usize,
    options: &RunOptions,
    workers: usize,
) -> Result<SuiteRunResult, FormatError> {
    let geometry = blueprint.tage_geometry();
    let specs = suite.sources();
    let mut traces = Vec::with_capacity(specs.len());
    if options.adaptive_target_mkp.is_some() {
        // The adaptive controller steers one predictor mid-run and has no
        // batched equivalent: shard scalar runs, one worker per source.
        let outcomes = par_map(specs, workers, |spec: &SourceSpec| {
            let mut source = spec.open(conditional_branches)?;
            run_source(&geometry, &mut source, options)
        });
        for outcome in outcomes {
            traces.push(outcome?);
        }
    } else {
        // Sources shard across workers in contiguous chunks; each worker
        // lane-batches its chunk through one multilane engine. Both levels
        // are bit-identical to a serial scalar run, so any worker count
        // (and any lane count) produces the same result.
        let chunks = chunk_ranges(specs.len(), workers);
        let outcomes = par_map(&chunks, workers, |range: &Range<usize>| {
            run_specs_multilane(
                &geometry,
                &specs[range.clone()],
                conditional_branches,
                options,
                DEFAULT_LANES,
            )
        });
        for outcome in outcomes {
            traces.extend(outcome?);
        }
    }
    let mut aggregate = ConfidenceReport::new();
    for result in &traces {
        aggregate.merge(&result.report);
    }
    Ok(SuiteRunResult {
        suite_name: suite.name().to_string(),
        config_name: geometry.name(),
        traces,
        aggregate,
    })
}

/// Splits `len` items into at most `workers` contiguous, balanced ranges —
/// the per-worker shards of a multilane suite run. Chunk order equals suite
/// order, so flattening per-chunk results preserves per-source order.
fn chunk_ranges(len: usize, workers: usize) -> Vec<Range<usize>> {
    let chunks = workers.max(1).min(len);
    if chunks == 0 {
        return Vec::new();
    }
    let mut ranges = Vec::with_capacity(chunks);
    let base = len / chunks;
    let extra = len % chunks;
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// A reusable, allocation-free suite runner: sources opened once, one
/// persistent [`MultilaneEngine`], and a [`SuiteRunResult`] whose buffers
/// are refilled in place on every [`SuiteScratch::run`].
///
/// After the first run, a rerun performs **zero heap allocations**: sources
/// rewind in place, lane predictors reset in place, and the per-trace
/// results reuse their string capacity. The throughput bin's
/// `suite_parallel` measurement gates on exactly this.
#[derive(Debug)]
pub struct SuiteScratch {
    engine: MultilaneEngine,
    sources: Vec<AnySource>,
    result: SuiteRunResult,
}

impl SuiteScratch {
    /// Opens every source of `suite` and prepares the persistent engine and
    /// result buffers, running `lanes` streams in lockstep.
    ///
    /// # Errors
    ///
    /// Returns the first [`FormatError`] opening any source.
    pub fn new(
        blueprint: &dyn TageBlueprint,
        suite: &SourceSuite,
        conditional_branches: usize,
        options: &RunOptions,
        lanes: usize,
    ) -> Result<Self, FormatError> {
        let geometry = blueprint.tage_geometry();
        let mut sources = Vec::with_capacity(suite.sources().len());
        for spec in suite.sources() {
            sources.push(spec.open(conditional_branches)?);
        }
        let traces = (0..sources.len())
            .map(|_| MultilaneEngine::placeholder_result())
            .collect();
        Ok(SuiteScratch {
            result: SuiteRunResult {
                suite_name: suite.name().to_string(),
                config_name: geometry.name(),
                traces,
                aggregate: ConfidenceReport::new(),
            },
            engine: MultilaneEngine::new(geometry, options, lanes),
            sources,
        })
    }

    /// Rewinds every source and reruns the whole suite, refilling the
    /// retained result in place — bit-identical to [`run_suite_sources`]
    /// with any worker count, and allocation-free after the first run.
    ///
    /// # Errors
    ///
    /// Returns the lowest-indexed [`FormatError`] any source reported while
    /// rewinding or streaming.
    pub fn run(&mut self) -> Result<&SuiteRunResult, FormatError> {
        for source in &mut self.sources {
            source.reset()?;
        }
        self.engine
            .run_into(&mut self.sources, &mut self.result.traces)?;
        self.result.aggregate = ConfidenceReport::new();
        for trace in &self.result.traces {
            self.result.aggregate.merge(&trace.report);
        }
        Ok(&self.result)
    }

    /// The result of the most recent [`SuiteScratch::run`].
    pub fn result(&self) -> &SuiteRunResult {
        &self.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::TageConfig;
    use tage_traces::suites;

    fn tiny_suite() -> Suite {
        let full = suites::cbp1_like();
        Suite::new(
            "tiny",
            vec![
                full.trace("FP-1").unwrap().clone(),
                full.trace("SERV-2").unwrap().clone(),
            ],
        )
    }

    #[test]
    fn suite_run_covers_every_trace_and_aggregates() {
        let result = run_suite(
            &TageConfig::small(),
            &tiny_suite(),
            2_000,
            &RunOptions::default(),
        );
        assert_eq!(result.traces.len(), 2);
        assert_eq!(result.aggregate.total().predictions, 4_000);
        assert!(result.mean_mpki() > 0.0);
        assert!(result.aggregate_mkp() > 0.0);
        assert!(result.trace("FP-1").is_some());
        assert!(result.trace("does-not-exist").is_none());
    }

    #[test]
    fn parallel_suite_runs_are_bit_identical_to_serial() {
        let suite = tiny_suite();
        let config = TageConfig::small();
        let serial = run_suite_with_parallelism(&config, &suite, 3_000, &RunOptions::default(), 1);
        for workers in [2, 4, 16] {
            let parallel =
                run_suite_with_parallelism(&config, &suite, 3_000, &RunOptions::default(), workers);
            assert_eq!(serial, parallel, "workers = {workers}");
        }
        let default = run_suite(&config, &suite, 3_000, &RunOptions::default());
        assert_eq!(serial, default);
    }

    #[test]
    fn file_backed_suite_matches_the_synthetic_path_bit_for_bit() {
        use tage_traces::writer::TraceWriter;
        let suite = tiny_suite();
        let config = TageConfig::small();
        let reference = run_suite(&config, &suite, 2_000, &RunOptions::default());

        let dir = std::env::temp_dir().join(format!("tage-suite-files-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for spec in suite.traces() {
            let path = dir.join(format!("{}.trace", spec.name()));
            std::fs::write(&path, TraceWriter::to_binary_bytes(&spec.generate(2_000))).unwrap();
            paths.push(path);
        }
        let files = SourceSuite::from_files("tiny", paths);
        for workers in [1, 4] {
            let streamed =
                run_suite_sources(&config, &files, 2_000, &RunOptions::default(), workers).unwrap();
            assert_eq!(streamed.traces.len(), reference.traces.len());
            for (ours, theirs) in streamed.traces.iter().zip(&reference.traces) {
                assert_eq!(ours, theirs, "workers = {workers}");
            }
            assert_eq!(streamed.aggregate, reference.aggregate);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fp_trace_is_more_predictable_than_server_trace() {
        let result = run_suite(
            &TageConfig::small(),
            &tiny_suite(),
            20_000,
            &RunOptions::default(),
        );
        let fp = result.trace("FP-1").unwrap().mpki();
        let serv = result.trace("SERV-2").unwrap().mpki();
        assert!(serv > fp, "server {serv} MPKI should exceed FP {fp} MPKI");
    }

    #[test]
    fn chunk_ranges_cover_everything_in_order() {
        for (len, workers) in [(0, 4), (1, 4), (5, 2), (8, 3), (20, 16), (3, 1), (7, 100)] {
            let ranges = chunk_ranges(len, workers);
            assert!(
                ranges.len() <= workers.max(1),
                "len {len} workers {workers}"
            );
            let flat: Vec<usize> = ranges.iter().flat_map(|r| r.clone()).collect();
            assert_eq!(
                flat,
                (0..len).collect::<Vec<_>>(),
                "len {len} workers {workers}"
            );
            if len > 0 {
                let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }

    #[test]
    fn suite_scratch_reruns_are_bit_identical_and_match_the_suite_runner() {
        let suite = tiny_suite();
        let config = TageConfig::small();
        let options = RunOptions::default();
        let reference = run_suite(&config, &suite, 2_000, &options);
        let sources = SourceSuite::from_suite(&suite);
        let mut scratch = SuiteScratch::new(&config, &sources, 2_000, &options, 2).unwrap();
        let first = scratch.run().unwrap().clone();
        assert_eq!(first, reference);
        let second = scratch.run().unwrap();
        assert_eq!(*second, reference, "reruns must be bit-identical");
        assert_eq!(*scratch.result(), reference);
    }

    #[test]
    fn adaptive_suite_runs_still_shard_and_aggregate() {
        let suite = tiny_suite();
        let config = TageConfig::small();
        let options = RunOptions::adaptive();
        let serial = run_suite_with_parallelism(&config, &suite, 2_000, &options, 1);
        let parallel = run_suite_with_parallelism(&config, &suite, 2_000, &options, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.traces.len(), 2);
    }

    #[test]
    fn display_mentions_suite_and_config() {
        let result = run_suite(
            &TageConfig::small(),
            &tiny_suite(),
            500,
            &RunOptions::default(),
        );
        let s = format!("{result}");
        assert!(s.contains("tiny"));
        assert!(s.contains("TAGE-16K"));
    }
}
