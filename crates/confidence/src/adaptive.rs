//! Run-time adaptation of the saturation probability (Section 6.2).
//!
//! The paper's fixed 1/128 probability is a compromise: a smaller
//! probability makes the saturated-counter class `Stag` purer (fewer
//! mispredictions) but smaller, a larger probability grows the class at the
//! cost of its misprediction rate. Section 6.2 therefore proposes adapting
//! the probability at run time — between 1/1024 and 1, by factors of two —
//! so as to maximise high-confidence coverage while keeping the
//! high-confidence misprediction rate under a target (10 MKP in the paper's
//! Table 3).

use core::fmt;

use tage::CounterAutomaton;

use crate::class::ConfidenceLevel;

/// Default misprediction-rate target for the high-confidence class, in MKP.
pub const DEFAULT_TARGET_MKP: f64 = 10.0;

/// Default number of high-confidence predictions per adaptation window.
pub const DEFAULT_WINDOW: u64 = 16 * 1024;

/// Monitors the misprediction rate of the high-confidence predictions and
/// steers the saturation probability of the modified counter automaton.
///
/// The controller is driven by the simulation loop:
///
/// 1. call [`AdaptiveSaturationController::observe`] for every prediction
///    with its confidence level and correctness;
/// 2. when `observe` returns `Some(automaton)`, install it on the predictor
///    with [`tage::TagePredictor::set_automaton`].
///
/// # Example
///
/// ```
/// use tage_confidence::{AdaptiveSaturationController, ConfidenceLevel};
///
/// let mut controller = AdaptiveSaturationController::new();
/// // Feed a window of perfectly-predicted high-confidence branches: the
/// // controller relaxes the probability to grow the class.
/// let mut changes = 0;
/// for _ in 0..200_000 {
///     if controller.observe(ConfidenceLevel::High, false).is_some() {
///         changes += 1;
///     }
/// }
/// assert!(changes > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSaturationController {
    /// Current log2 of the inverse saturation probability (0 ⇒ 1, 10 ⇒ 1/1024).
    log2_inverse_probability: u32,
    /// Smallest allowed probability exponent.
    min_exponent: u32,
    /// Largest allowed probability exponent.
    max_exponent: u32,
    /// Misprediction-rate target for high-confidence predictions, in MKP.
    target_mkp: f64,
    /// Number of high-confidence predictions per adaptation decision.
    window: u64,
    high_predictions: u64,
    high_mispredictions: u64,
    adaptations: u64,
}

impl AdaptiveSaturationController {
    /// Creates a controller with the paper's parameters: probability range
    /// 1/1024..=1, target 10 MKP.
    pub fn new() -> Self {
        Self::with_parameters(DEFAULT_TARGET_MKP, DEFAULT_WINDOW)
    }

    /// Creates a controller with a custom target (MKP on the high-confidence
    /// class) and adaptation window (number of high-confidence predictions
    /// between decisions).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `target_mkp` is not positive.
    pub fn with_parameters(target_mkp: f64, window: u64) -> Self {
        assert!(window > 0, "adaptation window must be non-zero");
        assert!(target_mkp > 0.0, "target must be positive");
        AdaptiveSaturationController {
            log2_inverse_probability: 7, // start from the paper's 1/128
            min_exponent: 0,
            max_exponent: 10, // 1/1024
            target_mkp,
            window,
            high_predictions: 0,
            high_mispredictions: 0,
            adaptations: 0,
        }
    }

    /// The automaton corresponding to the controller's current probability.
    pub fn automaton(&self) -> CounterAutomaton {
        CounterAutomaton::probabilistic(self.log2_inverse_probability)
    }

    /// Current saturation probability.
    pub fn probability(&self) -> f64 {
        1.0 / f64::from(1u32 << self.log2_inverse_probability)
    }

    /// The misprediction-rate target, in MKP.
    pub fn target_mkp(&self) -> f64 {
        self.target_mkp
    }

    /// Number of adaptation decisions taken so far.
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// The controller's dynamic state, for inclusion in a simulation
    /// snapshot: `(log2_inverse_probability, high_predictions,
    /// high_mispredictions, adaptations)`.
    pub fn dynamic_state(&self) -> (u32, u64, u64, u64) {
        (
            self.log2_inverse_probability,
            self.high_predictions,
            self.high_mispredictions,
            self.adaptations,
        )
    }

    /// Restores state captured by
    /// [`AdaptiveSaturationController::dynamic_state`]. The exponent is
    /// clamped to the controller's configured range.
    pub fn restore_dynamic_state(&mut self, state: (u32, u64, u64, u64)) {
        let (exponent, high_predictions, high_mispredictions, adaptations) = state;
        self.log2_inverse_probability = exponent.clamp(self.min_exponent, self.max_exponent);
        self.high_predictions = high_predictions;
        self.high_mispredictions = high_mispredictions;
        self.adaptations = adaptations;
    }

    /// Feeds one classified prediction outcome to the controller.
    ///
    /// Returns `Some(automaton)` when an adaptation window completed and the
    /// saturation probability changed; the caller should install the new
    /// automaton on the predictor.
    pub fn observe(
        &mut self,
        level: ConfidenceLevel,
        mispredicted: bool,
    ) -> Option<CounterAutomaton> {
        if level != ConfidenceLevel::High {
            return None;
        }
        self.high_predictions += 1;
        if mispredicted {
            self.high_mispredictions += 1;
        }
        if self.high_predictions < self.window {
            return None;
        }
        let rate_mkp = self.high_mispredictions as f64 * 1000.0 / self.high_predictions as f64;
        self.high_predictions = 0;
        self.high_mispredictions = 0;
        self.adaptations += 1;
        let previous = self.log2_inverse_probability;
        if rate_mkp > self.target_mkp {
            // Too many mispredictions among high-confidence predictions:
            // make saturation rarer (divide the probability by two).
            self.log2_inverse_probability = (previous + 1).min(self.max_exponent);
        } else {
            // Under target: grow the class (multiply the probability by two).
            self.log2_inverse_probability = previous.saturating_sub(1).max(self.min_exponent);
        }
        if self.log2_inverse_probability != previous {
            Some(self.automaton())
        } else {
            None
        }
    }

    /// Resets the measurement window and the probability to the paper's
    /// starting point (1/128).
    pub fn reset(&mut self) {
        self.log2_inverse_probability = 7;
        self.high_predictions = 0;
        self.high_mispredictions = 0;
        self.adaptations = 0;
    }
}

impl Default for AdaptiveSaturationController {
    fn default() -> Self {
        AdaptiveSaturationController::new()
    }
}

impl fmt::Display for AdaptiveSaturationController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "adaptive saturation: p = 1/{}, target {} MKP",
            1u32 << self.log2_inverse_probability,
            self.target_mkp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_high_confidence_stream_relaxes_probability() {
        let mut c = AdaptiveSaturationController::with_parameters(10.0, 100);
        let mut last = None;
        for _ in 0..1000 {
            if let Some(a) = c.observe(ConfidenceLevel::High, false) {
                last = Some(a);
            }
        }
        // Probability should have walked up to 1 (exponent 0).
        assert!((c.probability() - 1.0).abs() < 1e-12);
        assert_eq!(last, Some(CounterAutomaton::probabilistic(0)));
        assert!(c.adaptations() >= 7);
    }

    #[test]
    fn dirty_high_confidence_stream_tightens_probability() {
        let mut c = AdaptiveSaturationController::with_parameters(10.0, 100);
        for i in 0..2000 {
            // 5% misprediction rate = 50 MKP, way above the 10 MKP target.
            c.observe(ConfidenceLevel::High, i % 20 == 0);
        }
        assert!(c.probability() <= 1.0 / 1024.0 + 1e-12);
    }

    #[test]
    fn probability_is_bounded_by_the_paper_range() {
        let mut c = AdaptiveSaturationController::with_parameters(10.0, 10);
        for i in 0..10_000 {
            c.observe(ConfidenceLevel::High, i % 3 == 0);
        }
        assert!(c.probability() >= 1.0 / 1024.0 - 1e-15);
        let mut c = AdaptiveSaturationController::with_parameters(10.0, 10);
        for _ in 0..10_000 {
            c.observe(ConfidenceLevel::High, false);
        }
        assert!(c.probability() <= 1.0);
    }

    #[test]
    fn non_high_levels_are_ignored() {
        let mut c = AdaptiveSaturationController::with_parameters(10.0, 10);
        for _ in 0..1000 {
            assert!(c.observe(ConfidenceLevel::Low, true).is_none());
            assert!(c.observe(ConfidenceLevel::Medium, true).is_none());
        }
        assert_eq!(c.adaptations(), 0);
        assert!((c.probability() - 1.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn observe_returns_none_when_probability_unchanged() {
        let mut c = AdaptiveSaturationController::with_parameters(10.0, 10);
        // Drive to the floor.
        for i in 0..200 {
            c.observe(ConfidenceLevel::High, i % 2 == 0);
        }
        assert!(c.probability() <= 1.0 / 1024.0 + 1e-12);
        // Further bad windows keep it at the floor and report no change.
        let mut changes = 0;
        for i in 0..50 {
            if c.observe(ConfidenceLevel::High, i % 2 == 0).is_some() {
                changes += 1;
            }
        }
        assert_eq!(changes, 0);
    }

    #[test]
    fn reset_restores_paper_default() {
        let mut c = AdaptiveSaturationController::with_parameters(10.0, 10);
        for _ in 0..100 {
            c.observe(ConfidenceLevel::High, false);
        }
        assert!((c.probability() - 1.0 / 128.0).abs() > 1e-12);
        c.reset();
        assert!((c.probability() - 1.0 / 128.0).abs() < 1e-12);
        assert_eq!(c.adaptations(), 0);
    }

    #[test]
    #[should_panic(expected = "adaptation window must be non-zero")]
    fn zero_window_rejected() {
        AdaptiveSaturationController::with_parameters(10.0, 0);
    }

    #[test]
    #[should_panic(expected = "target must be positive")]
    fn non_positive_target_rejected() {
        AdaptiveSaturationController::with_parameters(0.0, 10);
    }

    #[test]
    fn accessors_and_display() {
        let c = AdaptiveSaturationController::new();
        assert!((c.target_mkp() - DEFAULT_TARGET_MKP).abs() < 1e-12);
        assert_eq!(c.automaton(), CounterAutomaton::probabilistic(7));
        assert!(format!("{c}").contains("1/128"));
    }
}
