//! Versioned framed binary snapshots of predictor (and harness) state.
//!
//! The trace format of [`crate::format`] freezes *workloads*; this module
//! freezes *machines*. A snapshot is a self-describing byte string:
//!
//! ```text
//! magic "TAGS" (4) | version u32 LE (4) | spec digest u64 LE (8)
//! | sections… | checksum u64 LE (8)
//! ```
//!
//! where each section is a `u32 LE` length prefix followed by exactly that
//! many payload bytes, and the trailing checksum is the [`fnv1a64`] hash of
//! every preceding byte. The *spec digest* pins the snapshot to one exact
//! predictor shape (implementation name + every structural configuration
//! field), so restoring a gshare image into a perceptron — or into a gshare
//! of a different geometry — is rejected before any state is touched.
//!
//! Decoding mirrors [`crate::format::FormatError`]: every failure carries
//! the byte offset at which it was detected, and validation runs in a fixed
//! order (truncation → magic → version → spec digest → checksum → section
//! structure) so each corruption mode reports its own precise error.
//! Restores built on [`SnapshotReader`] are all-or-nothing by construction:
//! the reader borrows the bytes and hands out decoded values, and callers
//! commit them to live state only after the final [`SnapshotReader::finish`]
//! succeeds.

use std::error::Error;
use std::fmt;
use std::io;

/// Magic bytes opening every snapshot ("TAGe Snapshot").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TAGS";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Byte length of the fixed header (magic + version + spec digest).
pub const SNAPSHOT_HEADER_BYTES: usize = 16;

/// Byte length of the trailing checksum.
pub const SNAPSHOT_CHECKSUM_BYTES: usize = 8;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a hash of `bytes` — the workspace's standard digest for
/// snapshot checksums, predictor spec digests and warm-cache keys.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET_BASIS;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Everything that can go wrong decoding a snapshot. Every variant other
/// than `Io`, `BadMagic` and `UnsupportedVersion` carries the byte offset at
/// which the problem was detected.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The snapshot ended before the decoder was done: `offset` is where the
    /// bytes ran out.
    Truncated {
        /// Byte offset at which the snapshot ended prematurely.
        offset: usize,
    },
    /// The first four bytes are not [`SNAPSHOT_MAGIC`].
    BadMagic([u8; 4]),
    /// The header declares a version this build does not understand.
    UnsupportedVersion(u32),
    /// The snapshot was taken from a different predictor specification.
    SpecMismatch {
        /// Digest the restoring predictor expected.
        expected: u64,
        /// Digest found in the snapshot header.
        found: u64,
        /// Byte offset of the digest field (always 8).
        offset: usize,
    },
    /// The trailing checksum does not match the snapshot contents.
    BadChecksum {
        /// Checksum recomputed over the snapshot bytes.
        expected: u64,
        /// Checksum stored in the trailer.
        found: u64,
        /// Byte offset of the stored checksum.
        offset: usize,
    },
    /// A section's contents disagree with the shape the spec digest pinned.
    MalformedSection {
        /// Byte offset at which the mismatch was detected.
        offset: usize,
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// Decoding finished but payload bytes remain.
    TrailingBytes {
        /// Byte offset of the first unconsumed payload byte.
        offset: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(err) => write!(f, "snapshot I/O error: {err}"),
            SnapshotError::Truncated { offset } => {
                write!(f, "snapshot truncated at byte offset {offset}")
            }
            SnapshotError::BadMagic(magic) => {
                write!(f, "bad magic bytes {magic:?}, expected {SNAPSHOT_MAGIC:?}")
            }
            SnapshotError::UnsupportedVersion(version) => {
                write!(
                    f,
                    "unsupported snapshot version {version}, expected {SNAPSHOT_VERSION}"
                )
            }
            SnapshotError::SpecMismatch {
                expected,
                found,
                offset,
            } => write!(
                f,
                "snapshot was taken from a different predictor spec: expected digest \
                 {expected:#018x}, found {found:#018x} at byte offset {offset}"
            ),
            SnapshotError::BadChecksum {
                expected,
                found,
                offset,
            } => write!(
                f,
                "snapshot checksum mismatch at byte offset {offset}: computed {expected:#018x}, \
                 stored {found:#018x}"
            ),
            SnapshotError::MalformedSection { offset, reason } => {
                write!(
                    f,
                    "malformed snapshot section at byte offset {offset}: {reason}"
                )
            }
            SnapshotError::TrailingBytes { offset } => {
                write!(
                    f,
                    "snapshot holds unexpected trailing bytes at offset {offset}"
                )
            }
        }
    }
}

impl Error for SnapshotError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(err: io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// Builds a snapshot byte string: header, length-prefixed sections, trailing
/// checksum.
///
/// # Example
///
/// ```
/// use tage_traces::snapshot::{fnv1a64, SnapshotReader, SnapshotWriter};
///
/// let digest = fnv1a64(b"toy spec v1");
/// let mut writer = SnapshotWriter::new(digest);
/// writer.begin_section();
/// writer.write_u64(0xDEAD_BEEF);
/// writer.write_i8(-3);
/// writer.end_section();
/// let bytes = writer.finish();
///
/// let mut reader = SnapshotReader::new(&bytes, digest).unwrap();
/// reader.begin_section().unwrap();
/// assert_eq!(reader.read_u64().unwrap(), 0xDEAD_BEEF);
/// assert_eq!(reader.read_i8().unwrap(), -3);
/// reader.end_section().unwrap();
/// reader.finish().unwrap();
/// ```
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// Offset of the current section's length prefix, when one is open.
    section_start: Option<usize>,
}

impl SnapshotWriter {
    /// Starts a snapshot pinned to `spec_digest`.
    pub fn new(spec_digest: u64) -> Self {
        let mut buf = Vec::with_capacity(256);
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        buf.extend_from_slice(&spec_digest.to_le_bytes());
        SnapshotWriter {
            buf,
            section_start: None,
        }
    }

    /// Opens a length-prefixed section. Sections do not nest.
    ///
    /// # Panics
    ///
    /// Panics if a section is already open.
    pub fn begin_section(&mut self) {
        assert!(
            self.section_start.is_none(),
            "snapshot sections do not nest"
        );
        self.section_start = Some(self.buf.len());
        self.buf.extend_from_slice(&0u32.to_le_bytes());
    }

    /// Closes the current section, patching its length prefix.
    ///
    /// # Panics
    ///
    /// Panics if no section is open or the section exceeds `u32::MAX` bytes.
    pub fn end_section(&mut self) {
        let start = self
            .section_start
            .take()
            .expect("end_section without begin_section");
        let len = self.buf.len() - start - 4;
        let len = u32::try_from(len).expect("snapshot section exceeds u32::MAX bytes");
        self.buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Appends a `u8`.
    pub fn write_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends an `i8`.
    pub fn write_i8(&mut self, value: i8) {
        self.buf.push(value as u8);
    }

    /// Appends a `u16` (little endian).
    pub fn write_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends an `i16` (little endian).
    pub fn write_i16(&mut self, value: i16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u32` (little endian).
    pub fn write_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64` (little endian).
    pub fn write_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.buf.push(u8::from(value));
    }

    /// Appends raw bytes with a `u32` length prefix.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `u32::MAX` in length.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let len = u32::try_from(bytes.len()).expect("snapshot blob exceeds u32::MAX bytes");
        self.write_u32(len);
        self.buf.extend_from_slice(bytes);
    }

    /// Seals the snapshot: appends the checksum and returns the bytes.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open.
    pub fn finish(self) -> Vec<u8> {
        assert!(
            self.section_start.is_none(),
            "snapshot finished with an open section"
        );
        let mut buf = self.buf;
        let checksum = fnv1a64(&buf);
        buf.extend_from_slice(&checksum.to_le_bytes());
        buf
    }
}

/// Decodes a snapshot produced by [`SnapshotWriter`].
///
/// Construction validates, in order: overall truncation, magic, version,
/// spec digest, checksum. Per-value reads then walk the payload;
/// [`SnapshotReader::finish`] asserts every payload byte was consumed.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    /// Next read position.
    pos: usize,
    /// End of the payload (exclusive of the checksum trailer).
    payload_end: usize,
    /// End of the open section, when one is open.
    section_end: Option<usize>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates the framing of `bytes` against `expected_spec` and positions
    /// the reader at the first section.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]; validation order is truncation → magic →
    /// version → spec digest → checksum.
    pub fn new(bytes: &'a [u8], expected_spec: u64) -> Result<Self, SnapshotError> {
        if bytes.len() < 4 {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic(magic));
        }
        if bytes.len() < 8 {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4-byte slice"));
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        if bytes.len() < SNAPSHOT_HEADER_BYTES {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let found = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte slice"));
        if found != expected_spec {
            return Err(SnapshotError::SpecMismatch {
                expected: expected_spec,
                found,
                offset: 8,
            });
        }
        if bytes.len() < SNAPSHOT_HEADER_BYTES + SNAPSHOT_CHECKSUM_BYTES {
            return Err(SnapshotError::Truncated {
                offset: bytes.len(),
            });
        }
        let payload_end = bytes.len() - SNAPSHOT_CHECKSUM_BYTES;
        let stored = u64::from_le_bytes(bytes[payload_end..].try_into().expect("8-byte slice"));
        let computed = fnv1a64(&bytes[..payload_end]);
        if stored != computed {
            return Err(SnapshotError::BadChecksum {
                expected: computed,
                found: stored,
                offset: payload_end,
            });
        }
        Ok(SnapshotReader {
            bytes,
            pos: SNAPSHOT_HEADER_BYTES,
            payload_end,
            section_end: None,
        })
    }

    /// The current read offset, for error reporting.
    pub fn offset(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = match self.section_end {
            Some(end) => end,
            None => self.payload_end,
        };
        if self.pos + n > end {
            return Err(SnapshotError::Truncated { offset: end });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Opens the next length-prefixed section.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when no complete section remains, or
    /// [`SnapshotError::MalformedSection`] when a section is already open or
    /// the declared length runs past the payload.
    pub fn begin_section(&mut self) -> Result<(), SnapshotError> {
        if self.section_end.is_some() {
            return Err(SnapshotError::MalformedSection {
                offset: self.pos,
                reason: "section opened while another is still open".to_string(),
            });
        }
        if self.pos + 4 > self.payload_end {
            return Err(SnapshotError::Truncated {
                offset: self.payload_end,
            });
        }
        let len = u32::from_le_bytes(
            self.bytes[self.pos..self.pos + 4]
                .try_into()
                .expect("4-byte slice"),
        ) as usize;
        self.pos += 4;
        if self.pos + len > self.payload_end {
            return Err(SnapshotError::MalformedSection {
                offset: self.pos - 4,
                reason: format!("section length {len} runs past the snapshot payload"),
            });
        }
        self.section_end = Some(self.pos + len);
        Ok(())
    }

    /// Closes the current section, verifying it was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MalformedSection`] when no section is open or bytes
    /// remain unconsumed.
    pub fn end_section(&mut self) -> Result<(), SnapshotError> {
        let end = self
            .section_end
            .take()
            .ok_or(SnapshotError::MalformedSection {
                offset: self.pos,
                reason: "section closed while none is open".to_string(),
            })?;
        if self.pos != end {
            return Err(SnapshotError::MalformedSection {
                offset: self.pos,
                reason: format!("{} section bytes left unconsumed", end - self.pos),
            });
        }
        Ok(())
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload or section ends first.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads an `i8`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload or section ends first.
    pub fn read_i8(&mut self) -> Result<i8, SnapshotError> {
        Ok(self.take(1)?[0] as i8)
    }

    /// Reads a `u16` (little endian).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload or section ends first.
    pub fn read_u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads an `i16` (little endian).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload or section ends first.
    pub fn read_i16(&mut self) -> Result<i16, SnapshotError> {
        Ok(i16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a `u32` (little endian).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload or section ends first.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64` (little endian).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload or section ends first.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `bool` encoded as one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] on exhaustion, or
    /// [`SnapshotError::MalformedSection`] when the byte is not 0 or 1.
    pub fn read_bool(&mut self) -> Result<bool, SnapshotError> {
        let offset = self.pos;
        match self.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::MalformedSection {
                offset,
                reason: format!("invalid bool byte {other:#04x}"),
            }),
        }
    }

    /// Reads a `u32`-length-prefixed byte blob written by
    /// [`SnapshotWriter::write_bytes`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] when the payload or section ends first.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.read_u32()? as usize;
        self.take(len)
    }

    /// Finishes decoding, verifying the whole payload was consumed.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MalformedSection`] when a section is still open, or
    /// [`SnapshotError::TrailingBytes`] when payload bytes remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.section_end.is_some() {
            return Err(SnapshotError::MalformedSection {
                offset: self.pos,
                reason: "snapshot finished with an open section".to_string(),
            });
        }
        if self.pos != self.payload_end {
            return Err(SnapshotError::TrailingBytes { offset: self.pos });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(spec: u64) -> Vec<u8> {
        let mut w = SnapshotWriter::new(spec);
        w.begin_section();
        w.write_u64(0x0123_4567_89AB_CDEF);
        w.write_i8(-7);
        w.write_u16(513);
        w.end_section();
        w.begin_section();
        w.write_bool(true);
        w.write_bytes(b"blob");
        w.end_section();
        w.finish()
    }

    #[test]
    fn round_trip_reads_back_every_value() {
        let bytes = sample(42);
        let mut r = SnapshotReader::new(&bytes, 42).unwrap();
        r.begin_section().unwrap();
        assert_eq!(r.read_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.read_i8().unwrap(), -7);
        assert_eq!(r.read_u16().unwrap(), 513);
        r.end_section().unwrap();
        r.begin_section().unwrap();
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_bytes().unwrap(), b"blob");
        r.end_section().unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn truncation_reports_the_cut_offset() {
        let bytes = sample(42);
        for cut in [0, 3, 7, 12, 20, bytes.len() - 1] {
            let err = SnapshotReader::new(&bytes[..cut], 42).unwrap_err();
            match err {
                SnapshotError::Truncated { offset } => assert!(offset <= cut, "cut {cut}"),
                SnapshotError::BadChecksum { .. } if cut > SNAPSHOT_HEADER_BYTES => {}
                other => panic!("cut {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_is_detected_before_anything_else() {
        let mut bytes = sample(42);
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotReader::new(&bytes, 42).unwrap_err(),
            SnapshotError::BadMagic([b'X', b'A', b'G', b'S'])
        ));
    }

    #[test]
    fn flipped_version_is_reported_as_version_not_checksum() {
        let mut bytes = sample(42);
        bytes[4] = 9;
        assert!(matches!(
            SnapshotReader::new(&bytes, 42).unwrap_err(),
            SnapshotError::UnsupportedVersion(9)
        ));
    }

    #[test]
    fn spec_mismatch_is_reported_at_offset_8() {
        let bytes = sample(42);
        let err = SnapshotReader::new(&bytes, 43).unwrap_err();
        assert!(matches!(
            err,
            SnapshotError::SpecMismatch {
                expected: 43,
                found: 42,
                offset: 8
            }
        ));
    }

    #[test]
    fn payload_corruption_is_a_checksum_error_at_the_trailer() {
        let mut bytes = sample(42);
        let victim = SNAPSHOT_HEADER_BYTES + 5;
        bytes[victim] ^= 0xFF;
        let trailer = bytes.len() - SNAPSHOT_CHECKSUM_BYTES;
        match SnapshotReader::new(&bytes, 42).unwrap_err() {
            SnapshotError::BadChecksum { offset, .. } => assert_eq!(offset, trailer),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn section_over_and_under_reads_are_structured_errors() {
        let bytes = sample(42);
        let mut r = SnapshotReader::new(&bytes, 42).unwrap();
        r.begin_section().unwrap();
        // Under-read: close with bytes left.
        assert!(matches!(
            r.end_section().unwrap_err(),
            SnapshotError::MalformedSection { .. }
        ));

        let mut r = SnapshotReader::new(&bytes, 42).unwrap();
        r.begin_section().unwrap();
        r.read_u64().unwrap();
        r.read_i8().unwrap();
        r.read_u16().unwrap();
        // Over-read: the section boundary stops the read.
        assert!(matches!(
            r.read_u64().unwrap_err(),
            SnapshotError::Truncated { .. }
        ));
    }

    #[test]
    fn finish_rejects_unconsumed_payload() {
        let bytes = sample(42);
        let mut r = SnapshotReader::new(&bytes, 42).unwrap();
        r.begin_section().unwrap();
        r.read_u64().unwrap();
        r.read_i8().unwrap();
        r.read_u16().unwrap();
        r.end_section().unwrap();
        assert!(matches!(
            r.finish().unwrap_err(),
            SnapshotError::TrailingBytes { .. }
        ));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn errors_display_their_offsets() {
        let text = format!("{}", SnapshotError::Truncated { offset: 17 });
        assert!(text.contains("17"));
        let text = format!(
            "{}",
            SnapshotError::BadChecksum {
                expected: 1,
                found: 2,
                offset: 99
            }
        );
        assert!(text.contains("99"));
    }
}
