//! Enumerable baseline-predictor configurations for sweep grids.
//!
//! The campaign runner (`tage-bench`) expands declarative grids over
//! predictor kinds. For the baseline predictors of this crate the grid axis
//! values are the variants of [`BaselinePredictorSpec`]: each one is a named,
//! fully-parameterised configuration that can be parsed from a CLI token,
//! enumerated for `--list`, and stamped into a cold predictor instance per
//! sweep point.
//!
//! Each predictor kind has its own declarative spec struct
//! ([`BimodalSpec`], [`GshareSpec`], [`PerceptronSpec`], [`GehlSpec`]) with
//! a `Default` carrying the grid configuration, an exact
//! `storage_bits()` accounting, and a matching `from_spec` constructor on
//! the predictor — the same spec-first shape `TageGeometry` gives the TAGE
//! predictor, so sweep code never reaches for positional constructor
//! arguments.

use crate::{
    BimodalPredictor, BranchPredictor, GehlPredictor, GsharePredictor, PerceptronPredictor,
};

/// Declarative configuration of a [`BimodalPredictor`]: Smith's PC-indexed
/// counter table. The default is the grid configuration (`2^12` two-bit
/// counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BimodalSpec {
    /// log2 of the number of counters.
    pub index_bits: u32,
    /// Width of each counter, in bits.
    pub counter_bits: u8,
}

impl Default for BimodalSpec {
    fn default() -> Self {
        BimodalSpec {
            index_bits: 12,
            counter_bits: 2,
        }
    }
}

impl BimodalSpec {
    /// Exact table storage in bits.
    pub fn storage_bits(&self) -> u64 {
        (1u64 << self.index_bits) * u64::from(self.counter_bits)
    }
}

/// Declarative configuration of a [`GsharePredictor`]: McFarling's
/// global-history XOR predictor. The default is the grid configuration
/// (`2^14` counters × 14 history bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GshareSpec {
    /// log2 of the number of 2-bit counters.
    pub index_bits: u32,
    /// Global history bits XORed into the index.
    pub history_bits: usize,
}

impl Default for GshareSpec {
    fn default() -> Self {
        GshareSpec {
            index_bits: 14,
            history_bits: 14,
        }
    }
}

impl GshareSpec {
    /// Exact storage in bits: the counter table plus the history register.
    pub fn storage_bits(&self) -> u64 {
        (1u64 << self.index_bits) * 2 + self.history_bits as u64
    }
}

/// Declarative configuration of a [`PerceptronPredictor`]: the hashed
/// perceptron. The default is the grid configuration (256 rows × 24 history
/// bits, 8-bit weights).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerceptronSpec {
    /// Number of weight rows.
    pub rows: usize,
    /// Global history bits (one weight per bit, plus the bias weight).
    pub history_bits: usize,
}

impl Default for PerceptronSpec {
    fn default() -> Self {
        PerceptronSpec {
            rows: 256,
            history_bits: 24,
        }
    }
}

impl PerceptronSpec {
    /// Width of each stored weight, in bits (the implementation trains
    /// 8-bit weights).
    pub const WEIGHT_BITS: u64 = 8;

    /// Exact storage in bits: `rows × (history + bias)` weights plus the
    /// history register.
    pub fn storage_bits(&self) -> u64 {
        self.rows as u64 * (self.history_bits as u64 + 1) * Self::WEIGHT_BITS
            + self.history_bits as u64
    }
}

/// Declarative configuration of a [`GehlPredictor`]: geometric-history
/// tables feeding an adder tree. The default is the grid configuration
/// (6 tables × `2^11` counters, histories 2..64).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GehlSpec {
    /// Number of component tables (the first is the bias table).
    pub tables: usize,
    /// log2 of the number of counters of each table.
    pub index_bits: u32,
    /// Shortest non-zero history length of the geometric series.
    pub min_history: usize,
    /// Longest history length of the geometric series.
    pub max_history: usize,
}

impl Default for GehlSpec {
    fn default() -> Self {
        GehlSpec {
            tables: 6,
            index_bits: 11,
            min_history: 2,
            max_history: 64,
        }
    }
}

impl GehlSpec {
    /// Width of each stored counter, in bits (the implementation trains
    /// 4-bit counters).
    pub const COUNTER_BITS: u64 = 4;

    /// Exact storage in bits: every table's counters plus the history
    /// register.
    pub fn storage_bits(&self) -> u64 {
        self.tables as u64 * (1u64 << self.index_bits) * Self::COUNTER_BITS
            + self.max_history as u64
    }
}

/// A named, buildable baseline-predictor configuration — one value of the
/// predictor axis of a sweep grid.
///
/// The parameters mirror the configurations the comparison experiments use:
/// moderate table sizes that fit the synthetic traces' footprints. Each
/// variant's parameters live in the `Default` of its spec struct
/// ([`BimodalSpec`], [`GshareSpec`], [`PerceptronSpec`], [`GehlSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselinePredictorSpec {
    /// Smith's 2-bit bimodal table ([`BimodalSpec::default`]).
    Bimodal,
    /// McFarling's gshare ([`GshareSpec::default`]).
    Gshare,
    /// Hashed perceptron ([`PerceptronSpec::default`]).
    Perceptron,
    /// O-GEHL-style predictor ([`GehlSpec::default`]).
    Gehl,
}

impl BaselinePredictorSpec {
    /// Every baseline configuration, in grid-axis order.
    pub const ALL: [BaselinePredictorSpec; 4] = [
        BaselinePredictorSpec::Bimodal,
        BaselinePredictorSpec::Gshare,
        BaselinePredictorSpec::Perceptron,
        BaselinePredictorSpec::Gehl,
    ];

    /// The stable grid token naming this configuration (what `--predictors`
    /// parses and the campaign report records).
    pub fn token(&self) -> &'static str {
        match self {
            BaselinePredictorSpec::Bimodal => "bimodal",
            BaselinePredictorSpec::Gshare => "gshare",
            BaselinePredictorSpec::Perceptron => "perceptron",
            BaselinePredictorSpec::Gehl => "gehl",
        }
    }

    /// Parses a grid token back into a configuration.
    pub fn parse(token: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|spec| spec.token() == token)
    }

    /// Builds a cold predictor instance of this configuration.
    pub fn build(&self) -> Box<dyn BranchPredictor + Send> {
        match self {
            BaselinePredictorSpec::Bimodal => {
                Box::new(BimodalPredictor::from_spec(&BimodalSpec::default()))
            }
            BaselinePredictorSpec::Gshare => {
                Box::new(GsharePredictor::from_spec(&GshareSpec::default()))
            }
            BaselinePredictorSpec::Perceptron => {
                Box::new(PerceptronPredictor::from_spec(&PerceptronSpec::default()))
            }
            BaselinePredictorSpec::Gehl => Box::new(GehlPredictor::from_spec(&GehlSpec::default())),
        }
    }

    /// Exact storage budget of this configuration in bits, computed
    /// declaratively from its spec struct — equal to what the built
    /// instance reports, without building it.
    pub fn storage_bits(&self) -> u64 {
        match self {
            BaselinePredictorSpec::Bimodal => BimodalSpec::default().storage_bits(),
            BaselinePredictorSpec::Gshare => GshareSpec::default().storage_bits(),
            BaselinePredictorSpec::Perceptron => PerceptronSpec::default().storage_bits(),
            BaselinePredictorSpec::Gehl => GehlSpec::default().storage_bits(),
        }
    }

    /// A margin threshold suited to this predictor's self-confidence scale:
    /// counter-based predictors saturate at tiny margins, neural predictors
    /// produce wide sums.
    pub fn self_confidence_threshold(&self) -> i64 {
        match self {
            BaselinePredictorSpec::Bimodal | BaselinePredictorSpec::Gshare => 1,
            BaselinePredictorSpec::Perceptron => 40,
            BaselinePredictorSpec::Gehl => 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip_and_are_unique() {
        for spec in BaselinePredictorSpec::ALL {
            assert_eq!(BaselinePredictorSpec::parse(spec.token()), Some(spec));
        }
        let mut tokens: Vec<&str> = BaselinePredictorSpec::ALL.map(|s| s.token()).to_vec();
        tokens.sort_unstable();
        tokens.dedup();
        assert_eq!(tokens.len(), BaselinePredictorSpec::ALL.len());
        assert_eq!(BaselinePredictorSpec::parse("tage-16k"), None);
    }

    #[test]
    fn every_spec_builds_a_working_predictor() {
        for spec in BaselinePredictorSpec::ALL {
            let mut predictor = spec.build();
            let prediction = predictor.predict(0x4000);
            predictor.update(0x4000, true, &prediction);
            assert!(predictor.storage_bits() > 0, "{}", spec.token());
            assert!(spec.self_confidence_threshold() > 0);
        }
    }

    #[test]
    fn declarative_storage_matches_the_built_instance() {
        for spec in BaselinePredictorSpec::ALL {
            assert_eq!(
                spec.storage_bits(),
                spec.build().storage_bits(),
                "{}",
                spec.token()
            );
        }
    }

    #[test]
    fn from_spec_matches_the_positional_constructors() {
        // The spec structs' defaults are the grid configurations: building
        // from them must agree with the historical positional calls.
        let pairs: [(
            Box<dyn BranchPredictor + Send>,
            Box<dyn BranchPredictor + Send>,
        ); 4] = [
            (
                Box::new(BimodalPredictor::from_spec(&BimodalSpec::default())),
                Box::new(BimodalPredictor::new(12)),
            ),
            (
                Box::new(GsharePredictor::from_spec(&GshareSpec::default())),
                Box::new(GsharePredictor::new(14, 14)),
            ),
            (
                Box::new(PerceptronPredictor::from_spec(&PerceptronSpec::default())),
                Box::new(PerceptronPredictor::new(256, 24)),
            ),
            (
                Box::new(GehlPredictor::from_spec(&GehlSpec::default())),
                Box::new(GehlPredictor::new(6, 11, 2, 64)),
            ),
        ];
        for (from_spec, positional) in pairs {
            assert_eq!(from_spec.spec_digest(), positional.spec_digest());
            assert_eq!(from_spec.storage_bits(), positional.storage_bits());
        }
    }

    #[test]
    fn custom_specs_change_the_accounting() {
        let small = BimodalSpec {
            index_bits: 8,
            counter_bits: 3,
        };
        assert_eq!(small.storage_bits(), 256 * 3);
        let wide = GshareSpec {
            index_bits: 10,
            history_bits: 16,
        };
        assert_eq!(wide.storage_bits(), 1024 * 2 + 16);
        assert_eq!(
            GsharePredictor::from_spec(&wide).storage_bits(),
            wide.storage_bits()
        );
        let tall = GehlSpec {
            tables: 4,
            index_bits: 9,
            min_history: 2,
            max_history: 32,
        };
        assert_eq!(
            GehlPredictor::from_spec(&tall).storage_bits(),
            tall.storage_bits()
        );
    }
}
