//! Global branch history registers.

use core::fmt;

/// An arbitrary-length global branch-history shift register.
///
/// Bit 0 is the most recent outcome. The register retains `capacity` bits;
/// the TAGE configurations in this workspace need up to 300 bits plus slack.
///
/// # Example
///
/// ```
/// use tage_predictors::history::HistoryRegister;
///
/// let mut h = HistoryRegister::new(128);
/// h.push(true);
/// h.push(false);
/// assert!(!h.bit(0));
/// assert!(h.bit(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryRegister {
    words: Vec<u64>,
    capacity: usize,
}

impl HistoryRegister {
    /// Creates an all-zero (all not-taken) history of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be non-zero");
        HistoryRegister {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Number of bits retained.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shifts in a new outcome as bit 0.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let mut carry = u64::from(taken);
        for word in self.words.iter_mut() {
            let next_carry = *word >> 63;
            *word = (*word << 1) | carry;
            carry = next_carry;
        }
    }

    /// The outcome `lag` branches ago; lags beyond the capacity read as
    /// `false`.
    #[inline]
    pub fn bit(&self, lag: usize) -> bool {
        if lag >= self.capacity {
            return false;
        }
        (self.words[lag / 64] >> (lag % 64)) & 1 == 1
    }

    /// The lowest `n` bits (most recent outcomes) packed into a `u64`
    /// (`n <= 64`).
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn low_bits(&self, n: usize) -> u64 {
        assert!(n <= 64, "low_bits supports at most 64 bits");
        if n == 0 {
            return 0;
        }
        let word = self.words[0];
        if n == 64 {
            word
        } else {
            word & ((1u64 << n) - 1)
        }
    }

    /// Folds the most recent `length` history bits into `out_bits` bits by
    /// XOR-ing successive chunks. This is a functional (not incremental)
    /// version of the folded-history registers a hardware TAGE maintains.
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is zero or greater than 63.
    pub fn fold(&self, length: usize, out_bits: usize) -> u64 {
        assert!(
            out_bits > 0 && out_bits < 64,
            "fold output must be 1..=63 bits"
        );
        let length = length.min(self.capacity);
        let mut folded: u64 = 0;
        let mut acc: u64 = 0;
        let mut acc_bits = 0usize;
        for lag in 0..length {
            acc |= u64::from(self.bit(lag)) << acc_bits;
            acc_bits += 1;
            if acc_bits == out_bits {
                folded ^= acc;
                acc = 0;
                acc_bits = 0;
            }
        }
        if acc_bits > 0 {
            folded ^= acc;
        }
        folded
    }

    /// The backing words, least-recent-outcome-last: bit `lag` lives at bit
    /// `lag % 64` of word `lag / 64`.
    ///
    /// Batched simulators that advance many histories in lockstep keep the
    /// register out-of-place (transposed across lanes) and use this together
    /// with [`HistoryRegister::load_words`] to move the state across.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Replaces the backing words with `words`, the writeback counterpart of
    /// [`HistoryRegister::words`].
    ///
    /// # Panics
    ///
    /// Panics if `words` does not match the register's word count.
    pub fn load_words(&mut self, words: &[u64]) {
        assert_eq!(
            words.len(),
            self.words.len(),
            "load_words requires one word per backing word"
        );
        self.words.copy_from_slice(words);
    }

    /// Clears the history.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

impl fmt::Display for HistoryRegister {
    /// Shows the 32 most recent bits (most recent rightmost) and the
    /// capacity.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let shown = self.capacity.min(32);
        for lag in (0..shown).rev() {
            write!(f, "{}", u8::from(self.bit(lag)))?;
        }
        write!(f, " ({} bits)", self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_bit_track_recent_outcomes() {
        let mut h = HistoryRegister::new(70);
        h.push(true);
        h.push(true);
        h.push(false);
        assert!(!h.bit(0));
        assert!(h.bit(1));
        assert!(h.bit(2));
        assert!(!h.bit(3));
        assert!(!h.bit(200));
    }

    #[test]
    fn shifting_crosses_word_boundary() {
        let mut h = HistoryRegister::new(130);
        h.push(true);
        for _ in 0..128 {
            h.push(false);
        }
        assert!(h.bit(128));
        assert!(!h.bit(127));
        assert!(!h.bit(129));
    }

    #[test]
    fn bits_beyond_capacity_are_dropped() {
        let mut h = HistoryRegister::new(8);
        h.push(true);
        for _ in 0..8 {
            h.push(false);
        }
        // The taken bit has been shifted out of the 8-bit window.
        assert!((0..8).all(|lag| !h.bit(lag)));
    }

    #[test]
    fn low_bits_packs_recent_history() {
        let mut h = HistoryRegister::new(64);
        h.push(true); // lag 2 after the next two pushes
        h.push(false);
        h.push(true);
        assert_eq!(h.low_bits(3), 0b101);
        assert_eq!(h.low_bits(0), 0);
        assert_eq!(h.low_bits(64), h.low_bits(64));
    }

    #[test]
    #[should_panic(expected = "low_bits supports at most 64 bits")]
    fn low_bits_rejects_too_many() {
        HistoryRegister::new(128).low_bits(65);
    }

    #[test]
    fn fold_is_stable_and_depends_on_history() {
        let mut h = HistoryRegister::new(256);
        for i in 0..200 {
            h.push(i % 3 == 0);
        }
        let a = h.fold(130, 11);
        let b = h.fold(130, 11);
        assert_eq!(a, b);
        assert!(a < (1 << 11));
        h.push(true);
        let c = h.fold(130, 11);
        assert_ne!(a, c, "fold should change when history changes");
    }

    #[test]
    fn fold_of_short_history_is_identity_like() {
        let mut h = HistoryRegister::new(64);
        h.push(true);
        h.push(true);
        // 2 bits folded into 8 bits: just the low bits.
        assert_eq!(h.fold(2, 8), 0b11);
    }

    #[test]
    #[should_panic(expected = "history capacity must be non-zero")]
    fn zero_capacity_rejected() {
        HistoryRegister::new(0);
    }

    #[test]
    fn clear_zeroes_everything() {
        let mut h = HistoryRegister::new(100);
        for _ in 0..50 {
            h.push(true);
        }
        h.clear();
        assert!((0..100).all(|lag| !h.bit(lag)));
    }

    #[test]
    fn words_roundtrip_through_load_words() {
        let mut h = HistoryRegister::new(130);
        for i in 0..97 {
            h.push(i % 5 != 0);
        }
        let mut copy = HistoryRegister::new(130);
        copy.load_words(h.words());
        assert_eq!(copy, h);
        copy.push(true);
        h.push(true);
        assert_eq!(copy.words(), h.words());
    }

    #[test]
    #[should_panic(expected = "one word per backing word")]
    fn load_words_rejects_mismatched_lengths() {
        HistoryRegister::new(128).load_words(&[0]);
    }

    #[test]
    fn display_shows_recent_bits() {
        let mut h = HistoryRegister::new(16);
        h.push(true);
        let s = format!("{h}");
        assert!(s.contains("16 bits"));
        assert!(s.contains('1'));
    }
}
