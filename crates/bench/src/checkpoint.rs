//! On-disk campaign checkpoints behind `tage-bench --checkpoint/--resume`.
//!
//! A campaign sweeping a large grid can take long enough that a killed run
//! (CI timeout, ^C, OOM) loses hours of finished cells. A
//! [`CampaignCheckpoint`] fixes that: the checkpointed runner
//! ([`crate::campaign::run_campaign_checkpointed`]) writes every finished
//! cell to the checkpoint directory *as it completes*, and a later run over
//! the same grid restores those cells instead of re-executing them.
//!
//! # What a cell file holds
//!
//! Each cell stores the **exact rendered bytes** of the point's timing-free
//! JSON report element (what
//! [`CampaignReport::render_json`](crate::campaign::CampaignReport::render_json)
//! emits for the point with `include_timing == false`). Restored cells are
//! pasted verbatim into the resumed report, so a resumed campaign's
//! timing-free report is byte-identical to an uninterrupted run's — the CI
//! campaign-smoke job `cmp`s the two.
//!
//! # Keying and validation
//!
//! Cells are content-addressed under `<fnv64 key>.cell`, where the key
//! digests the cell's full identity: campaign label, branches per trace, and
//! the predictor/scheme/suite/scenario labels. On load the stored cell's
//! identity fields are checked against the requesting point; a mismatch (key
//! collision, stale or corrupt file) is treated as absent and the cell is
//! recomputed and rewritten. Stores are atomic (temp-file-plus-rename), so a
//! kill can never leave a torn cell behind.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use tage_sim::point::SweepPoint;
use tage_traces::snapshot::fnv1a64;

use crate::jsonish;

/// File extension of checkpoint cells.
const CELL_EXTENSION: &str = "cell";

/// A directory of finished campaign cells, each stored as its rendered
/// timing-free report element.
#[derive(Debug)]
pub struct CampaignCheckpoint {
    dir: PathBuf,
}

impl CampaignCheckpoint {
    /// Opens (creating if needed) a checkpoint rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the [`std::io::Error`] from creating the directory.
    pub fn new(dir: impl Into<PathBuf>) -> std::io::Result<CampaignCheckpoint> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CampaignCheckpoint { dir })
    }

    /// The checkpoint's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{CELL_EXTENSION}"))
    }

    /// Loads the finished cell stored under `key`, if it exists and its
    /// identity fields match `point`. A missing, unreadable, corrupt or
    /// mismatched cell returns `None` — the caller recomputes (and
    /// rewrites) it.
    pub(crate) fn load_cell(&self, key: u64, point: &SweepPoint) -> Option<String> {
        let rendered = fs::read_to_string(self.path_for(key)).ok()?;
        let expected = [
            ("predictor", point.predictor.label()),
            ("scheme", point.scheme.label()),
            ("suite", point.suite.name().to_string()),
            ("scenario", point.scenario.label().to_string()),
        ];
        for (field, value) in expected {
            if jsonish::string_field(&rendered, field).as_deref() != Some(value.as_str()) {
                return None;
            }
        }
        Some(rendered)
    }

    /// Atomically stores a finished cell's rendered bytes under `key`: the
    /// cell is written to a process-unique temp file in the checkpoint
    /// directory and renamed into place, so concurrent workers and killed
    /// runs only ever leave complete cells.
    pub(crate) fn store_cell(&self, key: u64, rendered: &str) -> std::io::Result<()> {
        static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
        let temp = self.dir.join(format!(
            "{key:016x}.tmp.{}.{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut file = fs::File::create(&temp)?;
            file.write_all(rendered.as_bytes())?;
            file.sync_all()?;
        }
        let result = fs::rename(&temp, self.path_for(key));
        if result.is_err() {
            let _ = fs::remove_file(&temp);
        }
        result
    }
}

/// The content-addressed cell key: everything that determines a cell's
/// deterministic result — the campaign label, the per-trace length, and the
/// four grid-axis labels.
pub(crate) fn cell_key(label: &str, branches_per_trace: usize, point: &SweepPoint) -> u64 {
    fnv1a64(
        format!(
            "cell|label={label}|branches={branches_per_trace}|predictor={}|scheme={}|suite={}|scenario={}",
            point.predictor.label(),
            point.scheme.label(),
            point.suite.name(),
            point.scenario.label(),
        )
        .as_bytes(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_sim::point::{PredictorSpec, SchemeSpec};
    use tage_sim::scenarios::ScenarioSpec;
    use tage_traces::suites;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tage-checkpoint-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn point() -> SweepPoint {
        SweepPoint {
            predictor: PredictorSpec::parse("tage-16k").unwrap(),
            scheme: SchemeSpec::parse("storage-free").unwrap(),
            suite: suites::cbp1_mini().into(),
            scenario: ScenarioSpec::Baseline,
        }
    }

    fn rendered_for(point: &SweepPoint) -> String {
        format!(
            "  {{\"predictor\": \"{}\", \"scheme\": \"{}\", \"suite\": \"{}\", \"scenario\": \"{}\"}}",
            point.predictor.label(),
            point.scheme.label(),
            point.suite.name(),
            point.scenario.label()
        )
    }

    #[test]
    fn cells_round_trip_verbatim() {
        let dir = temp_dir("roundtrip");
        let checkpoint = CampaignCheckpoint::new(&dir).unwrap();
        let point = point();
        let key = cell_key("label", 1_000, &point);
        assert!(checkpoint.load_cell(key, &point).is_none());
        let rendered = rendered_for(&point);
        checkpoint.store_cell(key, &rendered).unwrap();
        assert_eq!(checkpoint.load_cell(key, &point).unwrap(), rendered);
        assert_eq!(checkpoint.dir(), dir.as_path());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_cells_read_as_absent() {
        let dir = temp_dir("corrupt");
        let checkpoint = CampaignCheckpoint::new(&dir).unwrap();
        let point = point();
        let key = cell_key("label", 1_000, &point);
        // Garbage bytes: no identity fields at all.
        checkpoint.store_cell(key, "not a cell").unwrap();
        assert!(checkpoint.load_cell(key, &point).is_none());
        // A structurally fine cell whose identity disagrees (key collision
        // or stale grid) is also rejected.
        let mut other = point.clone();
        other.predictor = PredictorSpec::parse("tage-64k").unwrap();
        checkpoint.store_cell(key, &rendered_for(&other)).unwrap();
        assert!(checkpoint.load_cell(key, &point).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_every_identity_component() {
        let base = point();
        let key = cell_key("label", 1_000, &base);
        assert_eq!(key, cell_key("label", 1_000, &base));
        assert_ne!(key, cell_key("other", 1_000, &base));
        assert_ne!(key, cell_key("label", 2_000, &base));
        let mut predictor = base.clone();
        predictor.predictor = PredictorSpec::parse("gshare").unwrap();
        assert_ne!(key, cell_key("label", 1_000, &predictor));
        let mut scenario = base.clone();
        scenario.scenario = ScenarioSpec::RecoveryEnergy;
        assert_ne!(key, cell_key("label", 1_000, &scenario));
    }
}
