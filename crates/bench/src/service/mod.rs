//! `tage-serve`: a resumable campaign daemon over a content-addressed
//! result cache.
//!
//! The service turns the one-shot campaign runner ([`crate::campaign`])
//! into a long-lived process: clients `POST /campaigns` declarative grids
//! ([`grid::GridRequest`]), the daemon expands them into cells, shards
//! execution across a worker pool with the same [`steal_map`] scheduler the
//! CLI uses, and memoizes every finished cell into a shared
//! [`CellStore`]. Three properties fall out of that design:
//!
//! - **Resubmission is free.** A campaign's id is the fnv64 of its
//!   canonical grid JSON, and cell keys are content-addressed, so an
//!   identical or overlapping grid is answered from the store (or attached
//!   to the in-flight computation) instead of re-executed — each unique
//!   cell computes at most once, even across two concurrent campaigns.
//! - **Kill/restart is safe.** Every accepted grid is journaled to
//!   `<journal>/<id>.grid` before the submission is acknowledged; a
//!   restarted daemon re-opens journaled campaigns, restores their
//!   finished cells from the store, and re-queues only the missing ones.
//! - **Reports are byte-stable.** The final `GET /campaigns/<id>/report`
//!   document is the timing-free schema-3 rendering over stored cell
//!   bytes, which byte-matches an uninterrupted one-shot `tage-bench` run
//!   of the same grid — regardless of worker count, engine, restarts, or
//!   which campaign originally computed each cell.
//!
//! The HTTP layer ([`http`]) is a hand-rolled std-only HTTP/1.1 subset;
//! request bodies are hardened through
//! [`jsonish::validate_document`] before any field extraction.

pub mod client;
pub mod grid;
pub mod http;
pub mod metrics;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tage_sim::point::{run_point_with_engine, PredictorSpec, SchemeSpec, SweepPoint};
use tage_sim::warmcache;
use tage_sim::EngineKind;

use crate::campaign::{
    render_point_json, steal_map, CampaignCell, CampaignPointReport, CampaignReport, SkippedPoint,
};
use crate::cellstore::{cell_key, CellStore};
use crate::jsonish;
use grid::GridRequest;
use http::{read_request, write_response, HttpError, Request};
use metrics::{Metrics, MetricsSnapshot};

/// How long the accept loop and executor sleep between shutdown-flag polls.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Configuration of one [`start`]ed daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address (`127.0.0.1:0` picks a free port; see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads per executor batch.
    pub workers: usize,
    /// Engine every cell runs on (reports are engine-independent).
    pub engine: EngineKind,
    /// Content-addressed cell store directory (shared with
    /// `tage-bench --checkpoint` runs).
    pub store_dir: PathBuf,
    /// Journal directory holding one `<id>.grid` file per accepted
    /// campaign.
    pub journal_dir: PathBuf,
    /// Request-body cap, bytes.
    pub max_body_bytes: usize,
}

impl ServeOptions {
    /// Options binding an ephemeral localhost port over the given store and
    /// journal directories — what the integration tests use.
    pub fn ephemeral(store_dir: impl Into<PathBuf>, journal_dir: impl Into<PathBuf>) -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            engine: EngineKind::Multilane,
            store_dir: store_dir.into(),
            journal_dir: journal_dir.into(),
            max_body_bytes: http::DEFAULT_MAX_BODY_BYTES,
        }
    }
}

/// A cell waiting to execute: its identity plus every campaign position
/// that will receive the rendered bytes.
struct PendingCell {
    point: SweepPoint,
    branches_per_trace: usize,
    /// `(campaign id, point index)` pairs to fill when the cell finishes.
    waiters: Vec<(String, usize)>,
}

/// One accepted campaign.
struct Campaign {
    label: String,
    branches_per_trace: usize,
    grid_predictors: Vec<String>,
    grid_schemes: Vec<String>,
    grid_suites: Vec<String>,
    grid_scenarios: Vec<String>,
    /// Cell identities in grid-expansion order (for the pending listing).
    points: Vec<SweepPoint>,
    skipped: Vec<SkippedPoint>,
    /// Rendered timing-free bytes per cell; `None` while pending.
    cells: Vec<Option<String>>,
    /// Cells still `None`.
    pending: usize,
    /// First cell-execution error, which fails the whole campaign.
    error: Option<String>,
    submitted: Instant,
    /// Set when `pending` reaches zero.
    wall_seconds: Option<f64>,
}

impl Campaign {
    fn state_label(&self) -> &'static str {
        if self.error.is_some() {
            "failed"
        } else if self.pending == 0 {
            "finished"
        } else {
            "running"
        }
    }

    /// Builds the (possibly partial) schema-3 report over the finished
    /// cells, pasted verbatim in grid-expansion order.
    fn report(&self, workers: usize) -> CampaignReport {
        CampaignReport {
            label: self.label.clone(),
            branches_per_trace: self.branches_per_trace,
            grid_predictors: self.grid_predictors.clone(),
            grid_schemes: self.grid_schemes.clone(),
            grid_suites: self.grid_suites.clone(),
            grid_scenarios: self.grid_scenarios.clone(),
            points: self
                .cells
                .iter()
                .flatten()
                .map(|rendered| CampaignCell::Restored(rendered.clone()))
                .collect(),
            skipped: self.skipped.clone(),
            workers,
            steals: 0,
            wall_seconds: self.wall_seconds.unwrap_or(0.0),
            explore: None,
        }
    }
}

/// The mutex-guarded half of the daemon.
struct ServiceState {
    campaigns: BTreeMap<String, Campaign>,
    /// Unique cells pending or in flight, keyed by [`cell_key`].
    cells: HashMap<u64, PendingCell>,
    /// Keys queued for the next executor batch.
    queue: VecDeque<u64>,
    /// Unique cells inside the currently running batch.
    in_flight: usize,
}

/// Everything the accept loop, the executor, and [`ServerHandle`] share.
struct Shared {
    state: Mutex<ServiceState>,
    work_ready: Condvar,
    shutdown: AtomicBool,
    metrics: Metrics,
    store: CellStore,
    journal_dir: PathBuf,
    engine: EngineKind,
    workers: usize,
    max_body_bytes: usize,
    started: Instant,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.work_ready.notify_all();
    }
}

/// A running daemon: its bound address plus the accept and executor thread
/// handles.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound socket address (resolves `:0` bindings).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `http://host:port` base URL of this daemon.
    pub fn base_url(&self) -> String {
        format!("http://{}", self.addr)
    }

    /// Campaigns re-opened from the journal at startup.
    pub fn rehydrated(&self) -> u64 {
        Metrics::read(&self.shared.metrics.campaigns_rehydrated)
    }

    /// Whether a shutdown was requested (signal, `POST /shutdown`, or
    /// [`ServerHandle::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Asks the daemon to stop: no new work is accepted, the running batch
    /// finishes and its cells are persisted, then both threads exit.
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Waits for the accept loop and executor to exit. Call
    /// [`ServerHandle::request_shutdown`] first (or let a client
    /// `POST /shutdown`), or this blocks forever.
    pub fn join(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }
}

/// Binds, rehydrates journaled campaigns, and spawns the daemon threads.
///
/// # Errors
///
/// A human-readable string when a directory cannot be created or the
/// address cannot be bound.
pub fn start(options: ServeOptions) -> Result<ServerHandle, String> {
    let store = CellStore::new(&options.store_dir)
        .map_err(|e| format!("cell store {}: {e}", options.store_dir.display()))?;
    std::fs::create_dir_all(&options.journal_dir)
        .map_err(|e| format!("journal dir {}: {e}", options.journal_dir.display()))?;
    let listener = TcpListener::bind(&options.addr)
        .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("cannot resolve bound address: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot make listener nonblocking: {e}"))?;
    let shared = Arc::new(Shared {
        state: Mutex::new(ServiceState {
            campaigns: BTreeMap::new(),
            cells: HashMap::new(),
            queue: VecDeque::new(),
            in_flight: 0,
        }),
        work_ready: Condvar::new(),
        shutdown: AtomicBool::new(false),
        metrics: Metrics::default(),
        store,
        journal_dir: options.journal_dir.clone(),
        engine: options.engine,
        workers: options.workers.max(1),
        max_body_bytes: options.max_body_bytes,
        started: Instant::now(),
    });
    rehydrate(&shared);
    let executor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || executor_loop(&shared))
    };
    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    Ok(ServerHandle {
        addr,
        shared,
        threads: vec![acceptor, executor],
    })
}

/// Re-opens every journaled campaign: parses `<id>.grid`, checks the id
/// still matches the content, and resubmits without re-journaling. Grids
/// that no longer parse or resolve (e.g. a vanished trace directory) are
/// reported on stderr and skipped — the journal file stays for inspection.
fn rehydrate(shared: &Arc<Shared>) {
    let Ok(entries) = std::fs::read_dir(&shared.journal_dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "grid"))
        .collect();
    paths.sort();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            eprintln!(
                "tage-serve: journal {} is unreadable; skipped",
                path.display()
            );
            continue;
        };
        let outcome = GridRequest::parse(&text).and_then(|request| {
            let expected = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if request.id() != expected {
                return Err(format!(
                    "content hashes to {} but the file claims {expected}",
                    request.id()
                ));
            }
            submit(shared, &request, false)
        });
        match outcome {
            Ok(_) => Metrics::bump(&shared.metrics.campaigns_rehydrated),
            Err(error) => {
                eprintln!("tage-serve: journal {}: {error}; skipped", path.display());
            }
        }
    }
}

/// The acknowledgement of one grid submission.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SubmitOutcome {
    id: String,
    state: &'static str,
    cells: usize,
    finished_cells: usize,
    pending_cells: usize,
    /// Whether the id was already known (idempotent resubmission).
    known: bool,
}

impl SubmitOutcome {
    fn render_json(&self) -> String {
        format!(
            "{{\"id\": \"{}\", \"state\": \"{}\", \"cells\": {}, \"finished_cells\": {}, \"pending_cells\": {}, \"known\": {}}}\n",
            self.id, self.state, self.cells, self.finished_cells, self.pending_cells, self.known
        )
    }
}

/// Accepts a grid: resolves and expands it, restores every cell the store
/// already holds, queues the rest (deduplicated against cells other
/// campaigns already queued), and journals the canonical grid JSON.
///
/// Resubmitting a known id returns its current status without touching
/// anything.
fn submit(
    shared: &Arc<Shared>,
    request: &GridRequest,
    journal: bool,
) -> Result<SubmitOutcome, String> {
    let id = request.id();
    {
        let state = shared.state.lock().expect("service state poisoned");
        if let Some(campaign) = state.campaigns.get(&id) {
            return Ok(SubmitOutcome {
                id,
                state: campaign.state_label(),
                cells: campaign.cells.len(),
                finished_cells: campaign.cells.len() - campaign.pending,
                pending_cells: campaign.pending,
                known: true,
            });
        }
    }
    let spec = request.to_spec()?;
    let (points, skipped) = spec.expand();
    let keys: Vec<u64> = points
        .iter()
        .map(|point| cell_key(spec.branches_per_trace, point))
        .collect();
    // Store lookups happen outside the lock; in-flight duplicates are
    // reconciled against the cells map below.
    let cells: Vec<Option<String>> = points
        .iter()
        .zip(&keys)
        .map(|(point, &key)| shared.store.load_cell(key, point))
        .collect();
    if journal {
        write_journal(&shared.journal_dir, &id, &request.to_json())?;
    }
    let campaign = Campaign {
        label: spec.label.clone(),
        branches_per_trace: spec.branches_per_trace,
        grid_predictors: spec.predictors.iter().map(PredictorSpec::label).collect(),
        grid_schemes: spec.schemes.iter().map(SchemeSpec::label).collect(),
        grid_suites: spec.suites.iter().map(|s| s.name().to_string()).collect(),
        grid_scenarios: spec
            .scenarios
            .iter()
            .map(|s| s.label().to_string())
            .collect(),
        points: points.clone(),
        skipped,
        pending: cells.iter().filter(|cell| cell.is_none()).count(),
        cells,
        error: None,
        submitted: Instant::now(),
        wall_seconds: None,
    };
    let restored = campaign.cells.len() - campaign.pending;
    for _ in 0..restored {
        Metrics::bump(&shared.metrics.cells_restored);
    }
    let outcome = {
        let mut state = shared.state.lock().expect("service state poisoned");
        if state.campaigns.contains_key(&id) {
            // Lost a (theoretical) submission race; the winner's campaign
            // is equivalent by construction.
        } else {
            let mut campaign = campaign;
            if campaign.pending == 0 {
                campaign.wall_seconds = Some(0.0);
                Metrics::bump(&shared.metrics.campaigns_finished);
            }
            for (index, cell) in campaign.cells.iter().enumerate() {
                if cell.is_some() {
                    continue;
                }
                let key = keys[index];
                match state.cells.get_mut(&key) {
                    Some(pending) => pending.waiters.push((id.clone(), index)),
                    None => {
                        state.cells.insert(
                            key,
                            PendingCell {
                                point: campaign.points[index].clone(),
                                branches_per_trace: campaign.branches_per_trace,
                                waiters: vec![(id.clone(), index)],
                            },
                        );
                        state.queue.push_back(key);
                    }
                }
            }
            Metrics::bump(&shared.metrics.campaigns_submitted);
            state.campaigns.insert(id.clone(), campaign);
        }
        let campaign = &state.campaigns[&id];
        SubmitOutcome {
            id: id.clone(),
            state: campaign.state_label(),
            cells: campaign.cells.len(),
            finished_cells: campaign.cells.len() - campaign.pending,
            pending_cells: campaign.pending,
            known: false,
        }
    };
    shared.work_ready.notify_all();
    Ok(outcome)
}

/// Atomically writes `<journal_dir>/<id>.grid` (temp file + rename).
fn write_journal(journal_dir: &Path, id: &str, canonical_json: &str) -> Result<(), String> {
    static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let temp = journal_dir.join(format!(
        ".{id}.{}.{}.tmp",
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let path = journal_dir.join(format!("{id}.grid"));
    let write = || -> std::io::Result<()> {
        let mut file = std::fs::File::create(&temp)?;
        file.write_all(canonical_json.as_bytes())?;
        file.sync_all()?;
        std::fs::rename(&temp, &path)
    };
    write().map_err(|e| {
        let _ = std::fs::remove_file(&temp);
        format!("cannot journal campaign {id}: {e}")
    })
}

/// What one worker produced for one cell.
enum CellOutcome {
    /// The rendered timing-free bytes, ready to store and paste.
    Done(String),
    /// The point failed; every waiting campaign fails with this message.
    Failed(String),
    /// Shutdown arrived before the cell started; it goes back on the queue.
    Aborted,
}

/// The executor: drains the queue into batches, runs each batch through
/// [`steal_map`], persists finished cells to the store, and distributes the
/// bytes to every waiting campaign. Exits when shutdown is requested and
/// the current batch has been flushed.
fn executor_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<(u64, SweepPoint, usize)> = {
            let mut state = shared.state.lock().expect("service state poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !state.queue.is_empty() {
                    break;
                }
                let (next, _) = shared
                    .work_ready
                    .wait_timeout(state, POLL_INTERVAL)
                    .expect("service state poisoned");
                state = next;
            }
            let keys: Vec<u64> = state.queue.drain(..).collect();
            state.in_flight = keys.len();
            keys.into_iter()
                .map(|key| {
                    let cell = &state.cells[&key];
                    (key, cell.point.clone(), cell.branches_per_trace)
                })
                .collect()
        };
        Metrics::bump(&shared.metrics.batches);
        let batch_start = Instant::now();
        let (results, stats) = steal_map(&batch, shared.workers, |(_, point, branches)| {
            if shared.shutdown.load(Ordering::SeqCst) {
                return CellOutcome::Aborted;
            }
            match run_point_with_engine(point, *branches, shared.engine) {
                Ok(result) => CellOutcome::Done(render_point_json(
                    &CampaignPointReport {
                        result,
                        // Never rendered: cells are stored timing-free.
                        wall_seconds: 0.0,
                    },
                    false,
                )),
                Err(error) => CellOutcome::Failed(error.to_string()),
            }
        });
        shared
            .metrics
            .steals
            .fetch_add(stats.steals, Ordering::Relaxed);
        shared
            .metrics
            .busy_micros
            .fetch_add(batch_start.elapsed().as_micros() as u64, Ordering::Relaxed);
        // Persist before publishing: a kill after this loop loses nothing.
        for ((key, _, _), outcome) in batch.iter().zip(&results) {
            if let CellOutcome::Done(rendered) = outcome {
                let _ = shared.store.store_cell(*key, rendered);
                Metrics::bump(&shared.metrics.cells_computed);
            }
        }
        let mut state = shared.state.lock().expect("service state poisoned");
        for ((key, _, _), outcome) in batch.iter().zip(results) {
            match outcome {
                CellOutcome::Done(rendered) => {
                    let cell = state.cells.remove(key).expect("batched cell tracked");
                    for (campaign_id, index) in cell.waiters {
                        finish_cell(&mut state, shared, &campaign_id, index, &rendered);
                    }
                }
                CellOutcome::Failed(error) => {
                    let cell = state.cells.remove(key).expect("batched cell tracked");
                    for (campaign_id, _) in cell.waiters {
                        fail_campaign(&mut state, shared, &campaign_id, &error);
                    }
                }
                CellOutcome::Aborted => state.queue.push_back(*key),
            }
        }
        state.in_flight = 0;
    }
}

/// Pastes a finished cell into one campaign position and closes the
/// campaign when it was the last pending cell.
fn finish_cell(
    state: &mut ServiceState,
    shared: &Shared,
    campaign_id: &str,
    index: usize,
    rendered: &str,
) {
    let Some(campaign) = state.campaigns.get_mut(campaign_id) else {
        return;
    };
    if campaign.cells[index].is_none() {
        campaign.cells[index] = Some(rendered.to_string());
        campaign.pending -= 1;
    }
    if campaign.pending == 0 && campaign.wall_seconds.is_none() && campaign.error.is_none() {
        campaign.wall_seconds = Some(campaign.submitted.elapsed().as_secs_f64());
        Metrics::bump(&shared.metrics.campaigns_finished);
    }
}

/// Marks a campaign failed on its first cell error.
fn fail_campaign(state: &mut ServiceState, shared: &Shared, campaign_id: &str, error: &str) {
    let Some(campaign) = state.campaigns.get_mut(campaign_id) else {
        return;
    };
    if campaign.error.is_none() {
        campaign.error = Some(error.to_string());
        Metrics::bump(&shared.metrics.campaigns_failed);
    }
}

/// The accept loop: single-threaded, nonblocking accept polling the
/// shutdown flag. Each connection carries one request.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                handle_connection(&mut stream, shared);
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reads one request, routes it, writes one response.
fn handle_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    Metrics::bump(&shared.metrics.requests);
    match read_request(stream, shared.max_body_bytes) {
        Ok(request) => {
            let (status, reason, body) = route(shared, &request);
            write_response(stream, status, reason, &body);
        }
        Err(HttpError::Io(_)) => {}
        Err(error @ HttpError::Malformed(_)) => {
            write_response(stream, 400, "Bad Request", &error_body(&error.to_string()));
        }
        Err(error @ HttpError::TooLarge { .. }) => {
            write_response(
                stream,
                413,
                "Payload Too Large",
                &error_body(&error.to_string()),
            );
        }
    }
}

fn error_body(message: &str) -> String {
    format!("{{\"error\": \"{}\"}}\n", jsonish::escape(message))
}

/// Dispatches one request to its endpoint.
fn route(shared: &Arc<Shared>, request: &Request) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/campaigns") => submit_endpoint(shared, &request.body),
        ("GET", "/metrics") => (200, "OK", render_metrics(shared)),
        ("GET", "/healthz") => (200, "OK", "{\"ok\": true}\n".to_string()),
        ("POST", "/shutdown") => {
            shared.request_shutdown();
            (
                200,
                "OK",
                "{\"ok\": true, \"shutting_down\": true}\n".to_string(),
            )
        }
        ("GET", path) => {
            if let Some(rest) = path.strip_prefix("/campaigns/") {
                if let Some(id) = rest.strip_suffix("/report") {
                    report_endpoint(shared, id)
                } else if rest.contains('/') {
                    (404, "Not Found", error_body("no such endpoint"))
                } else {
                    status_endpoint(shared, rest)
                }
            } else {
                (404, "Not Found", error_body("no such endpoint"))
            }
        }
        _ => (404, "Not Found", error_body("no such endpoint")),
    }
}

/// `POST /campaigns`: hardened parse, then [`submit`].
fn submit_endpoint(shared: &Arc<Shared>, body: &[u8]) -> (u16, &'static str, String) {
    let Ok(body) = std::str::from_utf8(body) else {
        return (400, "Bad Request", error_body("body is not UTF-8"));
    };
    if let Err(error) = jsonish::validate_document(body, jsonish::DEFAULT_MAX_DEPTH) {
        return (400, "Bad Request", error_body(&error.to_string()));
    }
    let request = match GridRequest::parse(body) {
        Ok(request) => request,
        Err(error) => return (400, "Bad Request", error_body(&error)),
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return (
            503,
            "Service Unavailable",
            error_body("daemon is shutting down"),
        );
    }
    match submit(shared, &request, true) {
        Ok(outcome) => (202, "Accepted", outcome.render_json()),
        Err(error) => (400, "Bad Request", error_body(&error)),
    }
}

/// `GET /campaigns/<id>`: incremental status — finished cells pasted
/// verbatim into a partial schema-3 report, pending cells listed by
/// identity.
fn status_endpoint(shared: &Arc<Shared>, id: &str) -> (u16, &'static str, String) {
    let state = shared.state.lock().expect("service state poisoned");
    let Some(campaign) = state.campaigns.get(id) else {
        return (
            404,
            "Not Found",
            error_body(&format!("unknown campaign {id}")),
        );
    };
    let pending: Vec<String> = campaign
        .cells
        .iter()
        .enumerate()
        .filter(|(_, cell)| cell.is_none())
        .map(|(index, _)| {
            let point = &campaign.points[index];
            format!(
                "  {{\"predictor\": \"{}\", \"scheme\": \"{}\", \"suite\": \"{}\", \"scenario\": \"{}\"}}",
                jsonish::escape(&point.predictor.label()),
                jsonish::escape(&point.scheme.label()),
                jsonish::escape(point.suite.name()),
                jsonish::escape(point.scenario.label()),
            )
        })
        .collect();
    let pending = if pending.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n ]", pending.join(",\n"))
    };
    let error = match &campaign.error {
        Some(error) => format!(" \"error\": \"{}\",\n", jsonish::escape(error)),
        None => String::new(),
    };
    let body = format!(
        "{{\n \"id\": \"{id}\",\n \"state\": \"{}\",\n \"cells\": {},\n \"finished_cells\": {},\n \"pending_cells\": {},\n{error} \"pending\": {pending},\n \"report\": {}}}\n",
        campaign.state_label(),
        campaign.cells.len(),
        campaign.cells.len() - campaign.pending,
        campaign.pending,
        campaign.report(shared.workers).render_json(false),
    );
    (200, "OK", body)
}

/// `GET /campaigns/<id>/report`: the final byte-stable document — exactly
/// [`CampaignReport::render_json`]`(false)` over the stored cell bytes,
/// which byte-matches a one-shot CLI run of the same grid.
fn report_endpoint(shared: &Arc<Shared>, id: &str) -> (u16, &'static str, String) {
    let state = shared.state.lock().expect("service state poisoned");
    let Some(campaign) = state.campaigns.get(id) else {
        return (
            404,
            "Not Found",
            error_body(&format!("unknown campaign {id}")),
        );
    };
    if let Some(error) = &campaign.error {
        return (500, "Internal Server Error", error_body(error));
    }
    if campaign.pending > 0 {
        return (
            409,
            "Conflict",
            error_body(&format!(
                "campaign {id} still has {} pending cells",
                campaign.pending
            )),
        );
    }
    (
        200,
        "OK",
        campaign.report(shared.workers).render_json(false),
    )
}

/// `GET /metrics`.
fn render_metrics(shared: &Arc<Shared>) -> String {
    let (queue_depth, cells_in_flight, campaigns_open, campaign_wall_seconds) = {
        let state = shared.state.lock().expect("service state poisoned");
        let walls: Vec<(String, f64)> = state
            .campaigns
            .iter()
            .filter_map(|(id, campaign)| campaign.wall_seconds.map(|wall| (id.clone(), wall)))
            .collect();
        let open = state
            .campaigns
            .values()
            .filter(|campaign| campaign.pending > 0 && campaign.error.is_none())
            .count();
        (state.queue.len(), state.in_flight, open, walls)
    };
    let (warmcache_hits, warmcache_misses) = warmcache::global_counters();
    let metrics = &shared.metrics;
    MetricsSnapshot {
        uptime_seconds: shared.started.elapsed().as_secs_f64(),
        workers: shared.workers,
        queue_depth,
        cells_in_flight,
        campaigns_open,
        campaign_wall_seconds,
        requests: Metrics::read(&metrics.requests),
        campaigns_submitted: Metrics::read(&metrics.campaigns_submitted),
        campaigns_rehydrated: Metrics::read(&metrics.campaigns_rehydrated),
        campaigns_finished: Metrics::read(&metrics.campaigns_finished),
        campaigns_failed: Metrics::read(&metrics.campaigns_failed),
        cells_computed: Metrics::read(&metrics.cells_computed),
        cells_restored: Metrics::read(&metrics.cells_restored),
        cache_hits: shared.store.hits(),
        cache_misses: shared.store.misses(),
        warmcache_hits,
        warmcache_misses,
        batches: Metrics::read(&metrics.batches),
        steals: Metrics::read(&metrics.steals),
        busy_seconds: Metrics::read(&metrics.busy_micros) as f64 / 1e6,
    }
    .render_json()
}
