//! Confidence-driven **prefetch throttling**.
//!
//! A hardware prefetcher keeps issuing requests into the shadow of every
//! unresolved branch. When that branch was mispredicted, the shadow is
//! wrong-path work: the prefetches drag useless lines across the memory
//! hierarchy (bandwidth, cache pollution, DRAM energy). Branch confidence
//! is the natural throttle — suppress prefetch issue behind predictions the
//! scheme grades shaky, keep it running behind confident ones.
//!
//! [`PrefetchObserver`] charges an analytical per-branch model of that
//! trade-off, in the same spirit as the fetch-gating model
//! ([`crate::gating`]): every measured branch carries a shadow of
//! [`PrefetchModel::shadow_prefetches`] would-be prefetch issues, of which
//! a [`PrefetchModel::useful_fraction`] would have been useful had the
//! prediction been correct (wrong-path prefetches are useless by
//! definition). A [`PrefetchPolicy`] maps each confidence level to
//! issue/suppress; the observer accumulates
//!
//! * **useless traffic avoided** — suppressed prefetches that would have
//!   been useless (the win), and
//! * **coverage lost** — suppressed prefetches that would have been useful
//!   (the cost),
//!
//! reported per kilo-instruction off the measured instruction stream.

use core::fmt;

use tage_confidence::ConfidenceLevel;
use tage_predictors::PredictorCore;

use crate::engine::{BranchEvent, EngineObserver};
use crate::per_kilo_instruction;

/// What the prefetcher does in the shadow of a branch at a given
/// confidence level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchAction {
    /// Keep issuing prefetches at the full rate.
    Issue,
    /// Suppress prefetch issue until the branch resolves.
    Suppress,
}

/// A throttling policy: one action per confidence level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchPolicy {
    /// Action behind low-confidence predictions.
    pub on_low: PrefetchAction,
    /// Action behind medium-confidence predictions.
    pub on_medium: PrefetchAction,
    /// Action behind high-confidence predictions.
    pub on_high: PrefetchAction,
}

impl PrefetchPolicy {
    /// Never throttle (the baseline prefetcher).
    pub fn never() -> Self {
        PrefetchPolicy {
            on_low: PrefetchAction::Issue,
            on_medium: PrefetchAction::Issue,
            on_high: PrefetchAction::Issue,
        }
    }

    /// Suppress behind low-confidence predictions only.
    pub fn throttle_low() -> Self {
        PrefetchPolicy {
            on_low: PrefetchAction::Suppress,
            on_medium: PrefetchAction::Issue,
            on_high: PrefetchAction::Issue,
        }
    }

    /// Suppress behind low- and medium-confidence predictions — the
    /// aggressive end of the trade-off.
    pub fn throttle_low_medium() -> Self {
        PrefetchPolicy {
            on_low: PrefetchAction::Suppress,
            on_medium: PrefetchAction::Suppress,
            on_high: PrefetchAction::Issue,
        }
    }

    /// The action for a given confidence level.
    pub fn action(&self, level: ConfidenceLevel) -> PrefetchAction {
        match level {
            ConfidenceLevel::Low => self.on_low,
            ConfidenceLevel::Medium => self.on_medium,
            ConfidenceLevel::High => self.on_high,
        }
    }
}

/// Cost parameters of the prefetch shadow model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrefetchModel {
    /// Prefetch requests the prefetcher would issue in the shadow of one
    /// unresolved branch (resolution latency × issue rate).
    pub shadow_prefetches: f64,
    /// Fraction of correct-path shadow prefetches that turn out useful
    /// (prefetcher accuracy); wrong-path shadows are useless regardless.
    pub useful_fraction: f64,
}

impl Default for PrefetchModel {
    fn default() -> Self {
        PrefetchModel {
            // 16-cycle resolution, one prefetch per 4 cycles.
            shadow_prefetches: 4.0,
            useful_fraction: 0.5,
        }
    }
}

/// The prefetch-throttling accounting as a generic engine observer.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchObserver {
    policy: PrefetchPolicy,
    model: PrefetchModel,
    /// Measured conditional branches.
    pub branches: u64,
    /// Measured instructions (both delivery paths, each counted once).
    pub instructions: u64,
    /// Prefetches issued that were useful (correct-path, hit by demand).
    pub useful_issued: f64,
    /// Prefetches issued that were useless traffic (wrong-path shadows plus
    /// the inaccurate tail of correct-path shadows).
    pub useless_issued: f64,
    /// Useless prefetch traffic avoided by suppression (the throttling win).
    pub useless_avoided: f64,
    /// Useful prefetches lost to suppression (coverage cost).
    pub coverage_lost: f64,
}

impl PrefetchObserver {
    /// An observer charging the given policy and cost model.
    pub fn new(policy: PrefetchPolicy, model: PrefetchModel) -> Self {
        PrefetchObserver {
            policy,
            model,
            branches: 0,
            instructions: 0,
            useful_issued: 0.0,
            useless_issued: 0.0,
            useless_avoided: 0.0,
            coverage_lost: 0.0,
        }
    }

    /// The policy in effect.
    pub fn policy(&self) -> &PrefetchPolicy {
        &self.policy
    }

    /// The cost model in effect.
    pub fn model(&self) -> &PrefetchModel {
        &self.model
    }

    /// Useless prefetch traffic issued, per kilo-instruction.
    pub fn useless_issued_pki(&self) -> f64 {
        per_kilo_instruction(self.useless_issued, self.instructions)
    }

    /// Useless prefetch traffic avoided, per kilo-instruction.
    pub fn useless_avoided_pki(&self) -> f64 {
        per_kilo_instruction(self.useless_avoided, self.instructions)
    }

    /// Useful prefetch coverage lost, per kilo-instruction.
    pub fn coverage_lost_pki(&self) -> f64 {
        per_kilo_instruction(self.coverage_lost, self.instructions)
    }

    /// Useful prefetches preserved, per kilo-instruction.
    pub fn useful_issued_pki(&self) -> f64 {
        per_kilo_instruction(self.useful_issued, self.instructions)
    }
}

impl Default for PrefetchObserver {
    fn default() -> Self {
        PrefetchObserver::new(PrefetchPolicy::throttle_low(), PrefetchModel::default())
    }
}

impl fmt::Display for PrefetchObserver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "avoided {:.2} useless/KI at {:.2} coverage-lost/KI",
            self.useless_avoided_pki(),
            self.coverage_lost_pki()
        )
    }
}

impl<P: PredictorCore> EngineObserver<P> for PrefetchObserver {
    fn on_branch(&mut self, _predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
        if !event.in_measurement {
            return;
        }
        self.branches += 1;
        self.instructions += event.instructions;
        let shadow = self.model.shadow_prefetches;
        let useful = shadow * self.model.useful_fraction;
        match (
            self.policy.action(event.assessment.level),
            event.mispredicted,
        ) {
            (PrefetchAction::Issue, true) => {
                // The whole shadow was wrong-path traffic.
                self.useless_issued += shadow;
            }
            (PrefetchAction::Issue, false) => {
                self.useful_issued += useful;
                self.useless_issued += shadow - useful;
            }
            (PrefetchAction::Suppress, true) => {
                self.useless_avoided += shadow;
            }
            (PrefetchAction::Suppress, false) => {
                self.coverage_lost += useful;
                self.useless_avoided += shadow - useful;
            }
        }
    }

    fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
        if in_measurement {
            self.instructions += instructions;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::{CounterAutomaton, TageConfig, TagePredictor};
    use tage_confidence::TageConfidenceClassifier;

    use crate::engine::SimEngine;

    fn run(policy: PrefetchPolicy) -> (PrefetchObserver, crate::engine::EngineSummary) {
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let trace = tage_traces::suites::cbp1_like()
            .trace("MM-5")
            .unwrap()
            .generate(25_000);
        let mut engine = SimEngine::new(
            TagePredictor::new(config.clone()),
            TageConfidenceClassifier::new(&config),
        );
        let mut observer = PrefetchObserver::new(policy, PrefetchModel::default());
        let summary = engine.run(&trace, &mut observer);
        (observer, summary)
    }

    #[test]
    fn never_throttling_issues_every_shadow() {
        let (observer, summary) = run(PrefetchPolicy::never());
        assert_eq!(observer.branches, summary.measured_branches);
        assert_eq!(observer.instructions, summary.measured_instructions);
        assert_eq!(observer.useless_avoided, 0.0);
        assert_eq!(observer.coverage_lost, 0.0);
        let total_shadow = observer.branches as f64 * PrefetchModel::default().shadow_prefetches;
        assert!(
            (observer.useful_issued + observer.useless_issued - total_shadow).abs() < 1e-6,
            "every shadow prefetch is either useful or useless"
        );
    }

    #[test]
    fn throttling_low_avoids_more_useless_traffic_than_coverage_it_costs() {
        // Low-confidence predictions mispredict ≳ 30 % of the time, so their
        // shadows are disproportionately wrong-path: suppressing them should
        // avoid more useless traffic than the useful coverage it loses.
        let (observer, _) = run(PrefetchPolicy::throttle_low());
        assert!(observer.useless_avoided > 0.0);
        assert!(observer.coverage_lost > 0.0);
        assert!(
            observer.useless_avoided > observer.coverage_lost,
            "avoided {} vs coverage lost {}",
            observer.useless_avoided,
            observer.coverage_lost
        );
        assert!(observer.useless_avoided_pki() > observer.coverage_lost_pki());
    }

    #[test]
    fn more_aggressive_throttling_trades_coverage_for_traffic() {
        let (low, _) = run(PrefetchPolicy::throttle_low());
        let (low_medium, _) = run(PrefetchPolicy::throttle_low_medium());
        assert!(low_medium.useless_avoided > low.useless_avoided);
        assert!(low_medium.coverage_lost > low.coverage_lost);
        assert!(low_medium.useless_issued < low.useless_issued);
    }

    #[test]
    fn policy_accessors_and_display() {
        let policy = PrefetchPolicy::throttle_low_medium();
        assert_eq!(
            policy.action(ConfidenceLevel::Low),
            PrefetchAction::Suppress
        );
        assert_eq!(
            policy.action(ConfidenceLevel::Medium),
            PrefetchAction::Suppress
        );
        assert_eq!(policy.action(ConfidenceLevel::High), PrefetchAction::Issue);
        let (observer, _) = run(policy);
        assert!(format!("{observer}").contains("useless/KI"));
        assert!(observer.useful_issued_pki() >= 0.0);
        assert!(observer.useless_issued_pki() > 0.0);
    }
}
