//! The basic unit of a branch trace: one dynamic conditional-branch instance.

use core::fmt;

/// The kind of control-flow instruction a trace record describes.
///
/// The paper only evaluates *conditional* branches, but championship-style
/// traces also carry unconditional jumps, calls and returns (they contribute
/// to the path/instruction counts even though they are not predicted by the
/// conditional predictor). The synthetic suites emit a realistic mix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BranchKind {
    /// A conditional direct branch — the only kind the predictor predicts.
    #[default]
    Conditional,
    /// An unconditional direct jump.
    Unconditional,
    /// A direct call.
    Call,
    /// A return.
    Return,
    /// An indirect jump or indirect call.
    Indirect,
}

impl BranchKind {
    /// Returns `true` if this kind of branch is predicted by the conditional
    /// branch predictor (and therefore participates in confidence
    /// estimation).
    #[inline]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }
}

impl fmt::Display for BranchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchKind::Conditional => "conditional",
            BranchKind::Unconditional => "unconditional",
            BranchKind::Call => "call",
            BranchKind::Return => "return",
            BranchKind::Indirect => "indirect",
        };
        f.write_str(s)
    }
}

/// One dynamic branch instance of a trace.
///
/// A record carries everything a trace-driven branch-prediction simulation
/// needs: the branch address, the outcome, the target, the kind of branch and
/// the number of non-branch instructions executed since the previous record
/// (so that misprediction rates can be reported per kilo-*instruction* as in
/// the paper, not only per kilo-branch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BranchRecord {
    /// Program counter (address) of the branch instruction.
    pub pc: u64,
    /// Branch target address.
    pub target: u64,
    /// Outcome of the branch: `true` = taken.
    pub taken: bool,
    /// Kind of control-flow instruction.
    pub kind: BranchKind,
    /// Number of non-branch instructions executed since the previous record.
    ///
    /// The instruction attributed to the branch itself is *not* included;
    /// a record therefore accounts for `gap + 1` instructions.
    pub gap: u32,
}

impl BranchRecord {
    /// Creates a conditional branch record with a default instruction gap of
    /// zero.
    ///
    /// # Example
    ///
    /// ```
    /// use tage_traces::BranchRecord;
    ///
    /// let r = BranchRecord::conditional(0x400_000, true);
    /// assert!(r.taken);
    /// assert!(r.kind.is_conditional());
    /// ```
    #[inline]
    pub fn conditional(pc: u64, taken: bool) -> Self {
        BranchRecord {
            pc,
            target: pc.wrapping_add(4),
            taken,
            kind: BranchKind::Conditional,
            gap: 0,
        }
    }

    /// Sets the branch target, consuming and returning the record
    /// (builder style).
    #[inline]
    pub fn with_target(mut self, target: u64) -> Self {
        self.target = target;
        self
    }

    /// Sets the instruction gap, consuming and returning the record
    /// (builder style).
    #[inline]
    pub fn with_gap(mut self, gap: u32) -> Self {
        self.gap = gap;
        self
    }

    /// Sets the branch kind, consuming and returning the record
    /// (builder style).
    #[inline]
    pub fn with_kind(mut self, kind: BranchKind) -> Self {
        self.kind = kind;
        self
    }

    /// Number of instructions this record accounts for (the gap plus the
    /// branch instruction itself).
    #[inline]
    pub fn instructions(&self) -> u64 {
        u64::from(self.gap) + 1
    }
}

impl Default for BranchRecord {
    fn default() -> Self {
        BranchRecord::conditional(0, false)
    }
}

impl fmt::Display for BranchRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#x} {} {} -> {:#x} (+{})",
            self.pc,
            self.kind,
            if self.taken { "T" } else { "N" },
            self.target,
            self.gap
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_constructor_sets_kind_and_fallthrough_target() {
        let r = BranchRecord::conditional(0x1000, false);
        assert_eq!(r.kind, BranchKind::Conditional);
        assert_eq!(r.target, 0x1004);
        assert!(!r.taken);
        assert_eq!(r.gap, 0);
    }

    #[test]
    fn builder_style_setters_compose() {
        let r = BranchRecord::conditional(0x1000, true)
            .with_target(0x2000)
            .with_gap(7)
            .with_kind(BranchKind::Call);
        assert_eq!(r.target, 0x2000);
        assert_eq!(r.gap, 7);
        assert_eq!(r.kind, BranchKind::Call);
        assert_eq!(r.instructions(), 8);
    }

    #[test]
    fn instructions_counts_gap_plus_branch() {
        assert_eq!(BranchRecord::conditional(0, true).instructions(), 1);
        assert_eq!(
            BranchRecord::conditional(0, true)
                .with_gap(10)
                .instructions(),
            11
        );
    }

    #[test]
    fn only_conditional_kind_is_predicted() {
        assert!(BranchKind::Conditional.is_conditional());
        for kind in [
            BranchKind::Unconditional,
            BranchKind::Call,
            BranchKind::Return,
            BranchKind::Indirect,
        ] {
            assert!(!kind.is_conditional(), "{kind} must not be conditional");
        }
    }

    #[test]
    fn display_formats_are_nonempty() {
        let r = BranchRecord::conditional(0x1234, true);
        assert!(!format!("{r}").is_empty());
        assert!(!format!("{}", BranchKind::Return).is_empty());
    }

    #[test]
    fn pc_wraparound_target_does_not_panic() {
        let r = BranchRecord::conditional(u64::MAX, true);
        assert_eq!(r.target, 3);
    }
}
