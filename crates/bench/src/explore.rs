//! Storage-budget design-space exploration (`tage-bench --explore`).
//!
//! The paper's central trade-off is prediction accuracy versus predictor
//! storage: every TAGE sizing decision (tables, entries, tags, history
//! reach) buys MPKI with bits. This module turns that trade-off into a
//! first-class campaign axis: [`enumerate_geometries`] walks a deterministic
//! grid of [`TageGeometry`] candidates and keeps the ones that fit a storage
//! budget, and [`attach_explore_section`] ranks the finished campaign cells
//! into a Pareto front over (storage, MPKI, residual-misprediction rate).
//!
//! # Determinism contract
//!
//! The Pareto front is derived from the *rendered timing-free cell bytes*
//! ([`CampaignReport::cell_bytes`]), never from in-memory `f64` results.
//! Freshly computed cells carry full-precision floats while checkpoint-
//! restored cells carry the 6-decimal rendered strings; re-parsing the
//! rendered form for every cell makes the explore section byte-identical
//! across worker counts, engines, and kill/`--resume` splits — the same
//! contract the point cells themselves honour.

use tage::{CounterAutomaton, TageConfig, TageGeometry};
use tage_sim::point::PredictorSpec;
use tage_traces::jsonish;

use crate::campaign::{CampaignReport, ExploreSection, ParetoEntry};

/// Number-of-tagged-tables values the enumeration sweeps.
const TABLE_COUNTS: [usize; 3] = [4, 6, 8];
/// Tag widths the enumeration sweeps.
const TAG_BITS: [u32; 3] = [8, 10, 12];
/// Per-table log2-entry counts the enumeration sweeps.
const TAGGED_INDEX_BITS: std::ops::RangeInclusive<u32> = 6..=11;

/// History reach paired with each table count: shallow geometric series for
/// few tables, the paper's deep series for eight.
fn history_range(tables: usize) -> (usize, usize) {
    match tables {
        4 => (3, 80),
        6 => (5, 130),
        _ => (5, 300),
    }
}

/// Enumerates candidate geometries under `budget_bits`, largest first.
///
/// The grid is fixed: table counts × per-table index bits × tag widths,
/// with the bimodal table 4× the tagged-table size and the history series
/// keyed to the table count. Candidates that fail [`TageGeometry`]
/// validation or exceed the budget are dropped; survivors are sorted by
/// descending storage (best use of the budget first) with the spec digest
/// as an order tie-break, then truncated to `max_geometries`. The result is
/// a pure function of `(budget_bits, max_geometries)` — the determinism
/// anchor for `--explore` reports.
pub fn enumerate_geometries(budget_bits: u64, max_geometries: usize) -> Vec<TageGeometry> {
    let mut geometries = Vec::new();
    for tables in TABLE_COUNTS {
        let (min_history, max_history) = history_range(tables);
        for index_bits in TAGGED_INDEX_BITS {
            for tag_bits in TAG_BITS {
                let config = TageConfig::small()
                    .to_builder()
                    .num_tagged_tables(tables)
                    .tagged_index_bits(index_bits)
                    .tag_bits(tag_bits)
                    .bimodal_index_bits(index_bits + 2)
                    .min_history(min_history)
                    .max_history(max_history)
                    .automaton(CounterAutomaton::paper_default())
                    .build();
                let Ok(config) = config else { continue };
                let geometry = TageGeometry::from_config(&config);
                if geometry.validate().is_err() || geometry.storage_bits() > budget_bits {
                    continue;
                }
                geometries.push(geometry);
            }
        }
    }
    geometries.sort_by_key(|g| (std::cmp::Reverse(g.storage_bits()), g.spec_digest()));
    geometries.truncate(max_geometries);
    geometries
}

/// Wraps enumerated geometries as campaign predictor-axis values.
///
/// Each candidate is tagged with a synthetic `explore-<digest>` source so
/// its grid token (and therefore its checkpoint cell key) stays unique and
/// stable across runs.
pub fn explore_predictors(geometries: Vec<TageGeometry>) -> Vec<PredictorSpec> {
    geometries
        .into_iter()
        .map(|geometry| {
            let source = format!("explore-{:016x}", geometry.spec_digest());
            PredictorSpec::Geometry { geometry, source }
        })
        .collect()
}

/// One campaign cell re-parsed from its rendered bytes.
struct CellMetrics {
    predictor: String,
    storage_bits: u64,
    mean_mpki: f64,
    high_mprate_mkp: f64,
}

fn parse_cell(cell: &str) -> Result<CellMetrics, String> {
    let field = |key: &str| {
        jsonish::number_field(cell, key)
            .ok_or_else(|| format!("explore: cell is missing numeric \"{key}\""))
    };
    Ok(CellMetrics {
        predictor: jsonish::string_field(cell, "predictor")
            .ok_or("explore: cell is missing \"predictor\"")?,
        storage_bits: field("storage_bits")? as u64,
        mean_mpki: field("mean_mpki")?,
        high_mprate_mkp: field("high_mprate_mkp")?,
    })
}

/// `a` dominates `b` when it is no worse on every objective and strictly
/// better on at least one. All three objectives are minimized:
/// `storage_bits` (cost), `mean_mpki` (accuracy), and `high_mprate_mkp`
/// (confidence quality — mispredictions surviving inside the high bucket).
fn dominates(a: &CellMetrics, b: &CellMetrics) -> bool {
    let no_worse = a.storage_bits <= b.storage_bits
        && a.mean_mpki <= b.mean_mpki
        && a.high_mprate_mkp <= b.high_mprate_mkp;
    let strictly_better = a.storage_bits < b.storage_bits
        || a.mean_mpki < b.mean_mpki
        || a.high_mprate_mkp < b.high_mprate_mkp;
    no_worse && strictly_better
}

/// Computes the Pareto front over rendered cell bytes.
///
/// Input cells come from [`CampaignReport::cell_bytes`]; each must carry
/// `predictor`, `storage_bits`, `mean_mpki`, and `high_mprate_mkp`.
/// Non-dominated cells are returned sorted by ascending storage, then MPKI,
/// then predictor label — a total order, so the front is unique.
///
/// # Errors
///
/// Returns an error when a cell lacks one of the ranked fields.
pub fn pareto_front(cells: &[String]) -> Result<Vec<ParetoEntry>, String> {
    let metrics: Vec<CellMetrics> = cells
        .iter()
        .map(|cell| parse_cell(cell))
        .collect::<Result<_, _>>()?;
    let mut front: Vec<&CellMetrics> = metrics
        .iter()
        .filter(|candidate| !metrics.iter().any(|other| dominates(other, candidate)))
        .collect();
    front.sort_by(|a, b| {
        a.storage_bits
            .cmp(&b.storage_bits)
            .then(a.mean_mpki.total_cmp(&b.mean_mpki))
            .then(a.predictor.cmp(&b.predictor))
    });
    Ok(front
        .into_iter()
        .map(|m| ParetoEntry {
            predictor: m.predictor.clone(),
            storage_bits: m.storage_bits,
            mean_mpki: m.mean_mpki,
            high_mprate_mkp: m.high_mprate_mkp,
        })
        .collect())
}

/// Ranks the report's cells and attaches the `explore` section.
///
/// `candidates` is the number of geometries the enumeration produced (the
/// report may hold more cells than that when the suite axis has several
/// entries; every cell still competes on the same three objectives).
///
/// # Errors
///
/// Returns an error when a cell cannot be ranked (missing fields).
pub fn attach_explore_section(
    report: &mut CampaignReport,
    budget_bits: u64,
    candidates: usize,
) -> Result<(), String> {
    let pareto = pareto_front(&report.cell_bytes())?;
    report.explore = Some(ExploreSection {
        budget_bits,
        candidates,
        pareto,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_is_deterministic_and_respects_the_budget() {
        let a = enumerate_geometries(32 * 1024, 8);
        let b = enumerate_geometries(32 * 1024, 8);
        assert!(!a.is_empty());
        assert!(a.len() <= 8);
        assert!(a.iter().all(|g| g.storage_bits() <= 32 * 1024));
        assert!(a.iter().all(|g| g.validate().is_ok()));
        let digests = |v: &[TageGeometry]| v.iter().map(|g| g.spec_digest()).collect::<Vec<_>>();
        assert_eq!(digests(&a), digests(&b));
        // Largest-first: best use of the budget heads the list.
        assert!(a
            .windows(2)
            .all(|w| w[0].storage_bits() >= w[1].storage_bits()));
    }

    #[test]
    fn tighter_budgets_shrink_the_candidate_set() {
        let wide = enumerate_geometries(256 * 1024, usize::MAX);
        let narrow = enumerate_geometries(16 * 1024, usize::MAX);
        assert!(narrow.len() < wide.len());
        // Every narrow candidate also fits the wide budget.
        let wide_digests: Vec<u64> = wide.iter().map(|g| g.spec_digest()).collect();
        assert!(narrow
            .iter()
            .all(|g| wide_digests.contains(&g.spec_digest())));
    }

    #[test]
    fn explore_predictors_have_unique_stable_tokens() {
        let predictors = explore_predictors(enumerate_geometries(64 * 1024, 6));
        let tokens: Vec<String> = predictors.iter().map(|p| p.token()).collect();
        let mut deduped = tokens.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), tokens.len(), "{tokens:?}");
        assert!(tokens.iter().all(|t| t.starts_with("geometry:explore-")));
    }

    fn cell(predictor: &str, storage: u64, mpki: f64, mkp: f64) -> String {
        format!(
            "{{\"predictor\": \"{predictor}\", \"scheme\": \"s\", \"suite\": \"z\", \
             \"scenario\": \"baseline\", \"storage_bits\": {storage}, \
             \"mean_mpki\": {mpki:.6}, \"high_mprate_mkp\": {mkp:.6}}}"
        )
    }

    #[test]
    fn pareto_front_drops_dominated_cells() {
        let cells = vec![
            cell("big-accurate", 4096, 1.0, 0.1),
            cell("small-sloppy", 1024, 3.0, 0.3),
            // Dominated: more storage than small-sloppy, worse everywhere
            // than big-accurate.
            cell("dominated", 2048, 3.5, 0.4),
            // Trades storage for accuracy against both survivors.
            cell("middle", 2048, 2.0, 0.2),
        ];
        let front = pareto_front(&cells).expect("rankable");
        let names: Vec<&str> = front.iter().map(|e| e.predictor.as_str()).collect();
        assert_eq!(names, ["small-sloppy", "middle", "big-accurate"]);
        assert!(front
            .windows(2)
            .all(|w| w[0].storage_bits <= w[1].storage_bits));
    }

    #[test]
    fn identical_cells_both_survive() {
        let cells = vec![cell("a", 1024, 1.0, 0.1), cell("b", 1024, 1.0, 0.1)];
        let front = pareto_front(&cells).expect("rankable");
        assert_eq!(front.len(), 2);
        assert_eq!(front[0].predictor, "a");
    }

    #[test]
    fn unrankable_cells_are_an_error() {
        let cells = vec!["{\"predictor\": \"x\"}".to_string()];
        let error = pareto_front(&cells).unwrap_err();
        assert!(error.contains("storage_bits"), "{error}");
    }
}
