//! Section 5.1: breakdown of the predictions provided by the bimodal base
//! component into high / medium / low confidence sub-classes, for the small
//! and the large predictors on the CBP-1-like suite.

use tage::TageConfig;
use tage_bench::{branches_from_args, print_header};
use tage_sim::experiment::bim_breakdown;
use tage_sim::report::{fraction, mkp, TextTable};
use tage_traces::suites;

fn main() {
    let branches = branches_from_args();
    print_header(
        "Section 5.1 — bimodal-provider (BIM) breakdown, CBP-1-like",
        branches,
    );
    for config in [TageConfig::small(), TageConfig::large()] {
        println!("--- {} ---", config.name());
        let rows = bim_breakdown(&config, &suites::cbp1_like(), branches);
        let mut table = TextTable::new(vec![
            "trace",
            "BIM Pcov",
            "BIM MPcov",
            "BIM MKP",
            "high-conf-bim MKP",
            "medium-conf-bim MKP",
            "low-conf-bim MKP",
            "overall MKP",
        ]);
        for row in &rows {
            table.row(vec![
                row.trace_name.clone(),
                fraction(row.bim_pcov),
                fraction(row.bim_mpcov),
                mkp(row.bim_mprate_mkp),
                mkp(row.high_conf_bim_mkp),
                mkp(row.medium_conf_bim_mkp),
                mkp(row.low_conf_bim_mkp),
                mkp(row.overall_mkp),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
}
