//! Sweep points: the reusable unit of work behind campaign grids and the
//! experiment sweeps.
//!
//! A [`SweepPoint`] is one cell of a predictor × confidence-scheme × suite
//! × scenario cross product. [`run_point`] executes it — every trace of the
//! point's suite through the generic [`SimEngine`], with a
//! cold predictor per trace — and returns exact integer counters plus the
//! aggregate [`ConfidenceReport`], so a point's result is deterministic and
//! independent of where (which thread, which order) it ran. The campaign
//! runner (`tage-bench`) work-steals whole points across workers; the
//! experiment sweeps of [`crate::experiment`] are thin grids of
//! [`TageSweepPoint`]s over the same machinery.
//!
//! The grid axes are enumerable:
//!
//! * predictors — the six TAGE variants (three sizes × standard/modified
//!   automaton) plus every [`BaselinePredictorSpec`];
//! * schemes — the paper's storage-free TAGE classification plus every
//!   [`EstimatorSpec`] baseline;
//! * scenarios — the confidence applications of [`crate::scenarios`]
//!   (recovery energy, shared-predictor interference, prefetch throttling)
//!   or the plain [`ScenarioSpec::Baseline`] measurement. Observer-style
//!   scenarios ride along the normal per-source runs without altering the
//!   prediction stream; the shared-predictor scenario adds one interleaved
//!   pass over the suite's sources and compares it against the private
//!   per-source counters the point measured anyway. Scenario metrics land
//!   in [`PointResult::scenario_metrics`] as deterministically ordered
//!   name/value pairs.
//!
//! Not every combination is meaningful: the storage-free classification
//! observes TAGE internals, so it only pairs with TAGE predictors.
//! [`SweepPoint::validate`] reports such holes and the campaign runner skips
//! them (counting the skips) instead of failing the grid.

use core::fmt;

use tage::{CounterAutomaton, LaneGroup, TageBlueprint, TageConfig, TageGeometry, TagePredictor};
use tage_confidence::estimators::EstimatorSpec;
use tage_confidence::{ConfidenceReport, EstimatorScheme, TageConfidenceClassifier};
use tage_predictors::{BaselinePredictorSpec, MarginPredictor, PredictorCore};
use tage_traces::format::FormatError;
use tage_traces::source::{AnySource, BranchSource, SamplingSpec, SourceSuite};
use tage_traces::Suite;

use crate::engine::{BranchEvent, EngineObserver, ReportObserver, SimEngine};
use crate::multilane::{run_specs_multilane, EngineKind, DEFAULT_LANES};
use crate::scenarios::energy::RecoveryEnergyObserver;
use crate::scenarios::interference::{run_shared_predictor, SharedRunResult};
use crate::scenarios::prefetch::PrefetchObserver;
use crate::scenarios::ScenarioSpec;
use crate::warmcache::WarmCache;

/// One value of the predictor axis of a sweep grid.
#[derive(Debug, Clone)]
pub enum PredictorSpec {
    /// A TAGE configuration (the paper's predictor, storage-free capable).
    Tage(TageConfig),
    /// An explicit TAGE geometry — loaded from a `geometry:FILE.json` grid
    /// token or built programmatically (the `--explore` design-space search
    /// enumerates these). Storage-free capable, exactly like
    /// [`PredictorSpec::Tage`].
    Geometry {
        /// The full per-table geometry.
        geometry: TageGeometry,
        /// Where the geometry came from: the `geometry:` token's file path,
        /// or a synthesized label for programmatic geometries. Echoed back
        /// by [`PredictorSpec::token`].
        source: String,
    },
    /// A baseline predictor from the prior art.
    Baseline(BaselinePredictorSpec),
}

/// The grid-token prefix selecting a geometry file on the predictor axis:
/// `geometry:docs/examples/tage16k.json` loads a [`TageGeometry`] from that
/// path.
pub const GEOMETRY_TOKEN_PREFIX: &str = "geometry:";

/// The TAGE grid variants: the three paper sizes, each with the modified
/// (probabilistic 1/128) automaton under the plain token and the standard
/// automaton under the `-std` suffix.
pub fn tage_variants() -> Vec<(String, TageConfig)> {
    let mut variants = Vec::with_capacity(6);
    for config in [
        TageConfig::small(),
        TageConfig::medium(),
        TageConfig::large(),
    ] {
        let base = config.name().to_ascii_lowercase();
        variants.push((
            base.clone(),
            config
                .clone()
                .with_automaton(CounterAutomaton::paper_default()),
        ));
        variants.push((format!("{base}-std"), config));
    }
    variants
}

impl PredictorSpec {
    /// Every grid token the predictor axis accepts, in listing order.
    pub fn known_tokens() -> Vec<String> {
        let mut tokens: Vec<String> = tage_variants().into_iter().map(|(t, _)| t).collect();
        tokens.extend(
            BaselinePredictorSpec::ALL
                .iter()
                .map(|s| s.token().to_string()),
        );
        tokens
    }

    /// Parses a grid token into a predictor spec.
    ///
    /// `geometry:<path>` loads a [`TageGeometry`] JSON file from `<path>`;
    /// an unreadable or invalid file parses as `None`, exactly like an
    /// unknown token (callers wanting the reason should call
    /// [`TageGeometry::load`] directly).
    pub fn parse(token: &str) -> Option<Self> {
        if let Some(path) = token.strip_prefix(GEOMETRY_TOKEN_PREFIX) {
            let geometry = TageGeometry::load(path).ok()?;
            return Some(PredictorSpec::Geometry {
                geometry,
                source: path.to_string(),
            });
        }
        if let Some((_, config)) = tage_variants().into_iter().find(|(t, _)| t == token) {
            return Some(PredictorSpec::Tage(config));
        }
        BaselinePredictorSpec::parse(token).map(PredictorSpec::Baseline)
    }

    /// The grid token that parses back into this spec: the plain token for
    /// grid-enumerable configurations, `geometry:<path>` for geometry
    /// specs. Programmatic TAGE configs with a non-grid automaton have no
    /// parseable token; they return their [`PredictorSpec::label`].
    pub fn token(&self) -> String {
        match self {
            PredictorSpec::Geometry { source, .. } => format!("{GEOMETRY_TOKEN_PREFIX}{source}"),
            _ => self.label(),
        }
    }

    /// The stable label naming this spec in reports: the parse token for
    /// every grid-enumerable configuration, an honest
    /// `<name>-p<log2(1/p)>` description for programmatically built TAGE
    /// configs with a non-standard, non-paper automaton, and
    /// `<name>-g<digest>` for explicit geometries (the 32-bit spec-digest
    /// suffix keeps same-budget explore candidates distinct in reports and
    /// checkpoint keys).
    pub fn label(&self) -> String {
        match self {
            PredictorSpec::Tage(config) => {
                let base = config.name().to_ascii_lowercase();
                if config.automaton == CounterAutomaton::paper_default() {
                    base
                } else if config.automaton == CounterAutomaton::Standard {
                    format!("{base}-std")
                } else {
                    let exponent = -config.automaton.saturation_probability().log2();
                    format!("{base}-p{exponent:.0}")
                }
            }
            PredictorSpec::Geometry { geometry, .. } => {
                format!(
                    "{}-g{:08x}",
                    geometry.name().to_ascii_lowercase(),
                    geometry.spec_digest() as u32
                )
            }
            PredictorSpec::Baseline(spec) => spec.token().to_string(),
        }
    }

    /// The TAGE blueprint behind this spec — `Some` for both the preset
    /// [`PredictorSpec::Tage`] configurations and explicit
    /// [`PredictorSpec::Geometry`] values, `None` for baselines. The
    /// returned trait object plugs straight into every geometry-driven
    /// engine entry point ([`crate::runner::run_source`],
    /// [`crate::multilane::run_specs_multilane`], ...).
    pub fn tage_blueprint(&self) -> Option<&dyn TageBlueprint> {
        match self {
            PredictorSpec::Tage(config) => Some(config),
            PredictorSpec::Geometry { geometry, .. } => Some(geometry),
            PredictorSpec::Baseline(_) => None,
        }
    }

    /// Exact storage budget of this predictor in bits, computed
    /// declaratively — no predictor is built. Every axis value knows it:
    /// TAGE configs and geometries from their table accounting, baselines
    /// from their spec structs.
    pub fn storage_bits(&self) -> u64 {
        match self {
            PredictorSpec::Tage(config) => config.storage_bits(),
            PredictorSpec::Geometry { geometry, .. } => geometry.storage_bits(),
            PredictorSpec::Baseline(spec) => spec.storage_bits(),
        }
    }

    /// Whether this predictor exposes the TAGE observables the storage-free
    /// classification needs.
    pub fn supports_storage_free(&self) -> bool {
        self.tage_blueprint().is_some()
    }

    /// The self-confidence margin threshold suited to this predictor's
    /// margin scale.
    pub fn self_confidence_threshold(&self) -> i64 {
        match self {
            // TAGE margins are counter distances from the weak state: a
            // 3-bit counter saturates at margin 4, so 2 splits weak/strong.
            PredictorSpec::Tage(_) | PredictorSpec::Geometry { .. } => 2,
            PredictorSpec::Baseline(spec) => spec.self_confidence_threshold(),
        }
    }
}

/// One value of the confidence-scheme axis of a sweep grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeSpec {
    /// The paper's storage-free TAGE classification.
    StorageFree,
    /// A storage-based baseline estimator.
    Estimator(EstimatorSpec),
}

/// The grid token of the storage-free scheme.
pub const STORAGE_FREE_TOKEN: &str = "storage-free";

impl SchemeSpec {
    /// Every grid token the scheme axis accepts, in listing order.
    pub fn known_tokens() -> Vec<String> {
        let mut tokens = vec![STORAGE_FREE_TOKEN.to_string()];
        tokens.extend(EstimatorSpec::ALL.iter().map(|s| s.token().to_string()));
        tokens
    }

    /// Parses a grid token into a scheme spec.
    pub fn parse(token: &str) -> Option<Self> {
        if token == STORAGE_FREE_TOKEN {
            return Some(SchemeSpec::StorageFree);
        }
        EstimatorSpec::parse(token).map(SchemeSpec::Estimator)
    }

    /// The stable label naming this spec in reports.
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::StorageFree => STORAGE_FREE_TOKEN.to_string(),
            SchemeSpec::Estimator(spec) => spec.token().to_string(),
        }
    }
}

/// One cell of a predictor × scheme × suite × scenario cross product.
///
/// The suite axis is a streaming [`SourceSuite`]: synthetic workloads are
/// generated on the fly and file-backed suites are read chunk by chunk, so
/// running a point never materializes a trace. A synthetic [`Suite`]
/// converts with [`SweepPoint::over_suite`] or `suite.into()`.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The predictor configuration.
    pub predictor: PredictorSpec,
    /// The confidence scheme grading its predictions.
    pub scheme: SchemeSpec,
    /// The workload sources the pair runs over.
    pub suite: SourceSuite,
    /// The scenario measured on top of the run
    /// ([`ScenarioSpec::Baseline`] for plain measurement).
    pub scenario: ScenarioSpec,
}

/// Why a sweep point cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidPoint {
    /// The storage-free classification was paired with a non-TAGE predictor.
    StorageFreeNeedsTage {
        /// Label of the offending predictor.
        predictor: String,
    },
    /// A phase-sampled suite was paired with a cell the sampled runner
    /// cannot execute: sampling reconstructs through the storage-free TAGE
    /// path ([`crate::phase::run_sampled_source`]), so baseline predictors
    /// and estimator schemes have no sampled variant.
    SamplingNeedsStorageFreeTage {
        /// Label of the offending predictor.
        predictor: String,
        /// Label of the offending scheme.
        scheme: String,
    },
    /// A phase-sampled suite was paired with a non-baseline scenario.
    /// Scenario metrics are defined over the full prediction stream; a
    /// weighted slice reconstruction of them would be silently wrong, so
    /// the combination is rejected instead.
    SamplingNeedsBaselineScenario {
        /// Label of the offending scenario.
        scenario: String,
    },
}

impl fmt::Display for InvalidPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidPoint::StorageFreeNeedsTage { predictor } => write!(
                f,
                "storage-free classification requires a TAGE predictor (got {predictor})"
            ),
            InvalidPoint::SamplingNeedsStorageFreeTage { predictor, scheme } => write!(
                f,
                "phase sampling requires the TAGE × storage-free cell (got {predictor} × {scheme})"
            ),
            InvalidPoint::SamplingNeedsBaselineScenario { scenario } => write!(
                f,
                "phase sampling requires the baseline scenario (got {scenario})"
            ),
        }
    }
}

impl SweepPoint {
    /// A point over a synthetic suite (streamed trace by trace), measuring
    /// the plain baseline scenario.
    pub fn over_suite(predictor: PredictorSpec, scheme: SchemeSpec, suite: &Suite) -> Self {
        SweepPoint {
            predictor,
            scheme,
            suite: SourceSuite::from_suite(suite),
            scenario: ScenarioSpec::Baseline,
        }
    }

    /// Replaces the scenario axis value (builder style).
    pub fn with_scenario(mut self, scenario: ScenarioSpec) -> Self {
        self.scenario = scenario;
        self
    }

    /// Checks that the predictor/scheme pairing is executable.
    pub fn validate(&self) -> Result<(), InvalidPoint> {
        if matches!(self.scheme, SchemeSpec::StorageFree) && !self.predictor.supports_storage_free()
        {
            return Err(InvalidPoint::StorageFreeNeedsTage {
                predictor: self.predictor.label(),
            });
        }
        if self.suite.sampling().is_some() {
            if !matches!(self.scheme, SchemeSpec::StorageFree)
                || self.predictor.tage_blueprint().is_none()
            {
                return Err(InvalidPoint::SamplingNeedsStorageFreeTage {
                    predictor: self.predictor.label(),
                    scheme: self.scheme.label(),
                });
            }
            if self.scenario != ScenarioSpec::Baseline {
                return Err(InvalidPoint::SamplingNeedsBaselineScenario {
                    scenario: self.scenario.label().to_string(),
                });
            }
        }
        Ok(())
    }
}

/// Exact per-trace counters of one point run (everything needed for MPKI /
/// MKP without any floating-point state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointTraceMetrics {
    /// Trace name.
    pub trace_name: String,
    /// Conditional branches measured.
    pub predictions: u64,
    /// Mispredictions among them.
    pub mispredictions: u64,
    /// Instructions attributed to the measured region.
    pub instructions: u64,
}

impl PointTraceMetrics {
    /// Misprediction rate in mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        crate::per_kilo_instruction(self.mispredictions as f64, self.instructions)
    }
}

/// Arithmetic mean of the per-trace MPKI values, 0 over an empty slice.
fn mean_trace_mpki(traces: &[PointTraceMetrics]) -> f64 {
    if traces.is_empty() {
        return 0.0;
    }
    traces.iter().map(PointTraceMetrics::mpki).sum::<f64>() / traces.len() as f64
}

/// Per-cell phase-sampling accounting, aggregated over every trace of a
/// sampled point. Every field is a pure function of the suite content and
/// the [`SamplingSpec`] — cache-dependent counters (how much gap replay
/// this particular run performed) deliberately stay out, so sampled cell
/// reports are byte-identical whatever the warm-cache state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointSamplingMetrics {
    /// Records per slice.
    pub interval: u64,
    /// Cluster-count bound of the plan.
    pub k: usize,
    /// Clustering seed.
    pub seed: u64,
    /// Representative slices over the whole suite.
    pub representatives: u64,
    /// Conditional branches measured inside representative slices
    /// (unweighted), over the whole suite.
    pub measured_branches: u64,
    /// Total records of the suite's streams (what a full run would have
    /// simulated).
    pub total_records: u64,
}

/// The outcome of running one sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Label of the predictor axis value.
    pub predictor: String,
    /// Label of the scheme axis value.
    pub scheme: String,
    /// Suite name.
    pub suite: String,
    /// Label of the scenario axis value.
    pub scenario: String,
    /// Exact storage budget of the predictor, in bits (the schema-3 report
    /// field design-space exploration ranks by).
    pub storage_bits: u64,
    /// Per-trace exact counters, in suite order.
    pub traces: Vec<PointTraceMetrics>,
    /// Aggregate confidence report over the whole suite.
    pub aggregate: ConfidenceReport,
    /// Scenario metrics as deterministically ordered name/value pairs
    /// (empty for the baseline scenario). The names are stable report keys;
    /// see `docs/SCENARIOS.md` for each scenario's metric set.
    pub scenario_metrics: Vec<(String, f64)>,
    /// Phase-sampling accounting when the point's suite carries a
    /// [`SamplingSpec`]; `None` for full (unsampled) runs. When set, the
    /// per-trace counters and the aggregate report are weighted
    /// reconstructions, not raw measurements.
    pub sampling: Option<PointSamplingMetrics>,
}

impl PointResult {
    /// Arithmetic mean of the per-trace MPKI values.
    pub fn mean_mpki(&self) -> f64 {
        mean_trace_mpki(&self.traces)
    }

    /// Total measured conditional branches over the suite.
    pub fn total_predictions(&self) -> u64 {
        self.traces.iter().map(|t| t.predictions).sum()
    }
}

/// Why a sweep point run failed.
#[derive(Debug)]
pub enum PointError {
    /// The predictor/scheme pairing cannot execute.
    Invalid(InvalidPoint),
    /// A source of the point's suite could not be opened or read.
    Source(FormatError),
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Invalid(invalid) => invalid.fmt(f),
            PointError::Source(error) => write!(f, "source error: {error}"),
        }
    }
}

impl std::error::Error for PointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PointError::Invalid(_) => None,
            PointError::Source(error) => Some(error),
        }
    }
}

impl From<InvalidPoint> for PointError {
    fn from(invalid: InvalidPoint) -> Self {
        PointError::Invalid(invalid)
    }
}

impl From<FormatError> for PointError {
    fn from(error: FormatError) -> Self {
        PointError::Source(error)
    }
}

/// The observer-style scenarios, riding along a point's normal per-source
/// runs (the shared-predictor scenario runs its own pass instead). One
/// accumulator persists across every source of the suite, so the metrics
/// aggregate the whole point.
enum ScenarioObserver {
    None,
    Energy(Box<RecoveryEnergyObserver>),
    Prefetch(Box<PrefetchObserver>),
}

impl ScenarioObserver {
    fn for_spec(scenario: ScenarioSpec) -> Self {
        match scenario {
            ScenarioSpec::RecoveryEnergy => ScenarioObserver::Energy(Box::default()),
            ScenarioSpec::PrefetchThrottle => ScenarioObserver::Prefetch(Box::default()),
            ScenarioSpec::Baseline | ScenarioSpec::SharedPredictor => ScenarioObserver::None,
        }
    }
}

impl<P: PredictorCore> EngineObserver<P> for ScenarioObserver {
    fn on_branch(&mut self, predictor: &mut P, event: &BranchEvent<'_, P::Lookup>) {
        match self {
            ScenarioObserver::None => {}
            ScenarioObserver::Energy(observer) => observer.on_branch(predictor, event),
            ScenarioObserver::Prefetch(observer) => observer.on_branch(predictor, event),
        }
    }

    fn on_instructions(&mut self, instructions: u64, in_measurement: bool) {
        match self {
            ScenarioObserver::None => {}
            ScenarioObserver::Energy(observer) => {
                EngineObserver::<P>::on_instructions(&mut **observer, instructions, in_measurement)
            }
            ScenarioObserver::Prefetch(observer) => {
                EngineObserver::<P>::on_instructions(&mut **observer, instructions, in_measurement)
            }
        }
    }
}

/// Executes one sweep point: every source of the suite streamed through the
/// engine, cold predictor and scheme per source, serial within the point
/// (cross-point parallelism is the campaign scheduler's job, which keeps
/// each point's result independent of thread count). Scenario observers
/// ride along; the shared-predictor scenario adds one interleaved pass over
/// the suite after the per-source runs.
///
/// `branches_per_trace` sizes synthetic sources; file-backed sources yield
/// whatever their file holds.
pub fn run_point(point: &SweepPoint, branches_per_trace: usize) -> Result<PointResult, PointError> {
    run_point_with_engine(point, branches_per_trace, EngineKind::Scalar)
}

/// [`run_point`] with an explicit engine choice.
///
/// [`EngineKind::Multilane`] routes the point through the lane-batched
/// lockstep engine when the cell is lane-batchable — the paper's TAGE ×
/// storage-free pairing under the plain baseline scenario, which is every
/// cell of the default campaign grid. Scenario observers and the
/// storage-based estimator schemes hook the scalar per-branch loop, so those
/// cells fall back to the scalar path. Either way the result is
/// bit-identical; the choice is purely a throughput decision.
pub fn run_point_with_engine(
    point: &SweepPoint,
    branches_per_trace: usize,
    engine: EngineKind,
) -> Result<PointResult, PointError> {
    run_point_with_engine_cached(point, branches_per_trace, engine, None)
}

/// [`run_point_with_engine`] with an optional predictor warm-state cache.
///
/// The cache only matters for phase-sampled suites: the sampled runner
/// checkpoints the sequential predictor state at each representative
/// slice's start through [`crate::warmcache`], so the first run of a
/// (predictor, trace) pair pays one sequential pass and every later run
/// simulates only the slices. Results are bit-identical with or without
/// the cache; full (unsampled) points ignore it entirely.
pub fn run_point_with_engine_cached(
    point: &SweepPoint,
    branches_per_trace: usize,
    engine: EngineKind,
    warm: Option<&WarmCache>,
) -> Result<PointResult, PointError> {
    point.validate()?;
    if let Some(sampling) = point.suite.sampling() {
        return run_point_sampled(point, branches_per_trace, sampling, warm);
    }
    if engine == EngineKind::Multilane && point_is_lane_batchable(point) {
        return run_point_multilane(point, branches_per_trace);
    }
    run_point_scalar(point, branches_per_trace)
}

/// The phase-sampled point path: every suite source through
/// [`crate::phase::run_sampled_source`] (validated to the TAGE ×
/// storage-free × baseline cell), weighted per-trace counters and a
/// weighted aggregate report, plus the suite-level sampling accounting.
fn run_point_sampled(
    point: &SweepPoint,
    branches_per_trace: usize,
    sampling: SamplingSpec,
    warm: Option<&WarmCache>,
) -> Result<PointResult, PointError> {
    let Some(blueprint) = point.predictor.tage_blueprint() else {
        unreachable!("validate() restricts sampled points to TAGE predictors")
    };
    let options = crate::runner::RunOptions::default();
    let mut aggregate = ConfidenceReport::new();
    let mut traces = Vec::with_capacity(point.suite.sources().len());
    let mut metrics = PointSamplingMetrics {
        interval: sampling.interval,
        k: sampling.k,
        seed: sampling.seed,
        representatives: 0,
        measured_branches: 0,
        total_records: 0,
    };
    for spec in point.suite.sources() {
        let warm_pair = warm.map(|cache| (cache, spec.digest(branches_per_trace)));
        let sampled =
            crate::phase::run_sampled_source(blueprint, &options, sampling, warm_pair, || {
                spec.open(branches_per_trace)
            })?;
        metrics.representatives += sampled.plan.representatives.len() as u64;
        metrics.measured_branches += sampled.measured_branches;
        metrics.total_records += sampled.plan.total_records;
        let mispredictions = sampled.result.report.total().mispredictions;
        aggregate.merge(&sampled.result.report);
        traces.push(PointTraceMetrics {
            trace_name: sampled.result.trace_name,
            predictions: sampled.result.conditional_branches,
            mispredictions,
            instructions: sampled.result.instructions,
        });
    }
    Ok(PointResult {
        predictor: point.predictor.label(),
        scheme: point.scheme.label(),
        suite: point.suite.name().to_string(),
        scenario: point.scenario.label().to_string(),
        storage_bits: point.predictor.storage_bits(),
        traces,
        aggregate,
        scenario_metrics: Vec::new(),
        sampling: Some(metrics),
    })
}

/// Whether [`EngineKind::Multilane`] can actually batch this cell: the
/// storage-free TAGE pairing with nothing observing individual branches,
/// and a geometry that fits the lane group's packed layout (explored
/// geometries may exceed it; those run scalar).
fn point_is_lane_batchable(point: &SweepPoint) -> bool {
    point.scheme == SchemeSpec::StorageFree
        && point.scenario == ScenarioSpec::Baseline
        && match &point.predictor {
            PredictorSpec::Tage(_) => true,
            PredictorSpec::Geometry { geometry, .. } => LaneGroup::supports(geometry),
            PredictorSpec::Baseline(_) => false,
        }
}

/// The lane-batched point path: all suite sources through one
/// [`crate::multilane::MultilaneEngine`], [`DEFAULT_LANES`] streams in
/// lockstep, then the same per-trace/aggregate assembly as the scalar path.
fn run_point_multilane(
    point: &SweepPoint,
    branches_per_trace: usize,
) -> Result<PointResult, PointError> {
    let Some(blueprint) = point.predictor.tage_blueprint() else {
        unreachable!("point_is_lane_batchable() requires a TAGE predictor")
    };
    let results = run_specs_multilane(
        blueprint,
        point.suite.sources(),
        branches_per_trace,
        &crate::runner::RunOptions::default(),
        DEFAULT_LANES,
    )?;
    let mut aggregate = ConfidenceReport::new();
    let mut traces = Vec::with_capacity(results.len());
    for result in results {
        let mispredictions = result.report.total().mispredictions;
        aggregate.merge(&result.report);
        traces.push(PointTraceMetrics {
            trace_name: result.trace_name,
            predictions: result.conditional_branches,
            mispredictions,
            instructions: result.instructions,
        });
    }
    Ok(PointResult {
        predictor: point.predictor.label(),
        scheme: point.scheme.label(),
        suite: point.suite.name().to_string(),
        scenario: point.scenario.label().to_string(),
        storage_bits: point.predictor.storage_bits(),
        traces,
        aggregate,
        scenario_metrics: Vec::new(),
        sampling: None,
    })
}

fn run_point_scalar(
    point: &SweepPoint,
    branches_per_trace: usize,
) -> Result<PointResult, PointError> {
    let mut scenario_observer = ScenarioObserver::for_spec(point.scenario);
    let mut traces = Vec::with_capacity(point.suite.sources().len());
    let mut aggregate = ConfidenceReport::new();
    for spec in point.suite.sources() {
        let mut source = spec.open(branches_per_trace)?;
        let trace_name = source.name().to_string();
        let (report, predictions, mispredictions, instructions) =
            run_point_source(point, &mut source, &mut scenario_observer)?;
        aggregate.merge(&report);
        traces.push(PointTraceMetrics {
            trace_name,
            predictions,
            mispredictions,
            instructions,
        });
    }
    let scenario_metrics = match (&scenario_observer, point.scenario) {
        (ScenarioObserver::Energy(observer), _) => vec![
            ("baseline_epki_nj".to_string(), observer.baseline_epki()),
            ("confidence_epki_nj".to_string(), observer.confidence_epki()),
            ("savings_pct".to_string(), observer.savings_pct()),
            ("checkpoints".to_string(), observer.checkpoints as f64),
        ],
        (ScenarioObserver::Prefetch(observer), _) => vec![
            (
                "useless_avoided_pki".to_string(),
                observer.useless_avoided_pki(),
            ),
            (
                "coverage_lost_pki".to_string(),
                observer.coverage_lost_pki(),
            ),
            (
                "useless_issued_pki".to_string(),
                observer.useless_issued_pki(),
            ),
            (
                "useful_issued_pki".to_string(),
                observer.useful_issued_pki(),
            ),
        ],
        (ScenarioObserver::None, ScenarioSpec::SharedPredictor) => {
            let shared = run_point_shared(point, branches_per_trace)?;
            shared_predictor_metrics(&shared, &traces)
        }
        (ScenarioObserver::None, _) => Vec::new(),
    };
    Ok(PointResult {
        predictor: point.predictor.label(),
        scheme: point.scheme.label(),
        suite: point.suite.name().to_string(),
        scenario: point.scenario.label().to_string(),
        storage_bits: point.predictor.storage_bits(),
        traces,
        aggregate,
        scenario_metrics,
        sampling: None,
    })
}

/// Compares the shared-predictor pass against the private per-source
/// counters the point already measured (same sources, same order).
fn shared_predictor_metrics(
    shared: &SharedRunResult,
    private: &[PointTraceMetrics],
) -> Vec<(String, f64)> {
    let private_mpki = mean_trace_mpki(private);
    let private_mispredictions: u64 = private.iter().map(|t| t.mispredictions).sum();
    vec![
        ("cores".to_string(), shared.cores.len() as f64),
        ("shared_mean_mpki".to_string(), shared.mean_mpki()),
        ("private_mean_mpki".to_string(), private_mpki),
        (
            "mpki_degradation".to_string(),
            shared.mean_mpki() - private_mpki,
        ),
        (
            "shared_mispredictions".to_string(),
            shared.total_mispredictions() as f64,
        ),
        (
            "private_mispredictions".to_string(),
            private_mispredictions as f64,
        ),
    ]
}

/// The shared-predictor interference pass: every suite source opened as one
/// core's stream, interleaved round-robin into a single engine built for
/// the point's predictor × scheme cell.
fn run_point_shared(
    point: &SweepPoint,
    branches_per_trace: usize,
) -> Result<SharedRunResult, PointError> {
    let mut sources = Vec::with_capacity(point.suite.sources().len());
    for spec in point.suite.sources() {
        sources.push(spec.open(branches_per_trace)?);
    }
    let shared = match (point.predictor.tage_blueprint(), &point.scheme) {
        (Some(blueprint), SchemeSpec::StorageFree) => {
            let mut engine = SimEngine::new(
                TagePredictor::new(blueprint),
                TageConfidenceClassifier::new(blueprint),
            );
            run_shared_predictor(&mut engine, sources)?
        }
        (Some(blueprint), SchemeSpec::Estimator(estimator)) => {
            let scheme =
                EstimatorScheme(estimator.build(point.predictor.self_confidence_threshold()));
            let mut engine = SimEngine::new(MarginPredictor(TagePredictor::new(blueprint)), scheme);
            run_shared_predictor(&mut engine, sources)?
        }
        (None, SchemeSpec::Estimator(estimator)) => {
            let PredictorSpec::Baseline(baseline) = &point.predictor else {
                unreachable!("non-TAGE specs are baselines")
            };
            let scheme =
                EstimatorScheme(estimator.build(point.predictor.self_confidence_threshold()));
            let mut engine = SimEngine::new(MarginPredictor(baseline.build()), scheme);
            run_shared_predictor(&mut engine, sources)?
        }
        (None, SchemeSpec::StorageFree) => {
            unreachable!("validate() rejects storage-free on baseline predictors")
        }
    };
    Ok(shared)
}

fn run_point_source(
    point: &SweepPoint,
    source: &mut AnySource,
    scenario_observer: &mut ScenarioObserver,
) -> Result<(ConfidenceReport, u64, u64, u64), FormatError> {
    // The paper's own path has a canonical runner; don't duplicate its loop.
    if let (Some(blueprint), SchemeSpec::StorageFree) =
        (point.predictor.tage_blueprint(), &point.scheme)
    {
        let result = crate::runner::run_source_observed(
            blueprint,
            source,
            &crate::runner::RunOptions::default(),
            scenario_observer,
        )?;
        let mispredictions = result.report.total().mispredictions;
        return Ok((
            result.report,
            result.conditional_branches,
            mispredictions,
            result.instructions,
        ));
    }
    let mut observer = ReportObserver::default();
    let summary = match (point.predictor.tage_blueprint(), &point.scheme) {
        (Some(_), SchemeSpec::StorageFree) => {
            unreachable!("handled by the early return above")
        }
        (Some(blueprint), SchemeSpec::Estimator(estimator)) => {
            let predictor = TagePredictor::new(blueprint);
            let scheme =
                EstimatorScheme(estimator.build(point.predictor.self_confidence_threshold()));
            let mut engine = SimEngine::new(MarginPredictor(predictor), scheme);
            engine.run_source(source, &mut (&mut observer, &mut *scenario_observer))?
        }
        (None, SchemeSpec::Estimator(estimator)) => {
            let PredictorSpec::Baseline(baseline) = &point.predictor else {
                unreachable!("non-TAGE specs are baselines")
            };
            let predictor = baseline.build();
            let scheme =
                EstimatorScheme(estimator.build(point.predictor.self_confidence_threshold()));
            let mut engine = SimEngine::new(MarginPredictor(predictor), scheme);
            engine.run_source(source, &mut (&mut observer, &mut *scenario_observer))?
        }
        (None, SchemeSpec::StorageFree) => {
            unreachable!("validate() rejects storage-free on baseline predictors")
        }
    };
    Ok((
        observer.report,
        summary.measured_branches,
        summary.measured_mispredictions,
        summary.measured_instructions,
    ))
}

/// One point of a TAGE-only experiment sweep: a configuration plus run
/// options, executed over a whole suite. The experiment functions of
/// [`crate::experiment`] express their axes (probability exponents, window
/// lengths, counter widths, automaton on/off) as grids of these.
#[derive(Debug, Clone)]
pub struct TageSweepPoint {
    /// The predictor configuration of this point.
    pub config: TageConfig,
    /// The run options of this point.
    pub options: crate::runner::RunOptions,
}

impl TageSweepPoint {
    /// A point with default run options.
    pub fn new(config: TageConfig) -> Self {
        TageSweepPoint {
            config,
            options: crate::runner::RunOptions::default(),
        }
    }
}

/// Runs every TAGE sweep point over `suite` and returns the results in
/// point order. Each point's suite run is itself sharded per trace (see
/// [`crate::suite::run_suite`]), so sweeps inherit the engine's
/// deterministic parallel aggregation.
pub fn run_tage_sweep(
    points: &[TageSweepPoint],
    suite: &Suite,
    branches_per_trace: usize,
) -> Vec<crate::suite::SuiteRunResult> {
    points
        .iter()
        .map(|point| {
            crate::suite::run_suite(&point.config, suite, branches_per_trace, &point.options)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage_traces::suites;

    fn mini() -> Suite {
        suites::cbp1_mini()
    }

    #[test]
    fn predictor_tokens_parse_and_label_round_trip() {
        let tokens = PredictorSpec::known_tokens();
        assert_eq!(tokens.len(), 10, "6 TAGE variants + 4 baselines");
        for token in &tokens {
            let spec = PredictorSpec::parse(token).expect("known token parses");
            assert_eq!(&spec.label(), token);
        }
        assert!(PredictorSpec::parse("nonsense").is_none());
        assert!(PredictorSpec::parse("tage-16k")
            .unwrap()
            .supports_storage_free());
        assert!(!PredictorSpec::parse("gshare")
            .unwrap()
            .supports_storage_free());
    }

    #[test]
    fn geometry_tokens_round_trip_through_files() {
        let path =
            std::env::temp_dir().join(format!("tage-geometry-token-{}.json", std::process::id()));
        let geometry = TageGeometry::from_config(&TageConfig::small());
        geometry.save(&path).expect("write geometry file");

        let token = format!("{GEOMETRY_TOKEN_PREFIX}{}", path.display());
        let spec = PredictorSpec::parse(&token).expect("geometry token parses");
        // The token survives a round trip and keeps pointing at the file.
        assert_eq!(spec.token(), token);
        assert_eq!(
            PredictorSpec::parse(&spec.token()).unwrap().label(),
            spec.label()
        );
        // The parsed spec carries the exact geometry: same digest, same
        // storage, and a label that embeds the digest (so two same-size
        // geometries stay distinct in reports and checkpoint keys).
        let blueprint = spec.tage_blueprint().expect("geometry specs are TAGE");
        assert_eq!(blueprint.tage_geometry(), geometry);
        assert_eq!(spec.storage_bits(), geometry.storage_bits());
        assert_eq!(
            spec.label(),
            format!(
                "{}-g{:08x}",
                geometry.name().to_ascii_lowercase(),
                geometry.spec_digest() as u32
            )
        );
        assert!(spec.supports_storage_free());

        std::fs::remove_file(&path).expect("cleanup");
        // A dangling path no longer parses.
        assert!(PredictorSpec::parse(&token).is_none());
    }

    #[test]
    fn programmatic_tage_configs_get_honest_labels() {
        let spec = PredictorSpec::Tage(
            TageConfig::small().with_automaton(CounterAutomaton::probabilistic(5)),
        );
        assert_eq!(spec.label(), "tage-16k-p5");
        let std = PredictorSpec::Tage(TageConfig::small());
        assert_eq!(std.label(), "tage-16k-std");
        // paper_default is probabilistic(7): the plain token, not "-p7".
        let paper = PredictorSpec::Tage(
            TageConfig::small().with_automaton(CounterAutomaton::paper_default()),
        );
        assert_eq!(paper.label(), "tage-16k");
    }

    #[test]
    fn scheme_tokens_parse_and_label_round_trip() {
        let tokens = SchemeSpec::known_tokens();
        assert_eq!(tokens.len(), 4, "storage-free + 3 estimators");
        for token in &tokens {
            let spec = SchemeSpec::parse(token).expect("known token parses");
            assert_eq!(&spec.label(), token);
        }
        assert!(SchemeSpec::parse("nonsense").is_none());
    }

    #[test]
    fn storage_free_on_baseline_is_rejected() {
        let point = SweepPoint::over_suite(
            PredictorSpec::parse("gshare").unwrap(),
            SchemeSpec::StorageFree,
            &mini(),
        );
        let error = point.validate().unwrap_err();
        assert!(error.to_string().contains("gshare"));
        let run_error = run_point(&point, 500).unwrap_err();
        assert!(matches!(run_error, PointError::Invalid(_)));
        assert!(run_error.to_string().contains("gshare"));
    }

    #[test]
    fn storage_free_point_matches_the_suite_runner() {
        let suite = mini();
        let config = TageConfig::small().with_automaton(CounterAutomaton::paper_default());
        let point = SweepPoint::over_suite(
            PredictorSpec::Tage(config.clone()),
            SchemeSpec::StorageFree,
            &suite,
        );
        let result = run_point(&point, 3_000).unwrap();
        let reference = crate::suite::run_suite(
            &config,
            &suite,
            3_000,
            &crate::runner::RunOptions::default(),
        );
        assert_eq!(result.aggregate, reference.aggregate);
        assert_eq!(result.traces.len(), 4);
        for (ours, theirs) in result.traces.iter().zip(&reference.traces) {
            assert_eq!(ours.trace_name, theirs.trace_name);
            assert_eq!(ours.predictions, theirs.report.total().predictions);
            assert_eq!(ours.mispredictions, theirs.report.total().mispredictions);
            assert!((ours.mpki() - theirs.mpki()).abs() < 1e-12);
        }
        assert!((result.mean_mpki() - reference.mean_mpki()).abs() < 1e-12);
    }

    #[test]
    fn every_valid_axis_combination_runs() {
        let suite = Suite::new("one", vec![mini().trace("INT-2").unwrap().clone()]);
        for predictor_token in PredictorSpec::known_tokens() {
            // One TAGE size is enough here; skip the larger tables.
            if predictor_token.contains("64k") || predictor_token.contains("256k") {
                continue;
            }
            for scheme_token in SchemeSpec::known_tokens() {
                let point = SweepPoint::over_suite(
                    PredictorSpec::parse(&predictor_token).unwrap(),
                    SchemeSpec::parse(&scheme_token).unwrap(),
                    &suite,
                );
                if point.validate().is_err() {
                    continue;
                }
                let result = run_point(&point, 1_000).unwrap();
                assert_eq!(
                    result.total_predictions(),
                    1_000,
                    "{predictor_token} × {scheme_token}"
                );
                assert_eq!(result.predictor, predictor_token);
                assert_eq!(result.scheme, scheme_token);
            }
        }
    }

    #[test]
    fn multilane_point_is_bit_identical_to_the_scalar_point() {
        // The batchable cell: TAGE × storage-free × baseline scenario.
        let point = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::StorageFree,
            &mini(),
        );
        let scalar = run_point_with_engine(&point, 2_000, EngineKind::Scalar).unwrap();
        let multilane = run_point_with_engine(&point, 2_000, EngineKind::Multilane).unwrap();
        assert_eq!(scalar, multilane);
        assert_eq!(run_point(&point, 2_000).unwrap(), scalar);
    }

    #[test]
    fn unbatchable_cells_fall_back_to_the_scalar_path() {
        // An estimator scheme and a scenario observer both hook the scalar
        // per-branch loop; Multilane must quietly produce the same result.
        let estimator = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::parse("self-confidence").unwrap(),
            &mini(),
        );
        let scenario = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::StorageFree,
            &mini(),
        )
        .with_scenario(ScenarioSpec::RecoveryEnergy);
        for point in [estimator, scenario] {
            let scalar = run_point_with_engine(&point, 1_000, EngineKind::Scalar).unwrap();
            let multilane = run_point_with_engine(&point, 1_000, EngineKind::Multilane).unwrap();
            assert_eq!(scalar, multilane);
        }
    }

    #[test]
    fn point_runs_are_deterministic() {
        let point = SweepPoint::over_suite(
            PredictorSpec::parse("perceptron").unwrap(),
            SchemeSpec::parse("self-confidence").unwrap(),
            &mini(),
        );
        let a = run_point(&point, 2_000).unwrap();
        let b = run_point(&point, 2_000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn baseline_scenario_reports_no_metrics() {
        let point = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::StorageFree,
            &mini(),
        );
        let result = run_point(&point, 1_000).unwrap();
        assert_eq!(result.scenario, "baseline");
        assert!(result.scenario_metrics.is_empty());
    }

    /// Observer-style scenarios must not perturb the prediction stream: the
    /// point's counters and aggregate report are bit-identical to the
    /// baseline run, with the metrics added on top.
    #[test]
    fn observer_scenarios_leave_the_measurement_bit_identical() {
        let base = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::StorageFree,
            &mini(),
        );
        let reference = run_point(&base, 2_000).unwrap();
        for scenario in [ScenarioSpec::RecoveryEnergy, ScenarioSpec::PrefetchThrottle] {
            let result = run_point(&base.clone().with_scenario(scenario), 2_000).unwrap();
            assert_eq!(result.traces, reference.traces, "{scenario}");
            assert_eq!(result.aggregate, reference.aggregate, "{scenario}");
            assert_eq!(result.scenario, scenario.label());
            assert!(!result.scenario_metrics.is_empty(), "{scenario}");
            for (name, value) in &result.scenario_metrics {
                assert!(value.is_finite(), "{scenario}: {name} = {value}");
            }
        }
    }

    #[test]
    fn recovery_energy_scenario_aggregates_over_the_whole_suite() {
        let point = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::StorageFree,
            &mini(),
        )
        .with_scenario(ScenarioSpec::RecoveryEnergy);
        let result = run_point(&point, 3_000).unwrap();
        let metric = |name: &str| {
            result
                .scenario_metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert!(metric("baseline_epki_nj") > 0.0);
        assert!(metric("confidence_epki_nj") > 0.0);
        assert!(
            metric("checkpoints") > 0.0
                && metric("checkpoints") <= result.total_predictions() as f64
        );
    }

    #[test]
    fn shared_predictor_scenario_measures_interference_against_the_private_run() {
        let point = SweepPoint::over_suite(
            PredictorSpec::parse("tage-16k").unwrap(),
            SchemeSpec::StorageFree,
            &mini(),
        )
        .with_scenario(ScenarioSpec::SharedPredictor);
        let result = run_point(&point, 4_000).unwrap();
        let metric = |name: &str| {
            result
                .scenario_metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing metric {name}"))
        };
        assert_eq!(metric("cores"), result.traces.len() as f64);
        // The private side of the comparison is exactly this point's own
        // measurement.
        assert!((metric("private_mean_mpki") - result.mean_mpki()).abs() < 1e-12);
        let private: u64 = result.traces.iter().map(|t| t.mispredictions).sum();
        assert_eq!(metric("private_mispredictions"), private as f64);
        assert!(
            metric("shared_mispredictions") > metric("private_mispredictions"),
            "sharing one predictor across {} cores must cost accuracy (shared {} vs private {})",
            result.traces.len(),
            metric("shared_mispredictions"),
            metric("private_mispredictions")
        );
        assert!(metric("mpki_degradation") > 0.0);
    }

    #[test]
    fn scenarios_run_on_every_valid_predictor_scheme_cell() {
        let suite = Suite::new(
            "two",
            vec![
                mini().trace("FP-1").unwrap().clone(),
                mini().trace("INT-2").unwrap().clone(),
            ],
        );
        for predictor_token in ["tage-16k", "gshare"] {
            for scheme_token in ["storage-free", "self-confidence"] {
                for scenario in ScenarioSpec::ALL {
                    let point = SweepPoint::over_suite(
                        PredictorSpec::parse(predictor_token).unwrap(),
                        SchemeSpec::parse(scheme_token).unwrap(),
                        &suite,
                    )
                    .with_scenario(scenario);
                    if point.validate().is_err() {
                        continue;
                    }
                    let result = run_point(&point, 800).unwrap();
                    assert_eq!(
                        result.total_predictions(),
                        1_600,
                        "{predictor_token} × {scheme_token} × {scenario}"
                    );
                    assert_eq!(result.scenario, scenario.label());
                    if scenario != ScenarioSpec::Baseline {
                        assert!(
                            !result.scenario_metrics.is_empty(),
                            "{predictor_token} × {scheme_token} × {scenario}"
                        );
                    }
                }
            }
        }
    }

    fn sampled_mini(spec: SamplingSpec) -> SourceSuite {
        SourceSuite::from_suite(&mini()).with_sampling(spec)
    }

    fn small_sampling() -> SamplingSpec {
        SamplingSpec {
            interval: 250,
            k: 4,
            seed: 1,
        }
    }

    #[test]
    fn sampled_points_reject_unsupported_cells() {
        let sampled = sampled_mini(small_sampling());
        let estimator = SweepPoint {
            predictor: PredictorSpec::parse("tage-16k").unwrap(),
            scheme: SchemeSpec::parse("self-confidence").unwrap(),
            suite: sampled.clone(),
            scenario: ScenarioSpec::Baseline,
        };
        assert!(matches!(
            estimator.validate(),
            Err(InvalidPoint::SamplingNeedsStorageFreeTage { .. })
        ));
        let baseline_predictor = SweepPoint {
            predictor: PredictorSpec::parse("gshare").unwrap(),
            scheme: SchemeSpec::parse("self-confidence").unwrap(),
            suite: sampled.clone(),
            scenario: ScenarioSpec::Baseline,
        };
        assert!(matches!(
            baseline_predictor.validate(),
            Err(InvalidPoint::SamplingNeedsStorageFreeTage { .. })
        ));
        let scenario = SweepPoint {
            predictor: PredictorSpec::parse("tage-16k").unwrap(),
            scheme: SchemeSpec::StorageFree,
            suite: sampled,
            scenario: ScenarioSpec::RecoveryEnergy,
        };
        let error = scenario.validate().unwrap_err();
        assert!(matches!(
            error,
            InvalidPoint::SamplingNeedsBaselineScenario { .. }
        ));
        assert!(error.to_string().contains("baseline scenario"));
    }

    #[test]
    fn sampled_points_reconstruct_totals_and_carry_metadata() {
        let point = SweepPoint {
            predictor: PredictorSpec::parse("tage-16k").unwrap(),
            scheme: SchemeSpec::StorageFree,
            suite: sampled_mini(small_sampling()),
            scenario: ScenarioSpec::Baseline,
        };
        let result = run_point(&point, 2_000).unwrap();
        // Weights partition the intervals, so the weighted conditional
        // count reconstructs each trace's total exactly.
        let full = run_point(
            &SweepPoint::over_suite(
                PredictorSpec::parse("tage-16k").unwrap(),
                SchemeSpec::StorageFree,
                &mini(),
            ),
            2_000,
        )
        .unwrap();
        assert_eq!(result.traces.len(), full.traces.len());
        for (sampled, exact) in result.traces.iter().zip(&full.traces) {
            assert_eq!(sampled.trace_name, exact.trace_name);
            assert_eq!(sampled.predictions, exact.predictions);
        }
        let metrics = result.sampling.expect("sampled points carry metadata");
        assert_eq!(metrics.interval, 250);
        assert_eq!(metrics.k, 4);
        assert_eq!(metrics.seed, 1);
        assert!(metrics.representatives > 0);
        assert!(metrics.measured_branches > 0);
        assert!(metrics.measured_branches < metrics.total_records);
        assert!(result.suite.starts_with("sample:"));
        assert!(full.sampling.is_none(), "full runs carry no metadata");
    }

    #[test]
    fn sampled_points_are_deterministic_across_engines_and_caches() {
        let dir =
            std::env::temp_dir().join(format!("tage-point-sampled-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // k=1 keeps the pick count well under the interval count, so the
        // plan is guaranteed to leave gaps (and therefore checkpoints).
        let point = SweepPoint {
            predictor: PredictorSpec::parse("tage-16k").unwrap(),
            scheme: SchemeSpec::StorageFree,
            suite: sampled_mini(SamplingSpec {
                interval: 100,
                k: 1,
                seed: 1,
            }),
            scenario: ScenarioSpec::Baseline,
        };
        let scalar = run_point_with_engine(&point, 1_500, EngineKind::Scalar).unwrap();
        let multilane = run_point_with_engine(&point, 1_500, EngineKind::Multilane).unwrap();
        assert_eq!(scalar, multilane, "engine choice cannot leak into cells");
        let cache = WarmCache::new(&dir).unwrap();
        let cold =
            run_point_with_engine_cached(&point, 1_500, EngineKind::Scalar, Some(&cache)).unwrap();
        let warm =
            run_point_with_engine_cached(&point, 1_500, EngineKind::Scalar, Some(&cache)).unwrap();
        assert_eq!(cold, scalar, "cache state cannot leak into cells");
        assert_eq!(warm, scalar);
        assert!(cache.hits() > 0, "second run restores checkpoints");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tage_sweep_matches_individual_suite_runs() {
        let suite = mini();
        let points = vec![
            TageSweepPoint::new(TageConfig::small()),
            TageSweepPoint {
                config: TageConfig::small(),
                options: crate::runner::RunOptions {
                    bim_miss_window: 0,
                    ..crate::runner::RunOptions::default()
                },
            },
        ];
        let results = run_tage_sweep(&points, &suite, 2_000);
        assert_eq!(results.len(), 2);
        let direct = crate::suite::run_suite(&points[0].config, &suite, 2_000, &points[0].options);
        assert_eq!(results[0], direct);
        assert_ne!(results[0].aggregate, results[1].aggregate);
    }
}
