//! Trace-driven simulation harness for the TAGE confidence-estimation
//! reproduction.
//!
//! The crate ties the other workspace members together:
//!
//! * [`engine`] — the generic, predictor-agnostic simulation engine: one
//!   execution path driving any predictor × confidence-scheme pair with
//!   pluggable per-branch observers, plus the communication-free parallel
//!   sharding helper behind every suite run. Consumes either a materialized
//!   trace ([`SimEngine::run`]) or a streaming
//!   [`tage_traces::source::BranchSource`] ([`engine::SimEngine::run_source`])
//!   with bounded record memory. Everything below is a thin assembly of it;
//! * [`runner`] — runs a TAGE predictor plus the storage-free confidence
//!   classifier over one trace or source and produces a per-class
//!   [`tage_confidence::ConfidenceReport`];
//! * [`multilane`] — the lane-batched lockstep engine: K independent
//!   streams advanced one branch per cycle with the per-branch loop
//!   restructured into per-component passes (index/tag hashing, prefetch,
//!   probe, train), bit-identical to the scalar path;
//! * [`suite`] — runs whole workload suites (the CBP-1-like and CBP-2-like
//!   20-trace sets, or file-backed
//!   [`tage_traces::source::SourceSuite`]s) in parallel — sources sharded
//!   across workers, lane-batched within each worker — and aggregates the
//!   results deterministically;
//! * [`segment`] — history-warmed segment sharding: splits one very long
//!   source into N ranges, replays a warmup prefix per range with statistics
//!   suppressed, and merges deterministically — parallelism *within* a
//!   trace;
//! * [`warmcache`] — a content-addressed on-disk cache of segment-boundary
//!   warm states (full predictor snapshot + classifier + adaptive
//!   controller), so repeated segmented runs restore instead of replaying
//!   their warmup prefixes — byte-identical either way;
//! * [`point`] — sweep points, the reusable unit of work behind campaign
//!   grids (`tage-bench`) and the experiment sweeps: one predictor ×
//!   confidence-scheme × suite cell executed through the engine with
//!   deterministic, thread-placement-independent results;
//! * [`experiment`] — the building blocks behind each table and figure of
//!   the paper (class distributions, three-level summaries, probability
//!   sweeps, automaton accuracy cost, ablations), expressed as grids of
//!   sweep points;
//! * [`baseline`] — runs the storage-based baseline confidence estimators
//!   (JRS, enhanced JRS, self-confidence on perceptron/GEHL) for comparison;
//! * [`gating`] — a fetch-gating / throttling model, the motivating
//!   application for confidence estimation (energy saved on wrong-path
//!   fetch vs. slots lost on gated correct predictions);
//! * [`interleave`] — the generic N-stream cycle-interleaving core (staged
//!   stream lanes + arbitration loop) shared by the SMT model and the
//!   shared-predictor interference scenario;
//! * [`smt`] — an N-thread SMT fetch-policy model where confidence steers
//!   fetch priority;
//! * [`scenarios`] — the campaign-runnable confidence scenarios
//!   (misprediction-recovery energy, N-core shared-predictor interference,
//!   confidence-driven prefetch throttling) as composable engine
//!   observers, with the [`scenarios::ScenarioSpec`] grid axis;
//! * [`report`] — plain-text table rendering used by the `tage-bench`
//!   binaries to print paper-style tables.
//!
//! # Example
//!
//! ```
//! use tage::TageConfig;
//! use tage_sim::runner::{RunOptions, run_trace};
//! use tage_traces::suites;
//!
//! let trace = suites::cbp1_like().traces()[0].generate(5_000);
//! let result = run_trace(&TageConfig::small(), &trace, &RunOptions::default());
//! assert!(result.conditional_branches > 0);
//! assert!(result.report.total().predictions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod engine;
pub mod experiment;
pub mod gating;
pub mod interleave;
pub mod multilane;
pub mod phase;
pub mod point;
pub mod report;
pub mod runner;
pub mod scenarios;
pub mod segment;
pub mod smt;
pub mod suite;
pub mod warmcache;

pub use engine::{BranchEvent, EngineObserver, EngineSummary, ReportObserver, SimEngine};
pub use multilane::{run_specs_multilane, EngineKind, MultilaneEngine, DEFAULT_LANES};
pub use phase::{
    build_plan, compare_sampled_vs_exact, run_sampled_source, PhasePlan, Representative,
    SampledRunResult, SamplingErrorReport,
};
pub use point::{
    run_point, run_point_with_engine, run_point_with_engine_cached, run_tage_sweep, PointError,
    PointResult, PointSamplingMetrics, PointTraceMetrics, PredictorSpec, SchemeSpec, SweepPoint,
    TageSweepPoint,
};
pub use runner::{run_source, run_trace, RunOptions, TraceRunResult};
pub use scenarios::ScenarioSpec;
pub use segment::{
    run_segmented_source, run_segmented_source_cached, run_suite_segmented,
    run_suite_segmented_cached, SegmentOptions, SegmentPlan, SegmentedRunResult,
};
pub use suite::{
    run_suite, run_suite_sources, run_suite_with_parallelism, SuiteRunResult, SuiteScratch,
};
pub use warmcache::WarmCache;

/// `amount` per kilo-instruction, 0 on an empty run — the shared
/// zero-guarded denominator behind every per-KI rate the crate reports.
pub(crate) fn per_kilo_instruction(amount: f64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        amount * 1000.0 / instructions as f64
    }
}
