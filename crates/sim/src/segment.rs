//! History-warmed segment sharding: parallelism *within* one long source.
//!
//! Per-source sharding ([`crate::suite`]) caps a suite's wall-clock at the
//! longest single trace; a multi-gigabyte streamed trace still runs on one
//! worker. This module splits one [`BranchSource`] into `N` contiguous
//! segments and runs them concurrently: every segment opens its own fresh
//! stream, seeks to `start − warmup`, silently **replays a warmup prefix**
//! (the predictor and the confidence scheme train on it, statistics stay
//! suppressed) so the tagged tables and the global history resemble the
//! state a sequential run would have reached, then measures its own record
//! range. Per-segment reports merge **deterministically in segment order**,
//! so the merged result is byte-identical at every worker count — the
//! segment plan depends only on the source length and the requested segment
//! count, never on scheduling.
//!
//! Segmented execution is an *approximation* of the sequential run (each
//! segment starts from a cold predictor plus a bounded warm-up rather than
//! the full prefix); the warmup length trades accuracy against redundant
//! replay work. With one segment and no warmup it degenerates to exactly
//! [`crate::runner::run_source`].

use tage::{TageBlueprint, TageGeometry, TagePredictor};
use tage_confidence::{AdaptiveSaturationController, ConfidenceReport, TageConfidenceClassifier};
use tage_traces::format::FormatError;
use tage_traces::source::{BranchSource, SourceSuite, Take};

use crate::engine::{par_map, ReportObserver, SimEngine};
use crate::runner::{AdaptiveObserver, RunOptions, TraceRunResult};
use crate::suite::SuiteRunResult;
use crate::warmcache::{self, WarmCache, WarmState};

/// How a long source is sharded: segment count plus the per-segment warmup
/// prefix length, both in *records*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentOptions {
    /// Number of contiguous segments the source is split into (clamped to
    /// at least 1 and at most one per record).
    pub segments: usize,
    /// Records replayed (trained on, statistics suppressed) before each
    /// segment's measured range. Segment 0 has no prefix; later segments
    /// clamp the warmup at their start offset.
    pub warmup_records: u64,
}

impl SegmentOptions {
    /// `segments` shards with the given warmup prefix.
    pub fn new(segments: usize, warmup_records: u64) -> Self {
        SegmentOptions {
            segments,
            warmup_records,
        }
    }
}

/// One measured record range of a segment plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First measured record (inclusive).
    pub start: u64,
    /// One past the last measured record.
    pub end: u64,
}

impl Segment {
    /// Number of measured records in the segment.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Whether the segment measures no records.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A deterministic split of `total_records` into near-equal contiguous
/// segments. The plan is a pure function of `(total_records,
/// options)` — worker counts never influence it, which is what makes
/// segmented runs bit-identical across thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPlan {
    segments: Vec<Segment>,
    warmup_records: u64,
}

impl SegmentPlan {
    /// Splits `total_records` into `options.segments` near-equal contiguous
    /// ranges (earlier segments take the remainder, one extra record each).
    pub fn split(total_records: u64, options: &SegmentOptions) -> SegmentPlan {
        let count = options
            .segments
            .max(1)
            .min(total_records.max(1).min(usize::MAX as u64) as usize);
        let base = total_records / count as u64;
        let remainder = total_records % count as u64;
        let mut segments = Vec::with_capacity(count);
        let mut start = 0u64;
        for i in 0..count as u64 {
            let len = base + u64::from(i < remainder);
            segments.push(Segment {
                start,
                end: start + len,
            });
            start += len;
        }
        SegmentPlan {
            segments,
            warmup_records: options.warmup_records,
        }
    }

    /// The measured ranges, in stream order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The requested warmup prefix length in records.
    pub fn warmup_records(&self) -> u64 {
        self.warmup_records
    }

    /// The warmup prefix actually replayed before `segment` (clamped at the
    /// start of the stream).
    pub fn warmup_for(&self, segment: &Segment) -> u64 {
        self.warmup_records.min(segment.start)
    }
}

/// A segmented run's merged result plus its per-segment measured branch
/// counts (useful for asserting the split actually covered the stream).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedRunResult {
    /// The merged result, shaped exactly like a sequential
    /// [`crate::runner::run_source`] result: reports merge in segment order,
    /// branch/instruction counters sum, and `final_saturation_probability`
    /// is the last segment's.
    pub result: TraceRunResult,
    /// Measured conditional branches per segment, in segment order.
    pub segment_branches: Vec<u64>,
}

/// Runs one segment: a warm-state restore when the cache holds the segment's
/// boundary state, a silent warmup replay otherwise, then the measured
/// range. `warm` pairs a [`WarmCache`] with the source's content digest;
/// `None` always replays. [`crate::phase`] follows the same
/// restore-or-replay recipe for its representative slices, with checkpoint
/// keys at slice starts instead of segment boundaries.
pub(crate) fn run_segment<S: BranchSource>(
    geometry: &TageGeometry,
    options: &RunOptions,
    source: &mut S,
    plan: &SegmentPlan,
    segment: &Segment,
    warm: Option<(&WarmCache, u64)>,
) -> Result<(TraceRunResult, u64), FormatError> {
    let warmup = plan.warmup_for(segment);
    // Only warmed segments have a boundary state worth caching: segment 0
    // (and warmup 0) start cold, which costs nothing to reproduce.
    let cache_entry = match warm {
        Some((cache, source_digest)) if warmup > 0 => {
            let state_digest = warmcache::state_digest(geometry, options);
            let key = warmcache::entry_key(
                state_digest,
                source_digest,
                segment.start - warmup,
                segment.start,
            );
            Some((cache, key, state_digest))
        }
        _ => None,
    };

    if let Some((cache, key, state_digest)) = cache_entry {
        if let Some(outcome) = try_run_segment_from_cache(
            geometry,
            options,
            source,
            segment,
            cache,
            key,
            state_digest,
        )? {
            cache.note_hit();
            return Ok(outcome);
        }
        cache.note_miss();
    }

    let skip = segment.start - warmup;
    let skipped = source.skip_records(skip)?;
    if skipped < skip {
        // The stream is shorter than the plan; nothing to measure here.
        let name = source.name().to_string();
        return Ok((empty_result(geometry, name), 0));
    }

    let mut predictor = TagePredictor::new(geometry);
    let classifier = TageConfidenceClassifier::with_window(geometry, options.bim_miss_window);
    let mut adaptive = options.adaptive_target_mkp.map(|target| AdaptiveObserver {
        controller: AdaptiveSaturationController::with_parameters(target, 16 * 1024),
    });
    if let Some(observer) = adaptive.as_ref() {
        predictor.set_automaton(observer.controller.automaton());
    }

    let trace_name = source.name().to_string();
    // `RunOptions::warmup_branches` is a *statistical* exclusion of the
    // stream's leading conditional branches; it belongs to the segment that
    // owns the head of the stream (which has no replay prefix), matching
    // the sequential run whenever the exclusion fits inside segment 0.
    let statistical_warmup = if segment.start == 0 {
        options.warmup_branches
    } else {
        0
    };
    let mut engine = SimEngine::new(&mut predictor, classifier).with_warmup(statistical_warmup);
    // Warmup prefix: trains the predictor, the classifier state and (when
    // enabled) the adaptive controller; no report observer collects it.
    engine.run_source(&mut Take::new(&mut *source, warmup), &mut adaptive.as_mut())?;
    // Cacheable boundary: snapshot the warm state before measuring, so the
    // next run of this cell restores instead of replaying. The engine is
    // rebuilt from its own parts — a cached-boundary run (no statistical
    // warmup, see above) carries no engine state across the boundary beyond
    // the predictor and classifier, so the measured range is unaffected.
    let mut engine = if let Some((cache, key, state_digest)) = cache_entry {
        let (predictor, classifier) = engine.into_parts();
        let state = WarmState {
            predictor: predictor.snapshot(),
            window_remaining: classifier.window_remaining(),
            adaptive: adaptive
                .as_ref()
                .map(|observer| observer.controller.dynamic_state()),
        };
        // Best effort: an unwritable cache degrades to replaying warmups.
        let _ = cache.store(key, &warmcache::encode_warm_state(state_digest, &state));
        SimEngine::new(predictor, classifier)
    } else {
        engine
    };
    // Measured range.
    let mut report = ReportObserver::default();
    let summary = engine.run_source(
        &mut Take::new(&mut *source, segment.len()),
        &mut (&mut report, adaptive.as_mut()),
    )?;
    drop(engine);

    let result = TraceRunResult {
        trace_name,
        config_name: geometry.name(),
        report: report.report,
        conditional_branches: summary.measured_branches,
        instructions: summary.measured_instructions,
        final_saturation_probability: predictor.geometry().automaton.saturation_probability(),
    };
    Ok((result, summary.measured_branches))
}

/// Attempts to run `segment` from a cached warm state. Returns `Ok(None)`
/// when there is no usable entry (absent, torn, stale or from a different
/// configuration) — the caller falls back to the replay path and rewrites
/// the entry.
#[allow(clippy::too_many_arguments)]
fn try_run_segment_from_cache<S: BranchSource>(
    geometry: &TageGeometry,
    options: &RunOptions,
    source: &mut S,
    segment: &Segment,
    cache: &WarmCache,
    key: u64,
    state_digest: u64,
) -> Result<Option<(TraceRunResult, u64)>, FormatError> {
    let Some(bytes) = cache.load(key) else {
        return Ok(None);
    };
    let Ok(state) = warmcache::decode_warm_state(&bytes, state_digest) else {
        return Ok(None);
    };

    let mut predictor = TagePredictor::new(geometry);
    if predictor.restore(&state.predictor).is_err() {
        return Ok(None);
    }
    let mut classifier = TageConfidenceClassifier::with_window(geometry, options.bim_miss_window);
    classifier.set_window_remaining(state.window_remaining);
    let mut adaptive = options.adaptive_target_mkp.map(|target| AdaptiveObserver {
        controller: AdaptiveSaturationController::with_parameters(target, 16 * 1024),
    });
    if let Some(observer) = adaptive.as_mut() {
        // The restored predictor already carries the automaton the
        // controller had installed by the boundary; only the controller's
        // own measurement window needs restoring.
        let Some(dynamic) = state.adaptive else {
            return Ok(None);
        };
        observer.controller.restore_dynamic_state(dynamic);
    }

    // The warm state replaces the replay prefix entirely: skip straight to
    // the measured range.
    let skipped = source.skip_records(segment.start)?;
    if skipped < segment.start {
        let name = source.name().to_string();
        return Ok(Some((empty_result(geometry, name), 0)));
    }

    let trace_name = source.name().to_string();
    let mut engine = SimEngine::new(&mut predictor, classifier);
    let mut report = ReportObserver::default();
    let summary = engine.run_source(
        &mut Take::new(&mut *source, segment.len()),
        &mut (&mut report, adaptive.as_mut()),
    )?;
    drop(engine);

    let result = TraceRunResult {
        trace_name,
        config_name: geometry.name(),
        report: report.report,
        conditional_branches: summary.measured_branches,
        instructions: summary.measured_instructions,
        final_saturation_probability: predictor.geometry().automaton.saturation_probability(),
    };
    Ok(Some((result, summary.measured_branches)))
}

fn empty_result(geometry: &TageGeometry, trace_name: String) -> TraceRunResult {
    TraceRunResult {
        trace_name,
        config_name: geometry.name(),
        report: ConfidenceReport::new(),
        conditional_branches: 0,
        instructions: 0,
        final_saturation_probability: geometry.automaton.saturation_probability(),
    }
}

fn merge_segments(
    geometry: &TageGeometry,
    outcomes: Vec<(TraceRunResult, u64)>,
) -> SegmentedRunResult {
    let mut merged = ConfidenceReport::new();
    let mut conditional_branches = 0u64;
    let mut instructions = 0u64;
    let mut segment_branches = Vec::with_capacity(outcomes.len());
    let mut trace_name = String::new();
    let mut final_probability = geometry.automaton.saturation_probability();
    for (result, branches) in outcomes {
        if trace_name.is_empty() {
            trace_name = result.trace_name;
        }
        merged.merge(&result.report);
        conditional_branches += result.conditional_branches;
        instructions += result.instructions;
        final_probability = result.final_saturation_probability;
        segment_branches.push(branches);
    }
    SegmentedRunResult {
        result: TraceRunResult {
            trace_name,
            config_name: geometry.name(),
            report: merged,
            conditional_branches,
            instructions,
            final_saturation_probability: final_probability,
        },
        segment_branches,
    }
}

/// Runs one long source split into history-warmed segments across `workers`
/// scoped threads.
///
/// `open` must produce a *fresh, independent* stream of the same records on
/// every call (each segment worker opens its own); `total_records` is the
/// stream length the plan is computed from — pass the source's
/// [`BranchSource::len_hint`] or a counted length.
///
/// [`RunOptions::warmup_branches`] (the statistical exclusion of the
/// stream's leading conditional branches) is applied to the segment that
/// starts at record 0, so it matches the sequential run whenever the
/// excluded prefix fits inside the first segment.
///
/// The merged result is bit-identical for any `workers` value: the plan and
/// the merge order depend only on `(total_records, segment_options)`.
///
/// # Errors
///
/// Returns the first [`FormatError`] in segment order.
pub fn run_segmented_source<S, F>(
    blueprint: &dyn TageBlueprint,
    options: &RunOptions,
    segment_options: &SegmentOptions,
    total_records: u64,
    workers: usize,
    open: F,
) -> Result<SegmentedRunResult, FormatError>
where
    S: BranchSource,
    F: Fn() -> Result<S, FormatError> + Sync,
{
    run_segmented_source_cached(
        blueprint,
        options,
        segment_options,
        total_records,
        workers,
        None,
        open,
    )
}

/// [`run_segmented_source`] with an optional warm-state cache: `warm` pairs
/// the [`WarmCache`] with the source's content digest (see
/// [`tage_traces::source::SourceSpec::digest`]). The first run replays each
/// segment's warmup prefix and stores the boundary state; later runs with
/// the same configuration, source and warmup restore it and skip the replay
/// — with **byte-identical results** either way, at every worker count,
/// because the stored state is the predictor's full snapshot plus the
/// classifier and adaptive-controller state.
///
/// # Errors
///
/// Returns the first [`FormatError`] in segment order. Cache I/O never
/// fails a run: unreadable or torn entries fall back to the replay path,
/// and failed stores are dropped.
#[allow(clippy::too_many_arguments)]
pub fn run_segmented_source_cached<S, F>(
    blueprint: &dyn TageBlueprint,
    options: &RunOptions,
    segment_options: &SegmentOptions,
    total_records: u64,
    workers: usize,
    warm: Option<(&WarmCache, u64)>,
    open: F,
) -> Result<SegmentedRunResult, FormatError>
where
    S: BranchSource,
    F: Fn() -> Result<S, FormatError> + Sync,
{
    let geometry = blueprint.tage_geometry();
    let plan = SegmentPlan::split(total_records, segment_options);
    let outcomes = par_map(plan.segments(), workers, |segment| {
        let mut source = open()?;
        run_segment(&geometry, options, &mut source, &plan, segment, warm)
    });
    let mut collected = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        collected.push(outcome?);
    }
    Ok(merge_segments(&geometry, collected))
}

/// Runs a whole [`SourceSuite`] with segment sharding: the `sources ×
/// segments` work items are flattened into one list and sharded across
/// `workers`, so the scheduler can parallelize *within* each trace, not just
/// across traces. Results merge per source in `(source, segment)` order and
/// are bit-identical at every worker count.
///
/// Sources whose length is not cheaply known (synthetic profiles that emit
/// call/return records) are counted by draining one throwaway stream first —
/// generation is cheap relative to simulation.
///
/// # Errors
///
/// Returns the first [`FormatError`] in suite order.
pub fn run_suite_segmented(
    blueprint: &dyn TageBlueprint,
    suite: &SourceSuite,
    conditional_branches: usize,
    options: &RunOptions,
    segment_options: &SegmentOptions,
    workers: usize,
) -> Result<SuiteRunResult, FormatError> {
    run_suite_segmented_cached(
        blueprint,
        suite,
        conditional_branches,
        options,
        segment_options,
        workers,
        None,
    )
}

/// [`run_suite_segmented`] consulting a warm-state cache before cold-starting
/// any segment (see [`run_segmented_source_cached`]); per-source entry keys
/// use each source's [`tage_traces::source::SourceSpec::digest`].
///
/// # Errors
///
/// Returns the first [`FormatError`] in suite order.
#[allow(clippy::too_many_arguments)]
pub fn run_suite_segmented_cached(
    blueprint: &dyn TageBlueprint,
    suite: &SourceSuite,
    conditional_branches: usize,
    options: &RunOptions,
    segment_options: &SegmentOptions,
    workers: usize,
    cache: Option<&WarmCache>,
) -> Result<SuiteRunResult, FormatError> {
    let geometry = blueprint.tage_geometry();
    // Plan every source up front (pure function of the lengths).
    let mut plans = Vec::with_capacity(suite.sources().len());
    for spec in suite.sources() {
        let mut probe = spec.open(conditional_branches)?;
        let total = match probe.len_hint() {
            Some(total) => total,
            None => probe.skip_records(u64::MAX)?,
        };
        plans.push(SegmentPlan::split(total, segment_options));
    }
    let digests: Vec<u64> = suite
        .sources()
        .iter()
        .map(|spec| spec.digest(conditional_branches))
        .collect();
    let items: Vec<(usize, Segment)> = plans
        .iter()
        .enumerate()
        .flat_map(|(source_index, plan)| {
            plan.segments()
                .iter()
                .map(move |segment| (source_index, *segment))
        })
        .collect();

    let outcomes = par_map(&items, workers, |&(source_index, segment)| {
        let mut source = suite.sources()[source_index].open(conditional_branches)?;
        run_segment(
            &geometry,
            options,
            &mut source,
            &plans[source_index],
            &segment,
            cache.map(|cache| (cache, digests[source_index])),
        )
    });

    // Group back per source, in order.
    let mut per_source: Vec<Vec<(TraceRunResult, u64)>> =
        (0..suite.sources().len()).map(|_| Vec::new()).collect();
    for (&(source_index, _), outcome) in items.iter().zip(outcomes) {
        per_source[source_index].push(outcome?);
    }
    let mut traces = Vec::with_capacity(per_source.len());
    let mut aggregate = ConfidenceReport::new();
    for outcomes in per_source {
        let merged = merge_segments(&geometry, outcomes);
        aggregate.merge(&merged.result.report);
        traces.push(merged.result);
    }
    Ok(SuiteRunResult {
        suite_name: suite.name().to_string(),
        config_name: geometry.name(),
        traces,
        aggregate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tage::TageConfig;
    use tage_traces::source::{SourceSpec, SyntheticSource};
    use tage_traces::suites;

    fn spec() -> tage_traces::TraceSpec {
        suites::cbp1_like().trace("INT-2").unwrap().clone()
    }

    #[test]
    fn plans_are_contiguous_exhaustive_and_worker_independent() {
        for (total, segments) in [(10u64, 3usize), (1, 4), (0, 2), (1000, 7), (5, 5)] {
            let plan = SegmentPlan::split(total, &SegmentOptions::new(segments, 100));
            let ranges = plan.segments();
            assert!(!ranges.is_empty());
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, total);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            let covered: u64 = ranges.iter().map(Segment::len).sum();
            assert_eq!(covered, total, "total {total} segments {segments}");
        }
        let plan = SegmentPlan::split(10, &SegmentOptions::new(3, 4));
        assert_eq!(plan.warmup_for(&plan.segments()[0]), 0, "no prefix at 0");
        assert_eq!(plan.warmup_for(&plan.segments()[1]), 4);
    }

    #[test]
    fn one_segment_without_warmup_is_exactly_the_sequential_run() {
        let spec = spec();
        let config = TageConfig::small();
        let total = SyntheticSource::from_spec(&spec, 4_000)
            .skip_records(u64::MAX)
            .unwrap();
        // Non-default options too: the statistical warmup exclusion and the
        // recency window must flow through the segmented path unchanged.
        for options in [
            RunOptions::default(),
            RunOptions {
                warmup_branches: 700,
                bim_miss_window: 4,
                ..RunOptions::default()
            },
        ] {
            let mut source = SyntheticSource::from_spec(&spec, 4_000);
            let sequential = crate::runner::run_source(&config, &mut source, &options).unwrap();
            let segmented = run_segmented_source(
                &config,
                &options,
                &SegmentOptions::new(1, 0),
                total,
                2,
                || Ok(SyntheticSource::from_spec(&spec, 4_000)),
            )
            .unwrap();
            assert_eq!(segmented.result, sequential, "{options:?}");
            assert_eq!(
                segmented.segment_branches,
                vec![4_000 - options.warmup_branches]
            );
        }
    }

    #[test]
    fn segmented_runs_are_bit_identical_across_worker_counts() {
        let spec = spec();
        let config = TageConfig::small();
        let options = RunOptions::default();
        let segment_options = SegmentOptions::new(5, 512);
        let total = SyntheticSource::from_spec(&spec, 6_000)
            .skip_records(u64::MAX)
            .unwrap();
        let run = |workers| {
            run_segmented_source(&config, &options, &segment_options, total, workers, || {
                Ok(SyntheticSource::from_spec(&spec, 6_000))
            })
            .unwrap()
        };
        let reference = run(1);
        assert_eq!(
            reference.segment_branches.iter().sum::<u64>(),
            6_000,
            "segments cover the whole stream"
        );
        for workers in [2, 3, 8] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }

    #[test]
    fn warmup_improves_segment_accuracy_over_cold_starts() {
        // Splitting a very predictable trace into cold segments inflates
        // mispredictions (every segment re-learns its loops and patterns); a
        // history-warmup prefix wins most of that accuracy back without
        // affecting what is measured, pulling the segmented result towards
        // the sequential one.
        let spec = suites::cbp1_like().trace("FP-2").unwrap().clone();
        let config = TageConfig::small();
        let branches = 32_000;
        let total = SyntheticSource::from_spec(&spec, branches)
            .skip_records(u64::MAX)
            .unwrap();
        let mut sequential_source = SyntheticSource::from_spec(&spec, branches);
        let sequential =
            crate::runner::run_source(&config, &mut sequential_source, &RunOptions::default())
                .unwrap();
        let run = |warmup| {
            run_segmented_source(
                &config,
                &RunOptions::default(),
                &SegmentOptions::new(16, warmup),
                total,
                4,
                || Ok(SyntheticSource::from_spec(&spec, branches)),
            )
            .unwrap()
        };
        let cold = run(0);
        let warmed = run(2_000);
        assert_eq!(cold.result.conditional_branches, branches as u64);
        assert_eq!(warmed.result.conditional_branches, branches as u64);
        let sequential_misses = sequential.report.total().mispredictions;
        let cold_gap = cold.result.report.total().mispredictions - sequential_misses;
        let warmed_gap = warmed
            .result
            .report
            .total()
            .mispredictions
            .saturating_sub(sequential_misses);
        assert!(
            warmed_gap * 2 < cold_gap,
            "warmup should reclaim most of the cold-start penalty: \
             sequential {sequential_misses}, cold +{cold_gap}, warmed +{warmed_gap}"
        );
    }

    #[test]
    fn warm_cache_runs_are_byte_identical_to_replay_runs() {
        let dir = std::env::temp_dir().join(format!(
            "tage-segment-warmcache-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let suite = SourceSuite::new(
            "cached",
            vec![SourceSpec::Synthetic(
                suites::cbp1_like().trace("INT-2").unwrap().clone(),
            )],
        );
        let config = TageConfig::small();
        let segment_options = SegmentOptions::new(4, 512);
        // The adaptive controller exercises the automaton + controller parts
        // of the warm state; the custom window exercises the classifier part.
        for options in [
            RunOptions::default(),
            RunOptions {
                bim_miss_window: 4,
                adaptive_target_mkp: Some(10.0),
                ..RunOptions::default()
            },
        ] {
            let reference =
                run_suite_segmented(&config, &suite, 5_000, &options, &segment_options, 2).unwrap();
            let cache = WarmCache::new(&dir).unwrap();
            let cold = run_suite_segmented_cached(
                &config,
                &suite,
                5_000,
                &options,
                &segment_options,
                2,
                Some(&cache),
            )
            .unwrap();
            assert_eq!(cold, reference, "first cached run (all misses)");
            assert_eq!(cache.hits(), 0);
            assert!(cache.misses() > 0, "warmed segments should miss once");
            let warm = run_suite_segmented_cached(
                &config,
                &suite,
                5_000,
                &options,
                &segment_options,
                4,
                Some(&cache),
            )
            .unwrap();
            assert_eq!(warm, reference, "second cached run (restores)");
            assert_eq!(
                cache.hits(),
                3,
                "every warmed segment (all but segment 0) should restore"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn suite_level_segmentation_is_deterministic_and_covers_every_source() {
        let suite = SourceSuite::new(
            "two",
            vec![
                SourceSpec::Synthetic(suites::cbp1_like().trace("FP-1").unwrap().clone()),
                SourceSpec::Synthetic(suites::cbp1_like().trace("SERV-2").unwrap().clone()),
            ],
        );
        let config = TageConfig::small();
        let run = |workers| {
            run_suite_segmented(
                &config,
                &suite,
                3_000,
                &RunOptions::default(),
                &SegmentOptions::new(3, 256),
                workers,
            )
            .unwrap()
        };
        let reference = run(1);
        assert_eq!(reference.traces.len(), 2);
        for trace in &reference.traces {
            assert_eq!(trace.conditional_branches, 3_000);
        }
        assert_eq!(reference.aggregate.total().predictions, 6_000);
        for workers in [2, 3, 6] {
            assert_eq!(run(workers), reference, "workers = {workers}");
        }
    }
}
