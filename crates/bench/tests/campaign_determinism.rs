//! Campaign determinism contract: the same grid renders a byte-identical
//! JSON report at any worker count (modulo the explicitly timing-carrying
//! fields), and the report round-trips through the schema validation.

use tage_bench::campaign::{
    run_campaign, steal_map, validate_report, CampaignSpec, SCHEMA_VERSION,
};
use tage_bench::jsonish;
use tage_sim::point::{PredictorSpec, SchemeSpec};
use tage_sim::scenarios::ScenarioSpec;
use tage_traces::suites;

fn grid() -> CampaignSpec {
    CampaignSpec {
        label: "determinism".to_string(),
        predictors: vec![
            PredictorSpec::parse("tage-16k").unwrap(),
            PredictorSpec::parse("gshare").unwrap(),
            PredictorSpec::parse("perceptron").unwrap(),
        ],
        schemes: vec![
            SchemeSpec::parse("storage-free").unwrap(),
            SchemeSpec::parse("self-confidence").unwrap(),
        ],
        suites: vec![suites::cbp1_mini().into()],
        // The scenario axis rides the same determinism contract: every
        // scenario kind is part of the pinned grid.
        scenarios: ScenarioSpec::ALL.to_vec(),
        branches_per_trace: 2_000,
    }
}

#[test]
fn reports_are_byte_identical_across_thread_counts() {
    let serial = run_campaign(&grid(), 1).unwrap().render_json(false);
    for workers in [2, 4, 8] {
        let parallel = run_campaign(&grid(), workers).unwrap().render_json(false);
        assert_eq!(
            serial, parallel,
            "timing-free report must not depend on worker count (workers = {workers})"
        );
    }
}

#[test]
fn timing_fields_are_the_only_difference_between_renders() {
    let report = run_campaign(&grid(), 4).unwrap();
    let with_timing = report.render_json(true);
    let without = report.render_json(false);
    assert!(with_timing.contains("\"wall_seconds\""));
    assert!(with_timing.contains("\"timing\""));
    assert!(!without.contains("\"wall_seconds\""));
    assert!(!without.contains("\"timing\""));

    // Point for point, every deterministic field is identical across the
    // two renders; the timing render only adds wall-clock fields.
    let timed_points = jsonish::extract_array_objects(&with_timing, "points");
    let bare_points = jsonish::extract_array_objects(&without, "points");
    assert_eq!(timed_points.len(), bare_points.len());
    assert!(!bare_points.is_empty());
    for (timed, bare) in timed_points.iter().zip(&bare_points) {
        for key in ["predictor", "scheme", "suite", "scenario"] {
            assert_eq!(
                jsonish::string_field(timed, key),
                jsonish::string_field(bare, key)
            );
        }
        for key in [
            "traces",
            "predictions",
            "mispredictions",
            "instructions",
            "mean_mpki",
            "aggregate_mkp",
            "high_pcov",
            "high_mprate_mkp",
        ] {
            assert_eq!(
                jsonish::number_field(timed, key),
                jsonish::number_field(bare, key),
                "{key}"
            );
        }
        assert!(jsonish::number_field(timed, "wall_seconds").is_some());
        assert!(jsonish::number_field(bare, "wall_seconds").is_none());
    }
}

#[test]
fn report_round_trips_through_schema_validation() {
    let report = run_campaign(&grid(), 2).unwrap();
    for include_timing in [true, false] {
        let json = report.render_json(include_timing);
        let validated = validate_report(&json).expect("rendered report validates");
        assert_eq!(validated.schema, SCHEMA_VERSION);
        assert_eq!(validated.points, report.points.len());
        assert_eq!(validated.skipped, report.skipped.len());
    }
    // Tampering with the schema version must be rejected.
    let json = report.render_json(false);
    let tampered = json.replace(&format!("\"schema\": {SCHEMA_VERSION}"), "\"schema\": 9999");
    assert!(validate_report(&tampered).is_err());
}

#[test]
fn steal_map_with_heterogeneous_point_costs_stays_deterministic() {
    // Simulated mixed-size workload: the value is a function of the index
    // only, but the runtime varies wildly — results must not.
    let items: Vec<u64> = (0..40).collect();
    let slow = |&i: &u64| {
        if i % 5 == 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        i.wrapping_mul(2654435761)
    };
    let (reference, _) = steal_map(&items, 1, slow);
    for workers in [3, 7] {
        let (results, _) = steal_map(&items, workers, slow);
        assert_eq!(results, reference);
    }
}
